"""Structured, schema-versioned event log — the forensic record.

The metrics registry (PR 6) answers "how many breaker trips happened?";
it cannot answer "*which request* tripped the breaker, and why?".  This
module records every such decision as a **structured event**: a small
JSON-serializable mapping stamped with the active trace/span ids, a
monotonically increasing sequence number, a wall-clock timestamp, a level
and a kind, plus free-form attributes.  Decision points that were
previously only counters — admission sheds, breaker trips and heals,
retry rounds, failovers, degraded serves, deadline expiries, plan-cache
invalidations and re-optimizations, cursor evictions, warm-up skips —
emit one event each, so a chaos run leaves a correlatable, durable record
of what the resilience layer actually did.

Design rules (same priority order as tracing and deadlines):

1. **Zero cost when off.**  ``REPRO_NO_EVENTS=1`` turns :func:`emit` into
   an environment lookup and an immediate return; no lock is taken, no
   record is built.  Emission sites therefore call it unconditionally.
2. **Bounded memory.**  The in-process log is a fixed-capacity ring
   (``collections.deque(maxlen=...)``): old events fall off the end, the
   process can never OOM on its own telemetry.
3. **Rate limited.**  A per-second window caps how many events are
   recorded; bursts beyond the cap are *counted*, and a single
   ``events.dropped`` summary event is emitted when the window rolls —
   the log degrades to a sampled record instead of amplifying an
   overload.
4. **Optionally durable.**  ``REPRO_EVENT_LOG=/path/to/events.ndjson``
   (or an explicit sink) appends each record as one JSON line, so the
   evidence survives the process.

Every record carries ``"schema": "repro-event/v1"`` and validates against
:func:`validate_event`; the CI events-schema check holds emission sites
to exactly this contract.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Iterator, Mapping

from repro.observability import tracing

__all__ = [
    "EVENT_SCHEMA",
    "EVENTS_ENV_FLAG",
    "EVENT_SINK_ENV",
    "LEVELS",
    "EventLog",
    "default_log",
    "emit",
    "events_disabled",
    "reset_default_log",
    "validate_event",
]

EVENT_SCHEMA = "repro-event/v1"

#: Kill switch: ``REPRO_NO_EVENTS=1`` makes every ``emit`` a no-op.
EVENTS_ENV_FLAG = "REPRO_NO_EVENTS"

#: When set, the default log appends one JSON line per event to this path.
EVENT_SINK_ENV = "REPRO_EVENT_LOG"

LEVELS = ("debug", "info", "warning", "error")

DEFAULT_CAPACITY = 1024
DEFAULT_RATE_LIMIT_PER_SECOND = 500

#: Attribute values must round-trip through JSON; anything else is
#: coerced to ``repr`` at emission time so a bad call site degrades to an
#: ugly string instead of a crashed request.
_JSON_SCALARS = (str, int, float, bool, type(None))


def events_disabled() -> bool:
    """Read the kill switch per call, like ``resilience_disabled``."""
    return os.environ.get(EVENTS_ENV_FLAG, "") == "1"


def _clean_value(value: object) -> object:
    if isinstance(value, _JSON_SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return [_clean_value(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _clean_value(item) for key, item in value.items()}
    return repr(value)


class EventLog:
    """A thread-safe, bounded, rate-limited structured event ring."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        rate_limit_per_second: int = DEFAULT_RATE_LIMIT_PER_SECOND,
        sink_path: str | None = None,
        clock=time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("an event log needs capacity for at least one event")
        if rate_limit_per_second < 1:
            raise ValueError("rate_limit_per_second must be >= 1")
        self.capacity = capacity
        self.rate_limit_per_second = rate_limit_per_second
        self.sink_path = sink_path
        self._clock = clock
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._sequence = 0
        self._emitted = 0
        self._dropped = 0
        self._window_start = clock()
        self._window_count = 0
        self._window_dropped = 0
        self._sink_file = None

    # Emission -------------------------------------------------------------------

    def emit(self, kind: str, level: str = "info", **attributes: object) -> dict | None:
        """Record one event; returns the record, or ``None`` if suppressed.

        The trace and span ids are read from the calling thread's active
        trace, so events emitted while serving a request correlate with
        its spans without any plumbing at the call site.
        """
        if events_disabled():
            return None
        if level not in LEVELS:
            level = "info"
        now = self._clock()
        with self._lock:
            summary = self._roll_window(now)
            if summary is not None:
                self._record(summary)
            if self._window_count >= self.rate_limit_per_second:
                self._dropped += 1
                self._window_dropped += 1
                return None
            self._window_count += 1
            record = self._build(kind, level, attributes)
            self._record(record)
        return record

    def _roll_window(self, now: float) -> dict | None:
        """Caller holds the lock.  Returns a drop-summary record to log."""
        if now - self._window_start < 1.0:
            return None
        dropped = self._window_dropped
        self._window_start = now
        self._window_count = 1 if dropped else 0  # the summary spends one slot
        self._window_dropped = 0
        if not dropped:
            return None
        return self._build(
            "events.dropped",
            "warning",
            {"dropped": dropped, "rate_limit_per_second": self.rate_limit_per_second},
        )

    def _build(self, kind: str, level: str, attributes: Mapping[str, object]) -> dict:
        self._sequence += 1
        trace = tracing.current_trace()
        record: dict = {
            "schema": EVENT_SCHEMA,
            "seq": self._sequence,
            "ts": time.time(),
            "kind": str(kind),
            "level": level,
            "trace_id": trace.trace_id if trace is not None else None,
            "span_id": tracing.current_span_id(),
            "attributes": {str(key): _clean_value(value) for key, value in attributes.items()},
        }
        return record

    def _record(self, record: dict) -> None:
        """Caller holds the lock: ring append plus best-effort sink write."""
        self._ring.append(record)
        self._emitted += 1
        if self.sink_path is None:
            return
        try:
            if self._sink_file is None:
                self._sink_file = open(self.sink_path, "a", encoding="utf-8")
            self._sink_file.write(json.dumps(record, sort_keys=True) + "\n")
            self._sink_file.flush()
        except OSError:
            # Telemetry must never take a request down: a full disk or a
            # removed directory degrades to in-memory-only logging.
            self._sink_file = None
            self.sink_path = None

    # Introspection --------------------------------------------------------------

    def tail(self, limit: int | None = None, trace_id: str | None = None) -> list[dict]:
        """The most recent events, oldest first, optionally one trace's."""
        with self._lock:
            records = list(self._ring)
        if trace_id is not None:
            records = [record for record in records if record.get("trace_id") == trace_id]
        if limit is not None and limit >= 0:
            records = records[-limit:]
        return records

    def stats(self) -> dict:
        with self._lock:
            return {
                "emitted": self._emitted,
                "dropped": self._dropped,
                "capacity": self.capacity,
                "rate_limit_per_second": self.rate_limit_per_second,
                "buffered": len(self._ring),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.tail())

    def close(self) -> None:
        with self._lock:
            if self._sink_file is not None:
                try:
                    self._sink_file.close()
                except OSError:  # pragma: no cover - close failure is ignorable
                    pass
                self._sink_file = None


# The process-wide default log -----------------------------------------------------

_default_lock = threading.Lock()
_default: EventLog | None = None


def default_log() -> EventLog:
    """The process-wide event log (created on first use).

    The sink path is read from ``REPRO_EVENT_LOG`` at creation time, so a
    server launched with the variable set logs durably for its lifetime.
    """
    global _default
    with _default_lock:
        if _default is None:
            _default = EventLog(sink_path=os.environ.get(EVENT_SINK_ENV) or None)
        return _default


def reset_default_log() -> None:
    """Drop the default log (tests re-read ``REPRO_EVENT_LOG`` this way)."""
    global _default
    with _default_lock:
        if _default is not None:
            _default.close()
        _default = None


def emit(kind: str, level: str = "info", **attributes: object) -> dict | None:
    """Emit on the process-wide default log (the standard call site form)."""
    if events_disabled():
        return None
    return default_log().emit(kind, level, **attributes)


# Schema validation ----------------------------------------------------------------

_REQUIRED_FIELDS = ("schema", "seq", "ts", "kind", "level", "trace_id", "span_id", "attributes")


def validate_event(payload: object) -> None:
    """Raise ``ValueError`` unless *payload* is a schema-valid v1 event.

    This is the contract the CI events-schema check enforces on every
    emission site: tests route real traffic through the emitting code and
    validate everything that lands in the log.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(f"event must be a mapping, got {type(payload).__name__}")
    missing = [field for field in _REQUIRED_FIELDS if field not in payload]
    if missing:
        raise ValueError(f"event is missing required fields: {', '.join(missing)}")
    if payload["schema"] != EVENT_SCHEMA:
        raise ValueError(f"unknown event schema {payload['schema']!r} (expected {EVENT_SCHEMA!r})")
    if not isinstance(payload["seq"], int) or payload["seq"] < 1:
        raise ValueError(f"event seq must be a positive integer, got {payload['seq']!r}")
    if not isinstance(payload["ts"], (int, float)) or isinstance(payload["ts"], bool):
        raise ValueError(f"event ts must be a number, got {payload['ts']!r}")
    if not isinstance(payload["kind"], str) or not payload["kind"]:
        raise ValueError(f"event kind must be a non-empty string, got {payload['kind']!r}")
    if payload["level"] not in LEVELS:
        raise ValueError(f"event level must be one of {LEVELS}, got {payload['level']!r}")
    for field in ("trace_id", "span_id"):
        if payload[field] is not None and not isinstance(payload[field], str):
            raise ValueError(f"event {field} must be a string or null, got {payload[field]!r}")
    if not isinstance(payload["attributes"], Mapping):
        raise ValueError(f"event attributes must be a mapping, got {payload['attributes']!r}")
    try:
        json.dumps(payload["attributes"], sort_keys=True)
    except (TypeError, ValueError) as error:
        raise ValueError(f"event attributes are not JSON-serializable: {error}") from None

"""Span-based request tracing, propagated through the JSON wire envelope.

A **trace** is one logical request as seen from its edge — a CLI call, a
client round trip, a router fan-out — and a **span** is one timed step
inside it (an HTTP hop, a plan execution, one shard of a scatter).  Spans
carry monotonic-clock timings (comparable only within one process) plus the
parent links that stitch the tree together across processes.

Design rules, in priority order:

1. **Zero cost when off.**  Nothing here allocates, locks or reads a clock
   unless a trace is active on the current thread; :func:`span` is a single
   thread-local read on the disabled path.  The serving layers call it
   unconditionally, so this property is what keeps the benchmark speedups
   (e14/e16/e17) intact.
2. **Wire-envelope propagation.**  The trace context travels as an extra
   ``"trace"`` key on the request envelope and the recorded spans come back
   as a ``"trace"`` key on the response envelope.  ``parse_wire`` filters
   unknown keys against the message schema, so a pre-telemetry peer ignores
   both harmlessly — tracing needs no protocol version bump.
3. **Explicit thread handoff.**  Thread-locals do not cross pool threads;
   the router re-activates the caller's trace inside its fan-out tasks via
   :func:`activate` (a no-op when handed ``None``).

Typical edge usage::

    with tracing.trace("client query") as active:
        response = client.query("db", "(x) . P(x)")
    print(tracing.render_trace(active))
"""

from __future__ import annotations

import contextlib
import secrets
import threading
import time
from dataclasses import dataclass, field
from typing import Iterator, Mapping

__all__ = [
    "Span",
    "Trace",
    "activate",
    "adopt",
    "current_trace",
    "current_span_id",
    "render_trace",
    "span",
    "trace",
]

_ACTIVE = threading.local()


def _new_id() -> str:
    return secrets.token_hex(8)


@dataclass
class Span:
    """One timed step of a trace.

    ``start`` is a ``time.monotonic()`` reading — meaningful for ordering
    and subtraction *within one process only*; cross-process stitching uses
    the parent links, never the clocks.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start: float
    duration: float = 0.0
    attributes: dict = field(default_factory=dict)

    def to_wire(self) -> dict:
        payload = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration_us": int(self.duration * 1_000_000),
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        return payload

    @classmethod
    def from_wire(cls, payload: Mapping[str, object]) -> "Span | None":
        """Best-effort parse of one wire span; ``None`` for malformed input.

        Tolerant by design: a span dropped from a remote peer's telemetry
        must never fail the request that carried it.
        """
        if not isinstance(payload, Mapping):
            return None
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        name = payload.get("name")
        if not (isinstance(trace_id, str) and isinstance(span_id, str) and isinstance(name, str)):
            return None
        parent = payload.get("parent_id")
        attributes = payload.get("attributes")
        duration_us = payload.get("duration_us")
        return cls(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent if isinstance(parent, str) else None,
            name=name,
            start=float(payload.get("start", 0.0)) if isinstance(payload.get("start", 0.0), (int, float)) else 0.0,
            duration=(duration_us / 1_000_000) if isinstance(duration_us, (int, float)) else 0.0,
            attributes=dict(attributes) if isinstance(attributes, Mapping) else {},
        )


class Trace:
    """A thread-safe collector of spans sharing one trace id.

    Created at the edge by :func:`trace`, or server-side by :func:`adopt`
    when a request envelope carries a trace context.  ``parent_span_id``
    (server side) is the remote caller's span the local root spans hang off,
    so the cross-process tree has no gaps.
    """

    def __init__(self, trace_id: str | None = None, parent_span_id: str | None = None) -> None:
        self.trace_id = trace_id or _new_id()
        self.parent_span_id = parent_span_id
        self._lock = threading.Lock()
        self._spans: list[Span] = []

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    @property
    def spans(self) -> tuple[Span, ...]:
        with self._lock:
            return tuple(self._spans)

    def wire_context(self) -> dict:
        """The request-envelope form: trace id plus the caller's current span."""
        return {"id": self.trace_id, "span": current_span_id() or self.parent_span_id}

    def to_wire(self) -> dict:
        """The response-envelope form: every span recorded so far."""
        return {"id": self.trace_id, "spans": [span.to_wire() for span in self.spans]}

    def absorb(self, payload: object) -> int:
        """Fold a remote peer's returned spans in; returns how many were added.

        Only spans carrying *this* trace's id are accepted — a confused or
        stale peer cannot pollute the tree.  Malformed entries are skipped.
        """
        if not isinstance(payload, Mapping) or payload.get("id") != self.trace_id:
            return 0
        spans = payload.get("spans")
        if not isinstance(spans, (list, tuple)):
            return 0
        added = 0
        for item in spans:
            parsed = Span.from_wire(item)
            if parsed is not None and parsed.trace_id == self.trace_id:
                self.record(parsed)
                added += 1
        return added

    def tree(self) -> list[dict]:
        """The spans as a forest of nested dicts (children ordered by start).

        Spans whose parent is unknown locally (or ``None``) become roots —
        on the edge process, after absorbing every hop's spans, that is
        exactly the root span of the whole request.
        """
        spans = self.spans
        by_id = {span.span_id: {"span": span, "children": []} for span in spans}
        roots = []
        for span in spans:
            node = by_id[span.span_id]
            parent = by_id.get(span.parent_id) if span.parent_id else None
            if parent is not None and parent is not node:
                parent["children"].append(node)
            else:
                roots.append(node)
        def order(nodes):
            nodes.sort(key=lambda item: (item["span"].start, item["span"].span_id))
            for item in nodes:
                order(item["children"])
        order(roots)
        return roots


def current_trace() -> Trace | None:
    """The trace active on this thread, if any (the disabled-path check)."""
    return getattr(_ACTIVE, "trace", None)


def current_span_id() -> str | None:
    stack = getattr(_ACTIVE, "stack", None)
    return stack[-1] if stack else None


@contextlib.contextmanager
def activate(active: Trace | None, parent: str | None = None) -> Iterator[Trace | None]:
    """Make *active* the current thread's trace for the block.

    ``activate(None)`` is an inert pass-through, so pool-thread handoff code
    can call it unconditionally.  The previous trace (and span stack) is
    restored on exit, so nesting — a traced server thread serving a traced
    in-process router — unwinds correctly.

    *parent* seeds the span stack, so spans recorded in the block nest under
    a specific span of the handing-off thread (captured there with
    :func:`current_span_id`) instead of at the trace root; it defaults to
    the trace's own adopted parent.
    """
    if active is None:
        yield None
        return
    previous_trace = getattr(_ACTIVE, "trace", None)
    previous_stack = getattr(_ACTIVE, "stack", None)
    seed = parent or active.parent_span_id
    _ACTIVE.trace = active
    _ACTIVE.stack = [seed] if seed else []
    try:
        yield active
    finally:
        _ACTIVE.trace = previous_trace
        _ACTIVE.stack = previous_stack


@contextlib.contextmanager
def span(name: str, **attributes) -> Iterator[Span | None]:
    """Record one timed span under the active trace; a no-op without one.

    Yields the :class:`Span` (so callers may add attributes or read its id)
    or ``None`` when tracing is off — callers on hot paths never pay more
    than the one thread-local read that said so.
    """
    active = getattr(_ACTIVE, "trace", None)
    if active is None:
        yield None
        return
    stack = getattr(_ACTIVE, "stack", None)
    if stack is None:
        stack = _ACTIVE.stack = []
    parent = stack[-1] if stack else active.parent_span_id
    record = Span(
        trace_id=active.trace_id,
        span_id=_new_id(),
        parent_id=parent,
        name=name,
        start=time.monotonic(),
        attributes=dict(attributes),
    )
    stack.append(record.span_id)
    try:
        yield record
    finally:
        record.duration = time.monotonic() - record.start
        stack.pop()
        active.record(record)


@contextlib.contextmanager
def trace(name: str, **attributes) -> Iterator[Trace]:
    """Start a fresh trace with a root span *name*; the edge entry point."""
    active = Trace()
    with activate(active):
        with span(name, **attributes):
            yield active


def adopt(payload: object) -> Trace | None:
    """Server-side: a :class:`Trace` for a request envelope's trace context.

    Returns ``None`` (tracing stays off) unless the payload looks like the
    ``{"id": ..., "span": ...}`` context :meth:`Trace.wire_context` emits.
    """
    if not isinstance(payload, Mapping):
        return None
    trace_id = payload.get("id")
    if not isinstance(trace_id, str) or not trace_id:
        return None
    parent = payload.get("span")
    return Trace(trace_id=trace_id, parent_span_id=parent if isinstance(parent, str) else None)


def render_trace(active: Trace) -> str:
    """Indented text rendering of a trace tree (CLI / debugging aid)."""
    lines = [f"trace {active.trace_id} ({len(active.spans)} spans)"]

    def walk(node: dict, indent: int) -> None:
        item: Span = node["span"]
        pad = "  " * indent
        extra = ""
        if item.attributes:
            extra = "  " + " ".join(f"{key}={value}" for key, value in sorted(item.attributes.items()))
        lines.append(f"{pad}- {item.name}  {item.duration * 1000:.3f}ms{extra}")
        for child in node["children"]:
            walk(child, indent + 1)

    for root in active.tree():
        walk(root, 1)
    return "\n".join(lines)

"""Stdlib-only telemetry for the serving stack: traces, metrics, forensics.

Seven views of a running system, all zero-dependency and all designed to
cost (almost) nothing when disabled:

* :mod:`repro.observability.tracing` — span-based request tracing.  A trace
  is started at the edge (client or CLI); its context rides the JSON wire
  envelope so router→worker scatter/gather hops stitch into one tree.
* :mod:`repro.observability.metrics` — thread-safe counters, gauges and
  log-bucketed latency histograms (p50/p95/p99), served at ``GET /metrics``
  and merged cluster-wide by the router.
* :mod:`repro.observability.explain` — operator-level EXPLAIN ANALYZE: a
  profiler the streaming executor threads per-node row counts, wall time,
  access-path and memo-hit information through, rendered as a text tree.
* :mod:`repro.observability.events` — a schema-versioned, rate-limited
  structured event log: every resilience decision (shed, trip, retry,
  failover, degraded serve, eviction...) leaves one trace-correlated
  record, optionally NDJSON-durable via ``REPRO_EVENT_LOG``.
* :mod:`repro.observability.accounting` — per-query resource accounts
  (rows scanned/emitted, operator time, cache hits, queue wait, bytes on
  the wire) returned in the response's ``cost`` field.
* :mod:`repro.observability.recorder` + :mod:`repro.observability.export`
  — a bounded flight recorder capturing the full trace+profile+account+
  event tail of slow or failed requests (``GET /debug/flightrecorder``),
  exportable to Chrome trace-event JSON (``repro trace export``).
* :mod:`repro.observability.dashboard` — the pure rendering behind
  ``repro top``: one fleet-wide table of QPS, latency percentiles,
  in-flight, shed/degraded rates and breaker states from ``/metrics``
  snapshots.

The serving layers import these modules unconditionally, but every hook is
behind an ``is it on?`` check (an active thread-local trace, a non-``None``
profiler or account, an environment kill switch), so the instrumented hot
paths stay within noise of the uninstrumented ones — the e14/e16/e17
speedup requirements still hold.
"""

from repro.observability.accounting import ResourceAccount, current_account
from repro.observability.dashboard import render_top
from repro.observability.events import EventLog, emit, validate_event
from repro.observability.export import chrome_trace_events
from repro.observability.metrics import MetricsRegistry, merge_metric_snapshots
from repro.observability.recorder import FlightRecorder
from repro.observability.tracing import Trace, current_trace, span, trace

__all__ = [
    "EventLog",
    "FlightRecorder",
    "MetricsRegistry",
    "ResourceAccount",
    "Trace",
    "chrome_trace_events",
    "current_account",
    "current_trace",
    "emit",
    "merge_metric_snapshots",
    "render_top",
    "span",
    "trace",
    "validate_event",
]

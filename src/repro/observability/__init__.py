"""Stdlib-only telemetry for the serving stack: traces, metrics, profiles.

Three views of a running system, all zero-dependency and all designed to
cost (almost) nothing when disabled:

* :mod:`repro.observability.tracing` — span-based request tracing.  A trace
  is started at the edge (client or CLI); its context rides the JSON wire
  envelope so router→worker scatter/gather hops stitch into one tree.
* :mod:`repro.observability.metrics` — thread-safe counters, gauges and
  log-bucketed latency histograms (p50/p95/p99), served at ``GET /metrics``
  and merged cluster-wide by the router.
* :mod:`repro.observability.explain` — operator-level EXPLAIN ANALYZE: a
  profiler the streaming executor threads per-node row counts, wall time,
  access-path and memo-hit information through, rendered as a text tree.

The serving layers import these modules unconditionally, but every hook is
behind an ``is it on?`` check (an active thread-local trace, a non-``None``
profiler), so the instrumented hot paths stay within noise of the
uninstrumented ones — the e14/e16/e17 speedup requirements still hold.
"""

from repro.observability.metrics import MetricsRegistry, merge_metric_snapshots
from repro.observability.tracing import Trace, current_trace, span, trace

__all__ = [
    "MetricsRegistry",
    "merge_metric_snapshots",
    "Trace",
    "current_trace",
    "span",
    "trace",
]

"""Rendering for ``repro top`` — a stdlib live view over ``GET /metrics``.

``repro top URL [URL ...]`` polls each server's metrics snapshot on an
interval and redraws one table: QPS, latency percentiles, in-flight
requests, shed and degraded-serve rates, and circuit-breaker states.
This module is the pure half — it turns (current snapshot, previous
snapshot, elapsed seconds) into the rendered screen, so the tests can
drive it without a terminal or a server.  The CLI owns the polling loop
and the ANSI clear-screen redraw.

Rates are **deltas between polls**: the registry exposes monotonically
increasing counters, so ``(now - before) / elapsed`` is the only honest
per-second figure; the first refresh (no previous snapshot) shows ``-``.
Latency percentiles merge the log-bucket histograms of every ``http.*``
route, the same estimator ``/metrics`` itself uses.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.harness.reporting import format_table
from repro.observability.metrics import percentiles_from_buckets

__all__ = ["TOP_HEADERS", "render_top", "top_row"]

TOP_HEADERS = (
    "server",
    "status",
    "qps",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "in_flight",
    "shed/s",
    "degraded/s",
    "breakers",
)


def _clean_count(value: object) -> int:
    return value if isinstance(value, int) and not isinstance(value, bool) else 0


def _http_totals(histograms: Mapping[str, Mapping]) -> tuple[int, dict[str, int]]:
    """Total request count and merged log-buckets across ``http.*`` routes."""
    count = 0
    buckets: dict[str, int] = {}
    for name, histogram in histograms.items():
        if not name.startswith("http.") or not isinstance(histogram, Mapping):
            continue
        count += _clean_count(histogram.get("count"))
        raw = histogram.get("buckets")
        if isinstance(raw, Mapping):
            for index, observations in raw.items():
                buckets[str(index)] = buckets.get(str(index), 0) + _clean_count(observations)
    return count, buckets


def _counter(metrics, name: str) -> int:
    return _clean_count(metrics.counters.get(name))


def _breaker_summary(gauges: Mapping[str, float]) -> str:
    """``3 closed, 1 open`` from the ``breaker.state.*`` gauge encoding."""
    states = {"closed": 0, "half_open": 0, "open": 0}
    for name, value in gauges.items():
        if not name.startswith("breaker.state."):
            continue
        if value >= 1.0:
            states["open"] += 1
        elif value >= 0.5:
            states["half_open"] += 1
        else:
            states["closed"] += 1
    parts = [f"{count} {state}" for state, count in states.items() if count]
    return ", ".join(parts) or "-"


def _rate(value: float | None) -> str:
    return "-" if value is None else f"{value:.1f}"


def _ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.2f}"


def top_row(url: str, metrics, previous=None, elapsed: float | None = None) -> list[str]:
    """One table row for one server (``metrics is None`` means unreachable)."""
    if metrics is None:
        return [url, "DOWN"] + ["-"] * (len(TOP_HEADERS) - 2)
    count, buckets = _http_totals(metrics.histograms)
    quantiles = percentiles_from_buckets(buckets, count)
    qps = sheds_rate = degraded_rate = None
    if previous is not None and elapsed is not None and elapsed > 0:
        previous_count, __ = _http_totals(previous.histograms)
        qps = max(0, count - previous_count) / elapsed
        sheds_rate = (
            max(0, _counter(metrics, "admission.sheds") - _counter(previous, "admission.sheds"))
            / elapsed
        )
        degraded_rate = (
            max(
                0,
                _counter(metrics, "router.degraded_served")
                - _counter(previous, "router.degraded_served"),
            )
            / elapsed
        )
    in_flight = metrics.gauges.get("admission.in_flight")
    return [
        url,
        "up",
        _rate(qps),
        _ms(quantiles["p50"]),
        _ms(quantiles["p95"]),
        _ms(quantiles["p99"]),
        "-" if not isinstance(in_flight, (int, float)) else f"{in_flight:.0f}",
        _rate(sheds_rate),
        _rate(degraded_rate),
        _breaker_summary(metrics.gauges),
    ]


def render_top(
    servers: Sequence[tuple[str, object]],
    previous: Mapping[str, object],
    elapsed: float | None,
) -> str:
    """The full screen: a header line plus one table row per server.

    *servers* pairs each URL with its just-polled metrics snapshot (or
    ``None`` when the poll failed); *previous* maps URLs to the prior
    snapshot, and *elapsed* is the seconds between the two polls.
    """
    rows = [top_row(url, metrics, previous.get(url), elapsed) for url, metrics in servers]
    up = sum(1 for __, metrics in servers if metrics is not None)
    header = f"repro top — {up}/{len(servers)} server(s) up"
    if elapsed is not None:
        header += f", refreshed every {elapsed:.1f}s"
    total_qps = 0.0
    have_rate = False
    for url, metrics in servers:
        before = previous.get(url)
        if metrics is None or before is None or not elapsed:
            continue
        count, __ = _http_totals(metrics.histograms)
        previous_count, __ = _http_totals(before.histograms)
        total_qps += max(0, count - previous_count) / elapsed
        have_rate = True
    if have_rate:
        header += f" — total {total_qps:.1f} qps"
    return header + "\n" + format_table(list(TOP_HEADERS), rows)

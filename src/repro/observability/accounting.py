"""Per-query resource accounting, mirrored on the tracing/deadline design.

A :class:`ResourceAccount` is one request's itemized bill: rows scanned at
base relations, rows emitted in the answer, wall time inside the
executor, cache hits, time spent queued at admission, retry rounds, and
bytes in/out on the wire.  The server opens an account per request,
activates it on the handling thread, and every layer underneath charges
it without any parameter threading — the executor, the engine and the
admission controller each perform **one thread-local read** and charge
the account if one is active.

Design rules (the same priority order as tracing and deadlines):

1. **Zero cost when off.**  :func:`current_account` is a single
   thread-local read; with no account active, every charge site is an
   ``is None`` check.  The streaming executor captures the account once
   per execution and charges at materialization points (len-based, never
   per row).
2. **Wire-envelope propagation.**  The bill returns to the client as a
   ``cost`` field on the query response; ``parse_wire`` filters unknown
   keys, so a pre-accounting peer ignores it harmlessly — no protocol
   version bump.
3. **Explicit thread handoff.**  Pool fan-out captures
   :func:`current_account` and re-activates it in the worker thread with
   :func:`activate` (inert for ``None``); charges are lock-free but
   int/float adds under the GIL, so concurrent shard tasks may charge one
   account safely.

The payload carries ``"schema": "repro-cost/v1"`` so clients and the
flight recorder can shape-check what they store.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Iterator, Mapping

__all__ = [
    "COST_SCHEMA",
    "ResourceAccount",
    "activate",
    "cost_summary",
    "current_account",
]

COST_SCHEMA = "repro-cost/v1"

_ACTIVE = threading.local()


class ResourceAccount:
    """One request's itemized resource bill (charged lock-free under the GIL)."""

    __slots__ = (
        "rows_scanned",
        "rows_emitted",
        "operator_seconds",
        "cache_hits",
        "queue_wait_seconds",
        "retries",
        "bytes_in",
        "bytes_out",
        "started",
    )

    def __init__(self) -> None:
        self.rows_scanned = 0
        self.rows_emitted = 0
        self.operator_seconds = 0.0
        self.cache_hits = 0
        self.queue_wait_seconds = 0.0
        self.retries = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.started = time.perf_counter()

    # Charges --------------------------------------------------------------------

    def add_scanned(self, rows: int) -> None:
        self.rows_scanned += rows

    def add_emitted(self, rows: int) -> None:
        self.rows_emitted += rows

    def add_operator_seconds(self, seconds: float) -> None:
        self.operator_seconds += seconds

    def note_cache_hit(self, count: int = 1) -> None:
        self.cache_hits += count

    def add_queue_wait(self, seconds: float) -> None:
        self.queue_wait_seconds += seconds

    def note_retry(self, count: int = 1) -> None:
        self.retries += count

    def add_bytes_in(self, count: int) -> None:
        self.bytes_in += count

    def add_bytes_out(self, count: int) -> None:
        self.bytes_out += count

    # Output ---------------------------------------------------------------------

    def to_payload(self) -> dict:
        """The wire/recorder form (the response's ``cost`` field)."""
        return {
            "schema": COST_SCHEMA,
            "rows_scanned": self.rows_scanned,
            "rows_emitted": self.rows_emitted,
            "operator_seconds": self.operator_seconds,
            "cache_hits": self.cache_hits,
            "queue_wait_seconds": self.queue_wait_seconds,
            "retries": self.retries,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "elapsed_seconds": time.perf_counter() - self.started,
        }

    def charge_metrics(self, registry) -> None:
        """Fold this bill into aggregate counters (per-request totals sum)."""
        registry.increment("account.rows_scanned", self.rows_scanned)
        registry.increment("account.rows_emitted", self.rows_emitted)
        registry.increment("account.cache_hits", self.cache_hits)
        registry.increment("account.retries", self.retries)
        registry.increment("account.bytes_in", self.bytes_in)
        registry.increment("account.bytes_out", self.bytes_out)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"ResourceAccount(scanned={self.rows_scanned}, emitted={self.rows_emitted}, "
            f"operator={self.operator_seconds * 1000.0:.1f}ms, cache_hits={self.cache_hits})"
        )


def current_account() -> ResourceAccount | None:
    """The account active on this thread, if any (the disabled-path check)."""
    return getattr(_ACTIVE, "account", None)


@contextlib.contextmanager
def activate(account: ResourceAccount | None) -> Iterator[ResourceAccount | None]:
    """Make *account* the current thread's account for the block.

    ``activate(None)`` is an inert pass-through so pool-handoff code can
    call it unconditionally; the previous account is restored on exit so
    an in-process router driving a service nests correctly.
    """
    if account is None:
        yield None
        return
    previous = getattr(_ACTIVE, "account", None)
    _ACTIVE.account = account
    try:
        yield account
    finally:
        _ACTIVE.account = previous


def cost_summary(payload: object) -> str:
    """One human line for a wire ``cost`` payload (CLI rendering)."""
    if not isinstance(payload, Mapping):
        return ""
    parts = []
    for key, label in (
        ("rows_scanned", "scanned"),
        ("rows_emitted", "emitted"),
        ("cache_hits", "cache hits"),
        ("retries", "retries"),
    ):
        value = payload.get(key)
        if isinstance(value, int) and not isinstance(value, bool):
            parts.append(f"{label}={value}")
    operator = payload.get("operator_seconds")
    if isinstance(operator, (int, float)) and not isinstance(operator, bool):
        parts.append(f"operator={operator * 1000.0:.2f}ms")
    queued = payload.get("queue_wait_seconds")
    if isinstance(queued, (int, float)) and not isinstance(queued, bool) and queued > 0:
        parts.append(f"queued={queued * 1000.0:.2f}ms")
    return " ".join(parts)

"""A thin stdlib client for the JSON HTTP front-end (protocol v1 + v2).

The client speaks exactly the protocol of :mod:`repro.service.protocol`:
requests are protocol dataclasses serialized with
:func:`~repro.service.protocol.to_wire`, responses are deserialized with
:func:`~repro.service.protocol.parse_wire`.  Server-side errors (an
:class:`~repro.service.protocol.ErrorResponse` body with a 4xx status) are
re-raised locally as the **typed** exception their stable ``code`` names
(:func:`repro.errors.error_for_code`), so remote and in-process usage fail
the same way; transport-level failures (connection refused, timeout) raise
:class:`~repro.errors.ServiceUnavailableError` so the cluster router can
tell "worker down" from "worker said no".

**Version negotiation.**  The first message that needs an envelope asks
``/health`` which protocol versions the server speaks and caches the
highest common one; requests are then serialized at that version.  Against
a v1-only server everything except the session API keeps working;
:meth:`ServiceClient.prepare` raises a clear error instead.

**Sessions.**  :meth:`ServiceClient.prepare` registers a query template and
returns a :class:`PreparedHandle`: ``execute`` / ``execute_many`` bind
parameters server-side, and ``stream`` returns an iterator that pulls the
answer set page by page through a server cursor — a large answer never
travels as one giant JSON body.

Connections are **persistent**: each thread keeps one keep-alive
``http.client.HTTPConnection`` per client, because the cluster router pushes
thousands of small requests per second at each worker and a fresh TCP
connection per request costs more CPU than the query itself.  A stale
keep-alive connection (the server closed it between requests) is detected by
its signature errors and retried once on a fresh connection.  Some of those
signatures (a reset while waiting for the response) can also arrive after
the server started working, so a retried request may execute twice — safe
here because every protocol endpoint is a pure read or an idempotent
registration: ``prepare`` deduplicates server-side, ``execute`` reads,
``fetch`` names an explicit page index.

**Failure tagging.**  Every transport failure carries
``sent_request``: ``False`` when the request provably never reached the
server (connect refused — always safe to retry, even for a future
non-idempotent endpoint), ``True`` when the failure is ambiguous (the
request was written; the server may be executing it).  The router's retry
policy keys off this tag.

**Resilience hooks.**  When the calling thread carries an active
:mod:`deadline <repro.resilience.deadlines>`, ``_post`` stamps the
remaining budget as ``deadline_ms`` on the request envelope (a
pre-resilience server ignores the extra key).  A
:class:`~repro.resilience.faults.FaultPlan` — passed as ``fault_plan=`` or
via the ``REPRO_FAULTS`` environment spec — injects deterministic
transport faults at the round-trip boundary, so chaos tests script
refusals, drops, latency and garbled replies without a misbehaving server.
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import threading
import time
from typing import Iterator, Mapping, Sequence
from urllib.parse import quote, urlparse

from repro.errors import (
    ProtocolError,
    ServiceError,
    ServiceUnavailableError,
    error_for_code,
)
from repro.observability.tracing import current_trace, span
from repro.resilience import FAULTS_ENV, resilience_disabled
from repro.resilience.deadlines import current_deadline
from repro.resilience.faults import FaultPlan
from repro.service.protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS,
    BatchRequest,
    BatchResponse,
    ClassifyRequest,
    ClassifyResponse,
    CursorResponse,
    DatabasesResponse,
    DEFAULT_PAGE_SIZE,
    ErrorResponse,
    ExecuteManyRequest,
    ExecuteRequest,
    FetchRequest,
    HealthResponse,
    InfoResponse,
    MetricsResponse,
    PageResponse,
    PrepareRequest,
    PrepareResponse,
    QueryRequest,
    QueryResponse,
    StatsResponse,
    parse_wire,
    to_wire,
)

__all__ = ["ServiceClient", "PreparedHandle"]

DEFAULT_TIMEOUT_SECONDS = 60.0

#: Signatures of a kept-alive connection dying under us — retried exactly
#: once on a fresh connection.  Retries may re-execute a request the server
#: had already started on; see the module docstring for why that is safe.
_STALE_CONNECTION_ERRORS = (
    http.client.BadStatusLine,
    http.client.CannotSendRequest,
    ConnectionResetError,
    BrokenPipeError,
    ConnectionAbortedError,
)


class ServiceClient:
    """Talk to a running service at ``base_url`` (e.g. ``http://127.0.0.1:8080``)."""

    def __init__(
        self,
        base_url: str,
        timeout: float = DEFAULT_TIMEOUT_SECONDS,
        fault_plan: FaultPlan | None = None,
        account: bool = False,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: When set, POST envelopes carry ``"account": true`` and a v2
        #: server answers queries with a ``cost`` resource bill attached.
        self.account = account
        if fault_plan is None and not resilience_disabled():
            spec = os.environ.get(FAULTS_ENV, "")
            if spec:
                fault_plan = FaultPlan.from_spec(spec)
        self.fault_plan = fault_plan
        parsed = urlparse(self.base_url)
        if parsed.scheme not in ("http", "https") or not parsed.hostname:
            raise ServiceError(f"service URLs must look like http://host:port, got {base_url!r}")
        self._tls = parsed.scheme == "https"
        self._host = parsed.hostname
        self._port = parsed.port or (443 if self._tls else 80)
        self._prefix = parsed.path.rstrip("/")
        self._local = threading.local()
        self._version_lock = threading.Lock()
        self._negotiated: int | None = None

    # Endpoints -----------------------------------------------------------------

    def health(self) -> HealthResponse:
        """Liveness probe."""
        return self._expect(self._get("/health"), HealthResponse)

    def databases(self) -> tuple[str, ...]:
        return self._expect(self._get("/databases"), DatabasesResponse).databases

    def info(self, database: str) -> InfoResponse:
        return self._expect(self._get(f"/info?db={quote(database)}"), InfoResponse)

    def stats(self) -> StatsResponse:
        return self._expect(self._get("/stats"), StatsResponse)

    def metrics(self) -> MetricsResponse:
        """The server's telemetry snapshot (``GET /metrics``)."""
        return self._expect(self._get("/metrics"), MetricsResponse)

    def query(
        self,
        database: str,
        query: str,
        method: str = "approx",
        engine: str = "algebra",
        virtual_ne: bool = False,
        profile: bool = False,
    ) -> QueryResponse:
        request = QueryRequest(database, query, method, engine, virtual_ne, profile)
        return self._expect(self._post("/query", request), QueryResponse)

    def execute(self, request: QueryRequest) -> QueryResponse:
        return self._expect(self._post("/query", request), QueryResponse)

    def classify(self, query: str) -> ClassifyResponse:
        return self._expect(self._post("/classify", ClassifyRequest(query)), ClassifyResponse)

    def batch(self, requests: Sequence[QueryRequest]) -> BatchResponse:
        return self._expect(self._post("/batch", BatchRequest(tuple(requests))), BatchResponse)

    # The session API (protocol v2) ---------------------------------------------

    def protocol_version(self) -> int:
        """The negotiated wire version (health-probed once, then cached)."""
        with self._version_lock:
            if self._negotiated is not None:
                return self._negotiated
        # Probe outside the lock (the health round trip may be slow); a
        # racing second probe computes the same answer.
        try:
            advertised = self.health().protocol_versions
        except ProtocolError:
            # Something answered /health but not with our message — assume
            # the oldest protocol rather than refusing to talk at all.
            advertised = (1,)
        common = set(advertised) & set(SUPPORTED_PROTOCOL_VERSIONS)
        version = max(common) if common else min(SUPPORTED_PROTOCOL_VERSIONS)
        with self._version_lock:
            self._negotiated = version
        return version

    def prepare(
        self,
        database: str,
        template: str,
        method: str = "approx",
        engine: str = "algebra",
        virtual_ne: bool = False,
    ) -> "PreparedHandle":
        """Register a query template server-side; returns the execution handle.

        Raises :class:`ServiceError` against a v1-only server — the session
        API is a protocol v2 feature.
        """
        if self.protocol_version() < 2:
            raise ServiceError(
                f"the server at {self.base_url} only speaks protocol v1; "
                "prepared queries need protocol v2"
            )
        request = PrepareRequest(database, template, method, engine, virtual_ne)
        response = self._expect(self._post("/prepare", request), PrepareResponse)
        return PreparedHandle(self, response)

    def execute_prepared(
        self,
        statement_id: str,
        params: Mapping[str, str] | None = None,
    ) -> QueryResponse:
        request = ExecuteRequest(statement_id, dict(params or {}))
        return self._expect(self._post("/execute", request), QueryResponse)

    def execute_prepared_many(self, statement_id: str, bindings) -> BatchResponse:
        request = ExecuteManyRequest(statement_id, tuple(dict(b) for b in bindings))
        return self._expect(self._post("/execute", request), BatchResponse)

    def open_cursor(
        self,
        statement_id: str,
        params: Mapping[str, str] | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> CursorResponse:
        request = ExecuteRequest(statement_id, dict(params or {}), stream=True, page_size=page_size)
        return self._expect(self._post("/execute", request), CursorResponse)

    def fetch_page(self, cursor_id: str, page: int) -> PageResponse:
        return self._expect(self._post("/fetch", FetchRequest(cursor_id, page)), PageResponse)

    def get_raw(self, path: str) -> dict:
        """GET a route and return the undecoded JSON payload (envelope included)."""
        payload = self._round_trip("GET", path)
        if not isinstance(payload, dict):
            raise ProtocolError(f"expected a JSON object from {path}, got {type(payload).__name__}")
        return payload

    def debug(self) -> dict:
        """The server's flight-recorder snapshot (``GET /debug/flightrecorder``)."""
        return self.get_raw("/debug/flightrecorder")

    def close(self) -> None:
        """Drop this thread's persistent connection (harmless if absent)."""
        connection = getattr(self._local, "connection", None)
        self._local.connection = None
        if connection is not None:
            try:
                connection.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    # Plumbing ------------------------------------------------------------------

    def _get(self, path: str) -> object:
        return self._parse(self._round_trip("GET", path))

    def _post(self, path: str, message: object) -> object:
        wire = to_wire(message, self.protocol_version())
        if self.account:
            # Ask the server to attach the per-request resource bill; a
            # pre-accounting server ignores the extra envelope key.
            wire["account"] = True
        deadline = current_deadline()
        if deadline is not None:
            # Stamp the *remaining* budget: each hop re-anchors it on its own
            # monotonic clock, so the envelope decrements by exactly the time
            # already burned — no cross-process clock comparison anywhere.
            # Raises DeadlineExceededError instead of forwarding a dead request.
            wire["deadline_ms"] = deadline.wire_budget_ms()
        active = current_trace()
        if active is None:
            return self._parse(self._round_trip("POST", path, json.dumps(wire).encode()))
        # A trace is active: stamp its context on the request envelope so the
        # server's spans stitch under ours, and fold the spans it returns
        # back into the active trace.  The no-trace path above stays as
        # cheap as before — one thread-local read.
        with span(f"rpc POST {path}", url=self.base_url):
            wire["trace"] = active.wire_context()
            decoded = self._round_trip("POST", path, json.dumps(wire).encode())
            if isinstance(decoded, dict):
                active.absorb(decoded.get("trace"))
            return self._parse(decoded)

    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection_type = http.client.HTTPSConnection if self._tls else http.client.HTTPConnection
            connection = connection_type(self._host, self._port, timeout=self.timeout)
            connection.connect()
            # Headers and body go out as separate writes; without TCP_NODELAY
            # Nagle holds the second one for the server's delayed ACK, adding
            # ~40ms to every keep-alive request.
            connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._local.connection = connection
        return connection

    def _round_trip(self, method: str, path: str, body: bytes | None = None) -> object:
        fault = self.fault_plan.draw() if self.fault_plan is not None else None
        if fault is not None and fault.kind == "refuse":
            raise ServiceUnavailableError(
                f"injected fault: connection refused for {self.base_url}",
                sent_request=False,
            )
        if fault is not None and fault.timed:
            # Latency spike / slow-trickle: stall, then proceed normally.
            time.sleep(fault.stall_ms / 1000.0)
        url = self._prefix + path
        headers = {"Content-Type": "application/json"} if body is not None else {}
        status = payload = None
        ever_sent = False
        for attempt in (0, 1):
            try:
                try:
                    connection = self._connection()
                except OSError as error:
                    # Establishing the connection failed (refused, DNS, reset
                    # during connect): the server provably never saw the
                    # request, so this failure is always safe to retry.
                    self.close()
                    raise ServiceUnavailableError(
                        f"cannot reach service at {self.base_url}: {error}",
                        sent_request=False,
                    ) from None
                connection.request(method, url, body=body, headers=headers)
                # The body is framed by Content-Length: once request() returns
                # it is fully written, and every failure from here on is
                # *ambiguous* — the server may be executing the request.
                ever_sent = True
                if fault is not None and fault.kind == "drop":
                    self.close()
                    raise ServiceUnavailableError(
                        f"injected fault: connection dropped mid-request to {self.base_url}",
                        sent_request=True,
                    )
                response = connection.getresponse()
                status = response.status
                payload = response.read()
                if response.will_close:
                    self.close()
                break
            except _STALE_CONNECTION_ERRORS as error:
                # The keep-alive connection died between requests; retry once
                # on a fresh one, then report the worker as unreachable.
                self.close()
                if attempt:
                    raise ServiceUnavailableError(
                        f"cannot reach service at {self.base_url}: {error}",
                        sent_request=ever_sent,
                    ) from None
            except TimeoutError:
                self.close()
                raise ServiceUnavailableError(
                    f"service at {self.base_url} did not respond within {self.timeout} seconds",
                    sent_request=ever_sent,
                ) from None
            except (http.client.HTTPException, OSError) as error:
                self.close()
                raise ServiceUnavailableError(
                    f"cannot reach service at {self.base_url}: {error}",
                    sent_request=ever_sent,
                ) from None
        if fault is not None and fault.kind == "garble":
            # The server did the work; the reply arrives truncated.  Drop the
            # connection too — a real truncation kills the keep-alive stream.
            self.close()
            raise ProtocolError(
                f"injected fault: truncated response payload from {self.base_url}{url}"
            )
        text = payload.decode(errors="replace")
        try:
            decoded = json.loads(text)
        except json.JSONDecodeError:
            if status >= 400:
                raise ServiceError(f"HTTP {status} from {self.base_url}{url}: {text[:200]}") from None
            raise ProtocolError(
                f"non-JSON response from {self.base_url}{url}: {text[:200]!r} — is that really a repro service?"
            ) from None
        if status >= 400:
            self._raise_remote_error(decoded, status)
            raise ServiceError(f"HTTP {status} from {self.base_url}{url}")
        return decoded

    def _parse(self, payload: object) -> object:
        message = parse_wire(payload)  # type: ignore[arg-type]
        if isinstance(message, ErrorResponse):
            raise _remote_error(message)
        return message

    def _raise_remote_error(self, payload: object, status: int) -> None:
        try:
            message = parse_wire(payload)  # type: ignore[arg-type]
        except ProtocolError:
            raise ServiceError(f"HTTP {status}: unrecognized error body") from None
        if isinstance(message, ErrorResponse):
            raise _remote_error(message)

    def _expect(self, message: object, expected: type):
        if not isinstance(message, expected):
            raise ProtocolError(f"expected a {expected.__name__}, got {type(message).__name__}")
        return message


def _remote_error(message: ErrorResponse) -> ServiceError:
    """The typed local exception for a wire error.

    The stable ``code`` picks the class; the ``kind`` prefix is only kept
    when it adds information (the code resolved to a different class, e.g.
    an unregistered subclass or a message from a pre-v2 server).
    """
    error = error_for_code(message.code, message.error)
    if type(error).__name__ == message.kind:
        return error
    return error_for_code(message.code, f"{message.kind}: {message.error}")


class PreparedHandle:
    """Client-side face of one prepared statement.

    Thin and immutable: all state (the statement, its plan, its counters)
    lives server-side; the handle just remembers the id and what must be
    bound.  Iterate large answers with :meth:`stream` — pages are fetched
    lazily, so row ``n`` of a million-row answer does not wait for row
    999999 to be serialized.
    """

    def __init__(self, client: ServiceClient, response: PrepareResponse) -> None:
        self.client = client
        self.statement_id = response.statement_id
        self.database = response.database
        self.fingerprint = response.fingerprint
        self.template = response.template
        self.parameters = response.parameters
        self.arity = response.arity
        self.method = response.method
        self.engine = response.engine
        self.virtual_ne = response.virtual_ne

    def execute(self, params: Mapping[str, str] | None = None) -> QueryResponse:
        """One bound execution, answered as a single body."""
        return self.client.execute_prepared(self.statement_id, params)

    def execute_many(self, bindings) -> BatchResponse:
        """A parameter sweep: deduplicated server-side, positional answers."""
        return self.client.execute_prepared_many(self.statement_id, bindings)

    def stream(
        self,
        params: Mapping[str, str] | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> Iterator[tuple[str, ...]]:
        """Iterate the answer rows, fetching one page at a time.

        Rows arrive in the canonical (sorted) wire order, so collecting the
        iterator reproduces the single-body answer exactly.
        """
        cursor = self.client.open_cursor(self.statement_id, params, page_size=page_size)
        for page in range(cursor.pages):
            response = self.client.fetch_page(cursor.cursor_id, page)
            yield from response.rows
            if response.last:
                break

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"PreparedHandle({self.statement_id!r}, database={self.database!r}, "
            f"template={self.template!r}, parameters={self.parameters!r})"
        )

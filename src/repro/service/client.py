"""A thin urllib client for the JSON HTTP front-end.

The client speaks exactly the protocol of :mod:`repro.service.protocol`:
requests are protocol dataclasses serialized with
:func:`~repro.service.protocol.to_wire`, responses are deserialized with
:func:`~repro.service.protocol.parse_wire`.  Server-side errors (an
:class:`~repro.service.protocol.ErrorResponse` body with a 4xx status) are
re-raised locally as :class:`~repro.errors.ServiceError`, so remote and
in-process usage fail the same way.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Sequence
from urllib.parse import quote

from repro.errors import ProtocolError, ServiceError
from repro.service.protocol import (
    BatchRequest,
    BatchResponse,
    ClassifyRequest,
    ClassifyResponse,
    DatabasesResponse,
    ErrorResponse,
    HealthResponse,
    InfoResponse,
    QueryRequest,
    QueryResponse,
    StatsResponse,
    parse_wire,
    to_wire,
)

__all__ = ["ServiceClient"]

DEFAULT_TIMEOUT_SECONDS = 60.0


class ServiceClient:
    """Talk to a running service at ``base_url`` (e.g. ``http://127.0.0.1:8080``)."""

    def __init__(self, base_url: str, timeout: float = DEFAULT_TIMEOUT_SECONDS) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # Endpoints -----------------------------------------------------------------

    def health(self) -> HealthResponse:
        """Liveness probe."""
        return self._expect(self._get("/health"), HealthResponse)

    def databases(self) -> tuple[str, ...]:
        return self._expect(self._get("/databases"), DatabasesResponse).databases

    def info(self, database: str) -> InfoResponse:
        return self._expect(self._get(f"/info?db={quote(database)}"), InfoResponse)

    def stats(self) -> StatsResponse:
        return self._expect(self._get("/stats"), StatsResponse)

    def query(
        self,
        database: str,
        query: str,
        method: str = "approx",
        engine: str = "algebra",
        virtual_ne: bool = False,
    ) -> QueryResponse:
        request = QueryRequest(database, query, method, engine, virtual_ne)
        return self._expect(self._post("/query", request), QueryResponse)

    def execute(self, request: QueryRequest) -> QueryResponse:
        return self._expect(self._post("/query", request), QueryResponse)

    def classify(self, query: str) -> ClassifyResponse:
        return self._expect(self._post("/classify", ClassifyRequest(query)), ClassifyResponse)

    def batch(self, requests: Sequence[QueryRequest]) -> BatchResponse:
        return self._expect(self._post("/batch", BatchRequest(tuple(requests))), BatchResponse)

    def get_raw(self, path: str) -> dict:
        """GET a route and return the undecoded JSON payload (envelope included)."""
        payload = self._round_trip(urllib.request.Request(self.base_url + path))
        if not isinstance(payload, dict):
            raise ProtocolError(f"expected a JSON object from {path}, got {type(payload).__name__}")
        return payload

    # Plumbing ------------------------------------------------------------------

    def _get(self, path: str) -> object:
        return self._parse(self._round_trip(urllib.request.Request(self.base_url + path)))

    def _post(self, path: str, message: object) -> object:
        body = json.dumps(to_wire(message)).encode()
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return self._parse(self._round_trip(request))

    def _round_trip(self, request: urllib.request.Request) -> object:
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read().decode(errors="replace")
            try:
                return json.loads(body)
            except json.JSONDecodeError:
                raise ProtocolError(
                    f"non-JSON response from {request.full_url}: {body[:200]!r} — is that really a repro service?"
                ) from None
        except urllib.error.HTTPError as error:
            body = error.read().decode(errors="replace")
            try:
                payload = json.loads(body)
            except json.JSONDecodeError:
                raise ServiceError(f"HTTP {error.code} from {request.full_url}: {body[:200]}") from None
            self._raise_remote_error(payload, error.code)
            raise ServiceError(f"HTTP {error.code} from {request.full_url}") from None
        except urllib.error.URLError as error:
            raise ServiceError(f"cannot reach service at {self.base_url}: {error.reason}") from None
        except TimeoutError:
            raise ServiceError(
                f"service at {self.base_url} did not respond within {self.timeout} seconds"
            ) from None

    def _parse(self, payload: object) -> object:
        message = parse_wire(payload)  # type: ignore[arg-type]
        if isinstance(message, ErrorResponse):
            raise ServiceError(f"{message.kind}: {message.error}")
        return message

    def _raise_remote_error(self, payload: object, status: int) -> None:
        try:
            message = parse_wire(payload)  # type: ignore[arg-type]
        except ProtocolError:
            raise ServiceError(f"HTTP {status}: unrecognized error body") from None
        if isinstance(message, ErrorResponse):
            raise ServiceError(f"{message.kind}: {message.error}")

    def _expect(self, message: object, expected: type):
        if not isinstance(message, expected):
            raise ProtocolError(f"expected a {expected.__name__}, got {type(message).__name__}")
        return message

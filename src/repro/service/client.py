"""A thin stdlib client for the JSON HTTP front-end.

The client speaks exactly the protocol of :mod:`repro.service.protocol`:
requests are protocol dataclasses serialized with
:func:`~repro.service.protocol.to_wire`, responses are deserialized with
:func:`~repro.service.protocol.parse_wire`.  Server-side errors (an
:class:`~repro.service.protocol.ErrorResponse` body with a 4xx status) are
re-raised locally as :class:`~repro.errors.ServiceError`, so remote and
in-process usage fail the same way; transport-level failures (connection
refused, timeout) raise :class:`~repro.errors.ServiceUnavailableError` so
the cluster router can tell "worker down" from "worker said no".

Connections are **persistent**: each thread keeps one keep-alive
``http.client.HTTPConnection`` per client, because the cluster router pushes
thousands of small requests per second at each worker and a fresh TCP
connection per request costs more CPU than the query itself.  A stale
keep-alive connection (the server closed it between requests) is detected by
its signature errors and retried once on a fresh connection.  Some of those
signatures (a reset while waiting for the response) can also arrive after
the server started working, so a retried request may execute twice — safe
here because every protocol endpoint is a pure read; a future *mutating*
endpoint must tighten the retry set first.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
from typing import Sequence
from urllib.parse import quote, urlparse

from repro.errors import ProtocolError, ServiceError, ServiceUnavailableError
from repro.service.protocol import (
    BatchRequest,
    BatchResponse,
    ClassifyRequest,
    ClassifyResponse,
    DatabasesResponse,
    ErrorResponse,
    HealthResponse,
    InfoResponse,
    QueryRequest,
    QueryResponse,
    StatsResponse,
    parse_wire,
    to_wire,
)

__all__ = ["ServiceClient"]

DEFAULT_TIMEOUT_SECONDS = 60.0

#: Signatures of a kept-alive connection dying under us — retried exactly
#: once on a fresh connection.  Retries may re-execute a request the server
#: had already started on; see the module docstring for why that is safe.
_STALE_CONNECTION_ERRORS = (
    http.client.BadStatusLine,
    http.client.CannotSendRequest,
    ConnectionResetError,
    BrokenPipeError,
    ConnectionAbortedError,
)


class ServiceClient:
    """Talk to a running service at ``base_url`` (e.g. ``http://127.0.0.1:8080``)."""

    def __init__(self, base_url: str, timeout: float = DEFAULT_TIMEOUT_SECONDS) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        parsed = urlparse(self.base_url)
        if parsed.scheme not in ("http", "https") or not parsed.hostname:
            raise ServiceError(f"service URLs must look like http://host:port, got {base_url!r}")
        self._tls = parsed.scheme == "https"
        self._host = parsed.hostname
        self._port = parsed.port or (443 if self._tls else 80)
        self._prefix = parsed.path.rstrip("/")
        self._local = threading.local()

    # Endpoints -----------------------------------------------------------------

    def health(self) -> HealthResponse:
        """Liveness probe."""
        return self._expect(self._get("/health"), HealthResponse)

    def databases(self) -> tuple[str, ...]:
        return self._expect(self._get("/databases"), DatabasesResponse).databases

    def info(self, database: str) -> InfoResponse:
        return self._expect(self._get(f"/info?db={quote(database)}"), InfoResponse)

    def stats(self) -> StatsResponse:
        return self._expect(self._get("/stats"), StatsResponse)

    def query(
        self,
        database: str,
        query: str,
        method: str = "approx",
        engine: str = "algebra",
        virtual_ne: bool = False,
    ) -> QueryResponse:
        request = QueryRequest(database, query, method, engine, virtual_ne)
        return self._expect(self._post("/query", request), QueryResponse)

    def execute(self, request: QueryRequest) -> QueryResponse:
        return self._expect(self._post("/query", request), QueryResponse)

    def classify(self, query: str) -> ClassifyResponse:
        return self._expect(self._post("/classify", ClassifyRequest(query)), ClassifyResponse)

    def batch(self, requests: Sequence[QueryRequest]) -> BatchResponse:
        return self._expect(self._post("/batch", BatchRequest(tuple(requests))), BatchResponse)

    def get_raw(self, path: str) -> dict:
        """GET a route and return the undecoded JSON payload (envelope included)."""
        payload = self._round_trip("GET", path)
        if not isinstance(payload, dict):
            raise ProtocolError(f"expected a JSON object from {path}, got {type(payload).__name__}")
        return payload

    def close(self) -> None:
        """Drop this thread's persistent connection (harmless if absent)."""
        connection = getattr(self._local, "connection", None)
        self._local.connection = None
        if connection is not None:
            try:
                connection.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    # Plumbing ------------------------------------------------------------------

    def _get(self, path: str) -> object:
        return self._parse(self._round_trip("GET", path))

    def _post(self, path: str, message: object) -> object:
        return self._parse(self._round_trip("POST", path, json.dumps(to_wire(message)).encode()))

    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection_type = http.client.HTTPSConnection if self._tls else http.client.HTTPConnection
            connection = connection_type(self._host, self._port, timeout=self.timeout)
            connection.connect()
            # Headers and body go out as separate writes; without TCP_NODELAY
            # Nagle holds the second one for the server's delayed ACK, adding
            # ~40ms to every keep-alive request.
            connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._local.connection = connection
        return connection

    def _round_trip(self, method: str, path: str, body: bytes | None = None) -> object:
        url = self._prefix + path
        headers = {"Content-Type": "application/json"} if body is not None else {}
        status = payload = None
        for attempt in (0, 1):
            try:
                connection = self._connection()
                connection.request(method, url, body=body, headers=headers)
                response = connection.getresponse()
                status = response.status
                payload = response.read()
                if response.will_close:
                    self.close()
                break
            except _STALE_CONNECTION_ERRORS as error:
                # The keep-alive connection died between requests; retry once
                # on a fresh one, then report the worker as unreachable.
                self.close()
                if attempt:
                    raise ServiceUnavailableError(
                        f"cannot reach service at {self.base_url}: {error}"
                    ) from None
            except TimeoutError:
                self.close()
                raise ServiceUnavailableError(
                    f"service at {self.base_url} did not respond within {self.timeout} seconds"
                ) from None
            except (http.client.HTTPException, OSError) as error:
                self.close()
                raise ServiceUnavailableError(
                    f"cannot reach service at {self.base_url}: {error}"
                ) from None
        text = payload.decode(errors="replace")
        try:
            decoded = json.loads(text)
        except json.JSONDecodeError:
            if status >= 400:
                raise ServiceError(f"HTTP {status} from {self.base_url}{url}: {text[:200]}") from None
            raise ProtocolError(
                f"non-JSON response from {self.base_url}{url}: {text[:200]!r} — is that really a repro service?"
            ) from None
        if status >= 400:
            self._raise_remote_error(decoded, status)
            raise ServiceError(f"HTTP {status} from {self.base_url}{url}")
        return decoded

    def _parse(self, payload: object) -> object:
        message = parse_wire(payload)  # type: ignore[arg-type]
        if isinstance(message, ErrorResponse):
            raise ServiceError(f"{message.kind}: {message.error}")
        return message

    def _raise_remote_error(self, payload: object, status: int) -> None:
        try:
            message = parse_wire(payload)  # type: ignore[arg-type]
        except ProtocolError:
            raise ServiceError(f"HTTP {status}: unrecognized error body") from None
        if isinstance(message, ErrorResponse):
            raise ServiceError(f"{message.kind}: {message.error}")

    def _expect(self, message: object, expected: type):
        if not isinstance(message, expected):
            raise ProtocolError(f"expected a {expected.__name__}, got {type(message).__name__}")
        return message

"""A stdlib JSON HTTP front-end for the query service (protocol v1 + v2).

Varda-style loosely coupled components: the engine knows nothing about
HTTP, and this module knows nothing about query evaluation — it only
translates between HTTP messages and :mod:`repro.service.protocol`
messages.  Built on :class:`http.server.ThreadingHTTPServer` so concurrent
clients exercise the engine's thread safety with zero new dependencies.

Routes
------
=============  ======  ==================================================
``/health``    GET     liveness + library version + protocol versions
``/databases`` GET     registered snapshot names
``/info``      GET     ``?db=<name>`` → :class:`InfoResponse`
``/stats``     GET     cache/batch/prepared counters
``/metrics``   GET     telemetry snapshot: counters + p50/p95/p99 histograms
``/debug/flightrecorder``  GET  forensic ring of slow/failed requests
``/query``     POST    :class:`QueryRequest` → :class:`QueryResponse`
``/classify``  POST    :class:`ClassifyRequest` → :class:`ClassifyResponse`
``/batch``     POST    :class:`BatchRequest` → :class:`BatchResponse`
``/prepare``   POST    :class:`PrepareRequest` → :class:`PrepareResponse`
``/execute``   POST    :class:`ExecuteRequest` → :class:`QueryResponse`
                       (or :class:`CursorResponse` when streaming), and
                       :class:`ExecuteManyRequest` → :class:`BatchResponse`
``/fetch``     POST    :class:`FetchRequest` → :class:`PageResponse`
=============  ======  ==================================================

Errors come back as :class:`ErrorResponse` bodies (stable ``code`` field)
with a 4xx status.

**Version negotiation.**  POST responses are serialized at the *request
envelope's* version, so a v1 client only ever sees v1 envelopes; GET
responses (which carry no request envelope) are serialized at v1 — the
lowest common denominator every client parses — and ``/health`` advertises
the full :data:`~repro.service.protocol.SUPPORTED_PROTOCOL_VERSIONS` so v2
clients know they may upgrade.  The session routes (``/prepare``,
``/execute``, ``/fetch``) require v2 envelopes.

**Tracing.**  A POST request envelope may carry a ``trace`` context
(``{"id": ..., "span": ...}``, see :mod:`repro.observability.tracing`); the
server then records its handling under that trace and returns the collected
spans in a ``trace`` field on the response envelope, which the client folds
back into the caller's span tree.  Requests without the field pay nothing.

**Resilience.**  A POST envelope may also carry ``deadline_ms`` — the
caller's remaining budget, re-anchored on this server's monotonic clock and
enforced down in the engine/executor; overruns answer 504 with the typed
``deadline_exceeded`` code.  Each server owns an
:class:`~repro.resilience.admission.AdmissionController`: POSTs beyond the
in-flight watermark queue briefly (bounded by their own deadline), and past
the queue watermark they are shed as 503 ``overloaded`` with a
``Retry-After`` hint — failing a bounded subset fast instead of letting
every request time out.  GETs bypass admission so monitoring stays usable
exactly when the server is overloaded.  ``REPRO_NO_RESILIENCE=1`` disables
both, restoring the pre-resilience behavior byte-for-byte.

**Accounting and forensics.**  Every POST opens a
:class:`~repro.observability.accounting.ResourceAccount` and activates it
on the handling thread, so the executor, engine, admission controller and
router charge the request's itemized bill without parameter threading.
An envelope carrying ``"account": true`` (protocol v2) gets the bill back
as a ``cost`` field on the response; either way the bill is folded into
the aggregate ``account.*`` counters and handed — together with the
request's trace, plan profile and event tail — to the server's
:class:`~repro.observability.recorder.FlightRecorder`, which captures
slow and failed requests in a bounded ring served at
``GET /debug/flightrecorder``.
"""

from __future__ import annotations

import contextlib
import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Mapping
from urllib.parse import parse_qs, urlparse

from repro.errors import (
    CapacityError,
    DeadlineExceededError,
    OverloadedError,
    ProtocolError,
    ReproError,
    ServiceError,
    UnknownCursorError,
    UnknownDatabaseError,
    UnknownStatementError,
)
from repro.observability import events, tracing
from repro.observability.accounting import ResourceAccount, activate as activate_account
from repro.observability.recorder import FlightRecorder
from repro.resilience import resilience_disabled
from repro.resilience import deadlines
from repro.resilience.admission import AdmissionController
from repro.service.cursors import CursorStore
from repro.service.engine import QueryService
from repro.service.protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS,
    BatchRequest,
    ClassifyRequest,
    DatabasesResponse,
    DeprecationGate,
    ErrorResponse,
    ExecuteManyRequest,
    ExecuteRequest,
    FetchRequest,
    HealthResponse,
    MetricsResponse,
    PrepareRequest,
    PrepareResponse,
    QueryRequest,
    parse_wire,
    to_wire,
    wire_version,
)

__all__ = ["ServiceHTTPServer", "make_server", "running_server", "serve"]

MAX_REQUEST_BYTES = 4 * 1024 * 1024

#: GET responses carry no request envelope to echo, so they are serialized
#: at the lowest supported version — every client, v1 or v2, parses them.
_GET_VERSION = min(SUPPORTED_PROTOCOL_VERSIONS)


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`QueryService`."""

    daemon_threads = True
    # The socketserver default backlog of 5 drops (ECONNRESET) bursts of new
    # connections long before the engine is saturated — the cluster router
    # fans dozens of short-lived urllib connections at each worker.
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        service: QueryService,
        quiet: bool = True,
        max_in_flight: int | None = None,
        max_queue_depth: int | None = None,
        recorder_capacity: int | None = None,
        slow_threshold_ms: float | None = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet
        #: The forensic ring: every completed POST is observed, slow and
        #: failed ones are captured with trace + profile + bill + events.
        recorder_kwargs = {}
        if recorder_capacity is not None:
            recorder_kwargs["capacity"] = recorder_capacity
        if slow_threshold_ms is not None:
            recorder_kwargs["slow_threshold_ms"] = slow_threshold_ms
        self.flight_recorder = FlightRecorder(**recorder_kwargs)
        #: Streaming cursors are transport state: they live with the server,
        #: not the engine, so in-process service use never pays for them.
        self.cursors = CursorStore()
        #: The v1-deprecation warning fires once per server instance, not
        #: once per process — restarting the server re-arms it.
        self.v1_deprecation = DeprecationGate()
        #: Admission control is transport state too: the in-process service
        #: has no thread bound to protect.  ``None`` (with the kill switch)
        #: means every POST dispatches immediately, as before PR 7.
        if resilience_disabled():
            self.admission: AdmissionController | None = None
        else:
            kwargs = {}
            if max_in_flight is not None:
                kwargs["max_in_flight"] = max_in_flight
            if max_queue_depth is not None:
                kwargs["max_queue_depth"] = max_queue_depth
            self.admission = AdmissionController(
                metrics=getattr(service, "metrics_registry", None), **kwargs
            )

    @property
    def base_url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def drain(self, timeout_seconds: float = 5.0) -> bool:
        """Wait for admitted requests to finish; ``False`` on timeout.

        Graceful-shutdown hook: call after ``shutdown()`` (no new requests)
        and before ``server_close()``, so in-flight work completes instead
        of surfacing as transport errors to callers.  A no-op ``True`` when
        admission control is disabled.
        """
        if self.admission is None:
            return True
        return self.admission.drain(timeout_seconds)


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    server_version = "repro-service/2.0"
    protocol_version = "HTTP/1.1"
    # Response headers and body are separate writes; let them leave
    # immediately instead of waiting on the client's delayed ACK.
    disable_nagle_algorithm = True

    # Routing ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        try:
            if url.path == "/health":
                from repro import __version__

                self._send_message(
                    200,
                    HealthResponse(
                        status="ok",
                        library_version=__version__,
                        protocol_versions=SUPPORTED_PROTOCOL_VERSIONS,
                    ),
                    _GET_VERSION,
                )
            elif url.path == "/databases":
                self._send_message(
                    200, DatabasesResponse(self.server.service.database_names()), _GET_VERSION
                )
            elif url.path == "/info":
                names = parse_qs(url.query).get("db", [])
                if len(names) != 1:
                    raise ServiceError("/info needs exactly one ?db=<name> parameter")
                self._send_message(200, self.server.service.info(names[0]), _GET_VERSION)
            elif url.path == "/stats":
                self._send_message(200, self.server.service.stats(), _GET_VERSION)
            elif url.path == "/metrics":
                metrics = getattr(self.server.service, "metrics", None)
                self._send_message(
                    200, metrics() if callable(metrics) else MetricsResponse(), _GET_VERSION
                )
            elif url.path == "/debug/flightrecorder":
                # Plain JSON rather than a protocol dataclass: an operator
                # forensic endpoint, versioned by its own ``schema`` field.
                self._send(200, self.server.flight_recorder.snapshot())
            else:
                self._send_error_response(404, ServiceError(f"no such route: GET {url.path}"), _GET_VERSION)
        except ReproError as error:
            self._send_error_response(_status_for(error), error, _GET_VERSION)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        version = PROTOCOL_VERSION
        started = time.perf_counter()
        account = ResourceAccount()
        trace_ctx = None
        message = None
        response = None
        status = 200
        failure: ReproError | None = None
        try:
            if url.path not in ("/query", "/classify", "/batch", "/prepare", "/execute", "/fetch"):
                # Route before reading the body so probes of unknown paths
                # get a 404, not a complaint about their payload.
                self._send_error_response(404, ServiceError(f"no such route: POST {url.path}"))
                return
            body = self._read_body()
            account.add_bytes_in(len(body))
            try:
                payload = json.loads(body)
            except json.JSONDecodeError as error:
                raise ProtocolError(f"payload is not valid JSON: {error}") from None
            # The version is pinned *before* the message parse, so even a
            # malformed v1 request gets its error echoed in a v1 envelope —
            # a v1 client must never see a v2 envelope, errors included.
            version = wire_version(payload)
            if version < 2:
                try:
                    self.server.v1_deprecation.warn(f"POST {self.path}")
                except DeprecationWarning:
                    # An operator running -W error must not turn legacy-but-
                    # supported v1 traffic into dropped connections.
                    pass
            trace_ctx = tracing.adopt(payload.get("trace")) if isinstance(payload, dict) else None
            deadline = None
            if isinstance(payload, dict) and not resilience_disabled():
                # Re-anchor the caller's remaining budget on this process's
                # monotonic clock; absent/malformed means "no deadline" (a v1
                # envelope never carries one).
                deadline = deadlines.adopt(payload.get("deadline_ms"))
            wants_cost = (
                version >= 2 and isinstance(payload, dict) and payload.get("account") is True
            )
            message = parse_wire(payload)
            with deadlines.activate(deadline):
                if deadline is not None:
                    deadline.check("request admission")
                # Admission *inside* the deadline scope: a queued request's
                # wait is bounded by its own remaining budget.  The account
                # activates around admission too, so queue wait is billed.
                with activate_account(account):
                    admission = self.server.admission
                    admit = admission.admit() if admission is not None else contextlib.nullcontext()
                    with admit:
                        with tracing.activate(trace_ctx):
                            with tracing.span(f"POST {url.path}"):
                                response = self._dispatch_post(url.path, message)
            wire = to_wire(response, version)
            if trace_ctx is not None:
                # Embedded after the root span closed, so the caller's tree
                # includes this hop's full server-side duration.
                wire["trace"] = trace_ctx.to_wire()
            if wants_cost:
                # The bill is rendered before this response is serialized,
                # so its ``bytes_out`` excludes the response carrying it;
                # the flight recorder's copy (below) includes it.
                wire["cost"] = account.to_payload()
            account.add_bytes_out(self._send(200, wire))
        except ReproError as error:
            status = _status_for(error)
            failure = error
            self._send_error_response(status, error, version)
        finally:
            self._observe_request(url.path, started, status, failure, trace_ctx, account, message, response)

    def _observe_request(
        self,
        path: str,
        started: float,
        status: int,
        error: ReproError | None,
        trace_ctx,
        account: ResourceAccount,
        message: object,
        response: object,
    ) -> None:
        """Fold one finished POST into aggregate and forensic telemetry."""
        registry = getattr(self.server.service, "metrics_registry", None)
        if registry is not None:
            account.charge_metrics(registry)
        recorder = self.server.flight_recorder
        duration_ms = (time.perf_counter() - started) * 1000.0
        # Cheap precheck mirroring the recorder's capture predicate: fast
        # healthy requests are counted without building the forensic extras.
        if error is None and status < 400 and duration_ms < recorder.slow_threshold_ms:
            recorder.observe(path=path, duration_ms=duration_ms, status=status)
            return
        trace_id = trace_ctx.trace_id if trace_ctx is not None else None
        recorder.observe(
            path=path,
            duration_ms=duration_ms,
            status=status,
            database=getattr(message, "database", None),
            query=getattr(message, "query", None) or getattr(message, "template", None),
            error={"kind": type(error).__name__, "message": str(error)} if error is not None else None,
            trace=trace_ctx.to_wire() if trace_ctx is not None else None,
            profile=getattr(response, "profile", None),
            cost=account.to_payload(),
            events=events.default_log().tail(trace_id=trace_id) if trace_id is not None else None,
        )

    def _dispatch_post(self, path: str, message: object):
        """Route one parsed POST message to the engine; returns the response."""
        service = self.server.service
        registry = getattr(service, "metrics_registry", None)
        timer = registry.time(f"http.{path}") if registry is not None else contextlib.nullcontext()
        with timer:
            if path == "/query":
                request = _expect_type(message, QueryRequest)
                return service.execute(request)
            if path == "/classify":
                request = _expect_type(message, ClassifyRequest)
                return service.classify(request.query)
            if path == "/batch":
                request = _expect_type(message, BatchRequest)
                return service.batch(request.requests)
            if path == "/prepare":
                request = _expect_type(message, PrepareRequest)
                statement = service.prepare(
                    request.database,
                    request.template,
                    request.method,
                    request.engine,
                    request.virtual_ne,
                )
                return _prepare_response(service, statement)
            if path == "/execute":
                request = _expect_type(message, (ExecuteRequest, ExecuteManyRequest))
                if isinstance(request, ExecuteManyRequest):
                    return service.execute_prepared_many(request.statement_id, request.bindings)
                if not request.stream:
                    return service.execute_prepared(request.statement_id, request.params)
                # Refuse the un-streamable shape *before* evaluating: a
                # method="both" statement would pay the (exponential)
                # exact route only to be rejected afterwards.
                if service.statement(request.statement_id).method == "both":
                    raise ServiceError(
                        "streaming needs a single answer route: prepare with "
                        "method 'approx' or 'exact', not 'both'"
                    )
                response = service.execute_prepared(request.statement_id, request.params)
                label = "exact" if response.method == "exact" else "approximate"
                return self.server.cursors.open(response, label, request.page_size)
            request = _expect_type(message, FetchRequest)
            return self.server.cursors.fetch(request.cursor_id, request.page)

    # Plumbing -----------------------------------------------------------------

    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise ProtocolError("Content-Length header is not a number") from None
        if length <= 0:
            raise ProtocolError("POST body is empty; send a JSON protocol message")
        if length > MAX_REQUEST_BYTES:
            raise ProtocolError(f"request body of {length} bytes exceeds the {MAX_REQUEST_BYTES} byte limit")
        return self.rfile.read(length)

    def _send(self, status: int, payload: dict, headers: Mapping[str, str] | None = None) -> int:
        """Write one JSON response; returns the body size for the byte bill."""
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if headers:
            for name, value in headers.items():
                self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        return len(body)

    def _send_message(self, status: int, message: object, version: int) -> None:
        self._send(status, to_wire(message, version))

    def _send_error_response(self, status: int, error: ReproError, version: int = PROTOCOL_VERSION) -> None:
        # The request body may not have been drained (bad Content-Length,
        # oversized payload), which would desync a keep-alive connection —
        # close it rather than let the leftover bytes parse as a request.
        self.close_connection = True
        headers = None
        if isinstance(error, OverloadedError) and error.retry_after_seconds is not None:
            # HTTP wants integral delta-seconds; round up so the header never
            # invites an earlier retry than the server asked for.  The precise
            # sub-second hint stays in the JSON error message.
            headers = {"Retry-After": str(max(1, math.ceil(error.retry_after_seconds)))}
        self._send(status, to_wire(ErrorResponse.from_exception(error), version), headers)

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - http.server API
        if not self.server.quiet:
            super().log_message(format, *args)


def _prepare_response(service, statement) -> PrepareResponse:
    """Wire form of a registered statement (shared by service and cluster)."""
    return PrepareResponse(
        statement_id=statement.statement_id,
        database=statement.database,
        fingerprint=service.entry(statement.database).fingerprint,
        template=statement.template,
        parameters=statement.parameters,
        arity=statement.arity,
        method=statement.method,
        engine=statement.engine,
        virtual_ne=statement.virtual_ne,
    )


def _expect_type(message: object, expected):
    if not isinstance(message, expected):
        name = expected.__name__ if isinstance(expected, type) else " or ".join(t.__name__ for t in expected)
        raise ProtocolError(f"this route expects a {name} message, got {type(message).__name__}")
    return message


def _status_for(error: ReproError) -> int:
    if isinstance(error, (UnknownDatabaseError, UnknownStatementError, UnknownCursorError)):
        return 404
    if isinstance(error, CapacityError):
        return 413
    if isinstance(error, OverloadedError):
        return 503
    if isinstance(error, DeadlineExceededError):
        return 504
    return 400


def make_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
    max_in_flight: int | None = None,
    max_queue_depth: int | None = None,
    recorder_capacity: int | None = None,
    slow_threshold_ms: float | None = None,
) -> ServiceHTTPServer:
    """Bind a server (``port=0`` picks an ephemeral port); does not serve yet."""
    return ServiceHTTPServer(
        (host, port),
        service,
        quiet=quiet,
        max_in_flight=max_in_flight,
        max_queue_depth=max_queue_depth,
        recorder_capacity=recorder_capacity,
        slow_threshold_ms=slow_threshold_ms,
    )


@contextlib.contextmanager
def running_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
    max_in_flight: int | None = None,
    max_queue_depth: int | None = None,
    recorder_capacity: int | None = None,
    slow_threshold_ms: float | None = None,
):
    """Context manager: a server serving on a background thread.

    Yields the bound :class:`ServiceHTTPServer`; on exit the server shuts
    down, drains in-flight requests, and the thread joins.  This is how the
    tests and the benchmark run client↔server round trips on an ephemeral
    port.
    """
    server = make_server(
        service,
        host,
        port,
        quiet=quiet,
        max_in_flight=max_in_flight,
        max_queue_depth=max_queue_depth,
        recorder_capacity=recorder_capacity,
        slow_threshold_ms=slow_threshold_ms,
    )
    thread = threading.Thread(target=server.serve_forever, name="repro-service-http", daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.drain()
        server.server_close()


def serve(service: QueryService, host: str = "127.0.0.1", port: int = 8080, quiet: bool = False) -> None:
    """Serve forever in the foreground (the CLI's ``serve`` command)."""
    with make_server(service, host, port, quiet=quiet) as server:
        print(f"repro service listening on {server.base_url}")
        for name in service.database_names():
            print(f"  database {name!r}: {service.entry(name).database.describe()}")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down")

"""A stdlib JSON HTTP front-end for the query service.

Varda-style loosely coupled components: the engine knows nothing about
HTTP, and this module knows nothing about query evaluation — it only
translates between HTTP messages and :mod:`repro.service.protocol`
messages.  Built on :class:`http.server.ThreadingHTTPServer` so concurrent
clients exercise the engine's thread safety with zero new dependencies.

Routes
------
===========  ======  ==================================================
``/health``  GET     liveness + library/protocol versions
``/databases``  GET  registered snapshot names
``/info``    GET     ``?db=<name>`` → :class:`InfoResponse`
``/stats``   GET     cache and batch counters
``/query``   POST    :class:`QueryRequest` → :class:`QueryResponse`
``/classify``  POST  :class:`ClassifyRequest` → :class:`ClassifyResponse`
``/batch``   POST    :class:`BatchRequest` → :class:`BatchResponse`
===========  ======  ==================================================

Errors come back as :class:`ErrorResponse` bodies with a 4xx status.
"""

from __future__ import annotations

import contextlib
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.errors import CapacityError, ProtocolError, ReproError, ServiceError, UnknownDatabaseError
from repro.service.engine import QueryService
from repro.service.protocol import (
    BatchRequest,
    ClassifyRequest,
    DatabasesResponse,
    ErrorResponse,
    HealthResponse,
    QueryRequest,
    parse_wire,
    to_wire,
)

__all__ = ["ServiceHTTPServer", "make_server", "running_server", "serve"]

MAX_REQUEST_BYTES = 4 * 1024 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`QueryService`."""

    daemon_threads = True
    # The socketserver default backlog of 5 drops (ECONNRESET) bursts of new
    # connections long before the engine is saturated — the cluster router
    # fans dozens of short-lived urllib connections at each worker.
    request_queue_size = 128

    def __init__(self, address: tuple[str, int], service: QueryService, quiet: bool = True) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet

    @property
    def base_url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"
    # Response headers and body are separate writes; let them leave
    # immediately instead of waiting on the client's delayed ACK.
    disable_nagle_algorithm = True

    # Routing ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        try:
            if url.path == "/health":
                from repro import __version__

                self._send(200, to_wire(HealthResponse(status="ok", library_version=__version__)))
            elif url.path == "/databases":
                self._send(200, to_wire(DatabasesResponse(self.server.service.database_names())))
            elif url.path == "/info":
                names = parse_qs(url.query).get("db", [])
                if len(names) != 1:
                    raise ServiceError("/info needs exactly one ?db=<name> parameter")
                self._send(200, to_wire(self.server.service.info(names[0])))
            elif url.path == "/stats":
                self._send(200, to_wire(self.server.service.stats()))
            else:
                self._send_error_response(404, ServiceError(f"no such route: GET {url.path}"))
        except ReproError as error:
            self._send_error_response(_status_for(error), error)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        try:
            if url.path not in ("/query", "/classify", "/batch"):
                # Route before reading the body so probes of unknown paths
                # get a 404, not a complaint about their payload.
                self._send_error_response(404, ServiceError(f"no such route: POST {url.path}"))
                return
            message = self._read_message()
            if url.path == "/query":
                request = _expect_type(message, QueryRequest)
                self._send(200, to_wire(self.server.service.execute(request)))
            elif url.path == "/classify":
                request = _expect_type(message, ClassifyRequest)
                self._send(200, to_wire(self.server.service.classify(request.query)))
            else:
                request = _expect_type(message, BatchRequest)
                self._send(200, to_wire(self.server.service.batch(request.requests)))
        except ReproError as error:
            self._send_error_response(_status_for(error), error)

    # Plumbing -----------------------------------------------------------------

    def _read_message(self) -> object:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise ProtocolError("Content-Length header is not a number") from None
        if length <= 0:
            raise ProtocolError("POST body is empty; send a JSON protocol message")
        if length > MAX_REQUEST_BYTES:
            raise ProtocolError(f"request body of {length} bytes exceeds the {MAX_REQUEST_BYTES} byte limit")
        return parse_wire(self.rfile.read(length))

    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_response(self, status: int, error: ReproError) -> None:
        # The request body may not have been drained (bad Content-Length,
        # oversized payload), which would desync a keep-alive connection —
        # close it rather than let the leftover bytes parse as a request.
        self.close_connection = True
        self._send(status, to_wire(ErrorResponse(error=str(error), kind=type(error).__name__)))

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - http.server API
        if not self.server.quiet:
            super().log_message(format, *args)


def _expect_type(message: object, expected: type):
    if not isinstance(message, expected):
        raise ProtocolError(
            f"this route expects a {expected.__name__} message, got {type(message).__name__}"
        )
    return message


def _status_for(error: ReproError) -> int:
    if isinstance(error, UnknownDatabaseError):
        return 404
    if isinstance(error, CapacityError):
        return 413
    return 400


def make_server(service: QueryService, host: str = "127.0.0.1", port: int = 0, quiet: bool = True) -> ServiceHTTPServer:
    """Bind a server (``port=0`` picks an ephemeral port); does not serve yet."""
    return ServiceHTTPServer((host, port), service, quiet=quiet)


@contextlib.contextmanager
def running_server(service: QueryService, host: str = "127.0.0.1", port: int = 0, quiet: bool = True):
    """Context manager: a server serving on a background thread.

    Yields the bound :class:`ServiceHTTPServer`; on exit the server shuts
    down and the thread joins.  This is how the tests and the benchmark run
    client↔server round trips on an ephemeral port.
    """
    server = make_server(service, host, port, quiet=quiet)
    thread = threading.Thread(target=server.serve_forever, name="repro-service-http", daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()


def serve(service: QueryService, host: str = "127.0.0.1", port: int = 8080, quiet: bool = False) -> None:
    """Serve forever in the foreground (the CLI's ``serve`` command)."""
    with make_server(service, host, port, quiet=quiet) as server:
        print(f"repro service listening on {server.base_url}")
        for name in service.database_names():
            print(f"  database {name!r}: {service.entry(name).database.describe()}")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down")

"""The concurrent query-serving subsystem.

Loosely coupled layers, each usable on its own:

* :mod:`repro.service.engine` — :class:`QueryService`: named immutable
  database snapshots with precomputed ``Ph2`` storage and result caching;
* :mod:`repro.service.prepared` — prepared statements (parse + plan once,
  execute per binding) shared with the cluster router;
* :mod:`repro.service.cache` — the thread-safe LRU underneath;
* :mod:`repro.service.batch` — deduplicated concurrent batch evaluation
  (ad-hoc request batches and prepared parameter sweeps);
* :mod:`repro.service.protocol` — versioned JSON request/response messages,
  v1 + the v2 session/streaming API (also the CLI's ``--json`` serializer);
* :mod:`repro.service.cursors` — server-side cursors for chunked streaming;
* :mod:`repro.service.server` — the stdlib HTTP front-end;
* :mod:`repro.service.client` — the keep-alive client with typed remote
  errors and :class:`PreparedHandle` streaming.
"""

from repro.service.batch import BatchEvaluator, PreparedBatchEvaluator, evaluate_batch
from repro.service.cache import CacheStats, LRUCache
from repro.service.client import PreparedHandle, ServiceClient
from repro.service.cursors import CursorStore
from repro.service.engine import QueryService, RegisteredDatabase
from repro.service.prepared import PreparedStatement, StatementRegistry
from repro.service.protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS,
    BatchRequest,
    BatchResponse,
    ClassifyRequest,
    ClassifyResponse,
    CursorResponse,
    DatabasesResponse,
    ErrorResponse,
    ExecuteManyRequest,
    ExecuteRequest,
    FetchRequest,
    HealthResponse,
    InfoResponse,
    PageResponse,
    PrepareRequest,
    PrepareResponse,
    QueryRequest,
    QueryResponse,
    StatsResponse,
    dump_wire,
    parse_wire,
    to_wire,
)
from repro.service.server import ServiceHTTPServer, make_server, running_server, serve

__all__ = [
    "QueryService",
    "RegisteredDatabase",
    "PreparedStatement",
    "StatementRegistry",
    "LRUCache",
    "CacheStats",
    "BatchEvaluator",
    "PreparedBatchEvaluator",
    "evaluate_batch",
    "ServiceClient",
    "PreparedHandle",
    "CursorStore",
    "ServiceHTTPServer",
    "make_server",
    "running_server",
    "serve",
    "PROTOCOL_VERSION",
    "SUPPORTED_PROTOCOL_VERSIONS",
    "QueryRequest",
    "QueryResponse",
    "ClassifyRequest",
    "ClassifyResponse",
    "InfoResponse",
    "HealthResponse",
    "DatabasesResponse",
    "StatsResponse",
    "BatchRequest",
    "BatchResponse",
    "ErrorResponse",
    "PrepareRequest",
    "PrepareResponse",
    "ExecuteRequest",
    "ExecuteManyRequest",
    "CursorResponse",
    "FetchRequest",
    "PageResponse",
    "to_wire",
    "parse_wire",
    "dump_wire",
]

"""The concurrent query-serving subsystem.

Loosely coupled layers, each usable on its own:

* :mod:`repro.service.engine` — :class:`QueryService`: named immutable
  database snapshots with precomputed ``Ph2`` storage and result caching;
* :mod:`repro.service.cache` — the thread-safe LRU underneath;
* :mod:`repro.service.batch` — deduplicated concurrent batch evaluation;
* :mod:`repro.service.protocol` — versioned JSON request/response messages
  (also the CLI's ``--json`` serializer);
* :mod:`repro.service.server` — the stdlib HTTP front-end;
* :mod:`repro.service.client` — the urllib client.
"""

from repro.service.batch import BatchEvaluator, evaluate_batch
from repro.service.cache import CacheStats, LRUCache
from repro.service.client import ServiceClient
from repro.service.engine import QueryService, RegisteredDatabase
from repro.service.protocol import (
    PROTOCOL_VERSION,
    BatchRequest,
    BatchResponse,
    ClassifyRequest,
    ClassifyResponse,
    DatabasesResponse,
    ErrorResponse,
    HealthResponse,
    InfoResponse,
    QueryRequest,
    QueryResponse,
    StatsResponse,
    dump_wire,
    parse_wire,
    to_wire,
)
from repro.service.server import ServiceHTTPServer, make_server, running_server, serve

__all__ = [
    "QueryService",
    "RegisteredDatabase",
    "LRUCache",
    "CacheStats",
    "BatchEvaluator",
    "evaluate_batch",
    "ServiceClient",
    "ServiceHTTPServer",
    "make_server",
    "running_server",
    "serve",
    "PROTOCOL_VERSION",
    "QueryRequest",
    "QueryResponse",
    "ClassifyRequest",
    "ClassifyResponse",
    "InfoResponse",
    "HealthResponse",
    "DatabasesResponse",
    "StatsResponse",
    "BatchRequest",
    "BatchResponse",
    "ErrorResponse",
    "to_wire",
    "parse_wire",
    "dump_wire",
]

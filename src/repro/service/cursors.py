"""Server-side cursors for chunked (streamed) answer delivery.

Protocol v1 ships every answer set as one JSON body; a large answer over a
large instance turns into a single multi-megabyte serialization on one
thread.  Protocol v2's streaming path materializes the answer once into a
*cursor* — the canonical sorted row order, chopped into fixed-size pages —
and hands the client a cursor id; pages are then fetched individually and
idempotently (:class:`~repro.service.protocol.FetchRequest` names an
explicit page index, so a retried fetch re-reads rather than double-
advances, which keeps the client's stale-connection retry safe).

Cursors live in the transport layer (the HTTP server owns one store), not
in the engine — in-process callers already hold the full answer set as a
frozenset and have nothing to stream.  The store is a bounded LRU: an
abandoned cursor costs memory until eviction, an evicted cursor raises
:class:`~repro.errors.UnknownCursorError` and the client re-executes.
"""

from __future__ import annotations

import secrets
import threading
from collections import OrderedDict

from repro.errors import ServiceError, UnknownCursorError
from repro.observability import events
from repro.service.protocol import CursorResponse, PageResponse, QueryResponse

__all__ = ["CursorStore", "DEFAULT_CURSOR_CAPACITY"]

DEFAULT_CURSOR_CAPACITY = 256


class CursorStore:
    """A bounded, thread-safe registry of open streaming cursors."""

    def __init__(self, capacity: int = DEFAULT_CURSOR_CAPACITY) -> None:
        if capacity < 1:
            raise ServiceError("a cursor store needs capacity for at least one cursor")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._cursors: OrderedDict[str, tuple[tuple[tuple[tuple[str, ...], ...], ...], int]] = OrderedDict()

    def open(self, response: QueryResponse, label: str, page_size: int) -> CursorResponse:
        """Materialize one answer route of *response* into a cursor.

        The rows are already in canonical wire order (``answers_to_wire``
        sorted them), so concatenating the pages in index order reproduces
        the v1 single-body ``answers[label]`` byte for byte.
        """
        if page_size < 1:
            raise ServiceError(f"page_size must be a positive integer, got {page_size!r}")
        try:
            rows = response.answers[label]
        except KeyError:
            raise ServiceError(
                f"response has no {label!r} answers to stream (method was {response.method!r})"
            ) from None
        pages = tuple(rows[start:start + page_size] for start in range(0, len(rows), page_size)) or ((),)
        cursor_id = secrets.token_hex(16)
        with self._lock:
            self._cursors[cursor_id] = (pages, len(rows))
            while len(self._cursors) > self._capacity:
                evicted_id, (evicted_pages, evicted_rows) = self._cursors.popitem(last=False)
                events.emit(
                    "cursor.evicted",
                    level="warning",
                    cursor_id=evicted_id,
                    pages=len(evicted_pages),
                    total_rows=evicted_rows,
                    capacity=self._capacity,
                )
        return CursorResponse(
            cursor_id=cursor_id,
            database=response.database,
            fingerprint=response.fingerprint,
            query=response.query,
            method=response.method,
            engine=response.engine,
            virtual_ne=response.virtual_ne,
            arity=response.arity,
            label=label,
            total_rows=len(rows),
            page_size=page_size,
            pages=len(pages),
            complete=response.complete,
            missed=response.missed,
            cached=response.cached,
            elapsed_seconds=response.elapsed_seconds,
        )

    def fetch(self, cursor_id: str, page: int) -> PageResponse:
        """One page by index; refreshes the cursor's LRU position."""
        with self._lock:
            entry = self._cursors.get(cursor_id)
            if entry is not None:
                self._cursors.move_to_end(cursor_id)
        if entry is None:
            raise UnknownCursorError(
                f"unknown cursor {cursor_id!r} — it may have been evicted; re-execute to stream again"
            )
        pages, __ = entry
        if not 0 <= page < len(pages):
            raise ServiceError(f"cursor {cursor_id!r} has pages 0..{len(pages) - 1}, got {page}")
        return PageResponse(
            cursor_id=cursor_id,
            page=page,
            rows=pages[page],
            last=page == len(pages) - 1,
        )

    def close(self, cursor_id: str) -> None:
        """Drop a cursor early (idempotent: unknown ids are already gone)."""
        with self._lock:
            self._cursors.pop(cursor_id, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._cursors)

"""Batched evaluation: deduplicate identical requests, fan out the rest.

Traffic against a query service is heavily skewed — the same hot queries
arrive over and over (see :mod:`repro.workloads.traffic`) — so a batch is
first collapsed to its *unique* requests.  Each unique request is evaluated
at most once, concurrently on a :class:`~concurrent.futures.ThreadPoolExecutor`;
the positional response list is then rebuilt so ``responses[i]`` always
answers ``requests[i]``.

Failures stay local: a request that raises a
:class:`~repro.errors.ReproError` (parse error, capacity refusal, unknown
database...) yields an :class:`~repro.service.protocol.ErrorResponse` in its
slot and the rest of the batch completes normally.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from repro.errors import ReproError
from repro.service.protocol import BatchResponse, ErrorResponse, QueryRequest, QueryResponse

__all__ = ["BatchEvaluator", "PreparedBatchEvaluator", "evaluate_batch", "DEFAULT_MAX_WORKERS"]

DEFAULT_MAX_WORKERS = 8


class BatchEvaluator:
    """Evaluate request batches against a :class:`~repro.service.engine.QueryService`.

    With ``executor`` the evaluator fans out on that long-lived pool (and
    never shuts it down); otherwise it spins up a pool per :meth:`run` call,
    sized by ``max_workers``.  :meth:`QueryService.batch` passes the
    service's shared pool so repeated small batches avoid per-call pool
    startup.
    """

    def __init__(self, service, max_workers: int | None = None, executor: ThreadPoolExecutor | None = None) -> None:
        self.service = service
        self.max_workers = max_workers or DEFAULT_MAX_WORKERS
        self.executor = executor

    def run(self, requests: Sequence[QueryRequest]) -> BatchResponse:
        """Evaluate a batch; duplicates are computed once and fanned back out."""
        requests = list(requests)
        if not requests:
            return BatchResponse(responses=(), total=0, unique=0, deduplicated=0)

        # Frozen QueryRequest dataclasses are their own dedup keys.
        unique: list[QueryRequest] = []
        seen: dict[QueryRequest, int] = {}
        for request in requests:
            if request not in seen:
                seen[request] = len(unique)
                unique.append(request)

        if self.executor is not None:
            unique_responses = list(self.executor.map(self._evaluate, unique))
        else:
            workers = min(self.max_workers, len(unique))
            if workers <= 1:
                unique_responses = [self._evaluate(request) for request in unique]
            else:
                with ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-batch") as pool:
                    unique_responses = list(pool.map(self._evaluate, unique))

        deduplicated = len(requests) - len(unique)
        self.service.record_batch(executed=len(unique), deduplicated=deduplicated)
        return BatchResponse(
            responses=tuple(unique_responses[seen[request]] for request in requests),
            total=len(requests),
            unique=len(unique),
            deduplicated=deduplicated,
        )

    def _evaluate(self, request: QueryRequest) -> QueryResponse | ErrorResponse:
        try:
            return self.service.execute(request)
        except ReproError as error:
            return ErrorResponse.from_exception(error)


def evaluate_batch(service, requests: Sequence[QueryRequest], max_workers: int | None = None) -> BatchResponse:
    """Module-level convenience wrapper around :class:`BatchEvaluator`."""
    return BatchEvaluator(service, max_workers=max_workers).run(requests)


class PreparedBatchEvaluator:
    """The prepared counterpart of :class:`BatchEvaluator`: one statement, many bindings.

    A parameter sweep is the canonical prepared workload (same template,
    thousands of bindings); like ad-hoc batches it is deduplicated first —
    bindings compare equal by content — and fanned out concurrently, with
    per-binding failures isolated to their slot.
    """

    def __init__(self, service, max_workers: int | None = None, executor: ThreadPoolExecutor | None = None) -> None:
        self.service = service
        self.max_workers = max_workers or DEFAULT_MAX_WORKERS
        self.executor = executor

    def run(self, statement_id: str, bindings) -> BatchResponse:
        bindings = [dict(binding or {}) for binding in bindings]
        if not bindings:
            return BatchResponse(responses=(), total=0, unique=0, deduplicated=0)

        def freeze(binding: dict) -> tuple:
            return tuple(sorted(binding.items()))

        unique: list[dict] = []
        seen: dict[tuple, int] = {}
        for binding in bindings:
            key = freeze(binding)
            if key not in seen:
                seen[key] = len(unique)
                unique.append(binding)

        def evaluate(binding: dict) -> QueryResponse | ErrorResponse:
            try:
                return self.service.execute_prepared(statement_id, binding)
            except ReproError as error:
                return ErrorResponse.from_exception(error)

        if self.executor is not None:
            unique_responses = list(self.executor.map(evaluate, unique))
        else:
            workers = min(self.max_workers, len(unique))
            if workers <= 1:
                unique_responses = [evaluate(binding) for binding in unique]
            else:
                with ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-prepared") as pool:
                    unique_responses = list(pool.map(evaluate, unique))

        deduplicated = len(bindings) - len(unique)
        self.service.record_batch(executed=len(unique), deduplicated=deduplicated)
        return BatchResponse(
            responses=tuple(unique_responses[seen[freeze(binding)]] for binding in bindings),
            total=len(bindings),
            unique=len(unique),
            deduplicated=deduplicated,
        )

"""A thread-safe LRU cache with hit/miss/eviction counters.

The serving layer caches two kinds of derived objects:

* parsed + rewritten queries, keyed on the query text (and rewrite mode);
* answer sets, keyed on ``(db_fingerprint, query_text, method, engine,
  virtual_ne)``.

Both caches see concurrent access from the batch executor and the HTTP
front-end, so every operation takes a single lock; the cached values
themselves (frozensets, Query objects, response dataclasses) are immutable
and may be shared freely between threads once handed out.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Iterator

__all__ = ["CacheStats", "LRUCache"]

DEFAULT_CAPACITY = 1024


@dataclass(frozen=True)
class CacheStats:
    """A consistent snapshot of a cache's counters."""

    capacity: int
    size: int
    hits: int
    misses: int
    evictions: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "capacity": self.capacity,
            "size": self.size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 6),
        }


class LRUCache:
    """Least-recently-used mapping with counters, safe for concurrent use.

    ``capacity <= 0`` disables caching entirely: every lookup is a miss and
    nothing is stored, which gives benchmarks a "cold path" configuration
    without a second code path.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(tuple(self._entries))

    def get(self, key: Hashable, default: object = None) -> object:
        """Return the cached value (refreshing recency) or *default*."""
        with self._lock:
            if key in self._entries:
                self._hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self._misses += 1
            return default

    def put(self, key: Hashable, value: object) -> None:
        """Insert or refresh an entry, evicting the LRU entry on overflow."""
        if self.capacity <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], object]) -> tuple[object, bool]:
        """Return ``(value, was_cached)``, computing and storing on a miss.

        ``compute`` runs *outside* the lock: query evaluation can take far
        longer than a cache probe and must not serialize other lookups.  Two
        threads racing on the same key may both compute; the value is
        deterministic, so last-writer-wins is harmless.
        """
        sentinel = object()
        value = self.get(key, sentinel)
        if value is not sentinel:
            return value, True
        value = compute()
        self.put(key, value)
        return value, False

    def invalidate(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies *predicate*; returns the count."""
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                capacity=self.capacity,
                size=len(self._entries),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
            )

"""The long-lived query service: named snapshots, precomputed storage, caches.

The one-shot CLI pays the full pipeline on every invocation: load the CSV
database, parse the query, derive ``Ph2(LB)``, evaluate.  A
:class:`QueryService` amortizes all of that across many queries and many
clients:

* **snapshot registry** — databases are registered under a name as
  *immutable* :class:`~repro.logical.database.CWDatabase` snapshots; both
  ``Ph2`` variants (materialized and virtual ``NE``) are precomputed at
  registration time and shared, lock-free, by every concurrent query;
* **content fingerprints** — each snapshot's
  :meth:`~repro.logical.database.CWDatabase.fingerprint` joins the cache
  key, so re-registering a name with different content can never serve
  stale answers;
* **result caching** — parsed queries and full responses live in
  thread-safe LRU caches (:mod:`repro.service.cache`) keyed on
  ``(fingerprint, query_text, method, engine, virtual_ne)``;
* **plan caching** — compiled + optimized relational-algebra plans are kept
  per ``(snapshot fingerprint, query_text, engine, NE encoding)``, so a warm
  server answering an uncached request (e.g. after answer-cache eviction, or
  with response caching disabled) still skips parse-rewrite-compile-optimize
  and goes straight to plan execution.

The service is deliberately transport-agnostic: :mod:`repro.service.server`
exposes it over HTTP and :mod:`repro.service.batch` fans request lists out
over a thread pool, but it is equally usable in-process.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Mapping

from repro.approx.evaluator import ApproximateEvaluator
from repro.complexity.classes import classify_query
from repro.errors import ReproError, ServiceError, UnknownDatabaseError
from repro.logic.parser import parse_query
from repro.logic.queries import Query
from repro.logical.database import CWDatabase
from repro.logical.exact import CertainAnswerEvaluator
from repro.logical.mappings import DEFAULT_MAX_MAPPINGS
from repro.logical.ph import ph2
from repro.physical.database import PhysicalDatabase
from repro.service.cache import LRUCache
from repro.service.lifecycle import ExecutorLifecycle
from repro.service.protocol import (
    ClassifyResponse,
    InfoResponse,
    QueryRequest,
    QueryResponse,
    StatsResponse,
    answers_to_wire,
    build_classify_response,
    build_info_response,
)

__all__ = ["RegisteredDatabase", "QueryService", "WarmupReport", "replay_warmup"]

DEFAULT_ANSWER_CACHE_CAPACITY = 4096
DEFAULT_PARSE_CACHE_CAPACITY = 512
DEFAULT_PLAN_CACHE_CAPACITY = 1024


@dataclass(frozen=True)
class RegisteredDatabase:
    """One named snapshot with its ``Ph2`` physical representations.

    Each ``NE``-encoding variant is derived once on first use and then
    shared; :meth:`QueryService.register` touches the materialized variant
    eagerly by default so a long-lived server pays the derivation at
    registration time, while one-shot callers that never evaluate against a
    variant (e.g. the exact-only CLI path) never build it.  Both variants
    are immutable once built.
    """

    name: str
    database: CWDatabase
    fingerprint: str

    def storage(self, virtual_ne: bool) -> PhysicalDatabase:
        """``Ph2(LB)`` for the requested ``NE`` encoding (derived on first use)."""
        attribute = "_storage_virtual" if virtual_ne else "_storage_materialized"
        cached = self.__dict__.get(attribute)
        if cached is None:
            # Benign race: concurrent first requests may both derive it; the
            # results are equal immutable objects and last-writer-wins.
            cached = ph2(self.database, virtual_ne=virtual_ne)
            object.__setattr__(self, attribute, cached)
        return cached

    @property
    def storage_materialized(self) -> PhysicalDatabase:
        return self.storage(False)

    @property
    def storage_virtual(self) -> PhysicalDatabase:
        return self.storage(True)


@dataclass(frozen=True)
class WarmupReport:
    """Outcome of replaying a recorded traffic log through the caches.

    ``failed`` counts requests that raised (unknown database, parse
    error...); warm-up is best-effort, so failures are tallied rather than
    aborting the boot sequence.
    """

    total: int
    warmed: int
    already_cached: int
    failed: int


def replay_warmup(execute, requests) -> WarmupReport:
    """Replay recorded traffic through *execute*, tallying the outcomes.

    Shared by :meth:`QueryService.warm` and the cluster router's warm-up so
    the semantics (best-effort, errors counted not raised) cannot drift.
    """
    total = warmed = already = failed = 0
    for request in requests:
        total += 1
        try:
            response = execute(request)
        except ReproError:
            failed += 1
            continue
        if response.cached:
            already += 1
        else:
            warmed += 1
    return WarmupReport(total=total, warmed=warmed, already_cached=already, failed=failed)


class QueryService:
    """Registry of database snapshots plus cached, thread-safe evaluation.

    Parameters
    ----------
    answer_cache_capacity:
        LRU capacity for full :class:`QueryResponse` objects; 0 disables
        response caching (the benchmark's "cold" configuration).
    parse_cache_capacity:
        LRU capacity for parsed :class:`~repro.logic.queries.Query` objects.
    plan_cache_capacity:
        LRU capacity for compiled + optimized algebra plans; 0 disables plan
        caching (every uncached request recompiles).
    max_mappings:
        Safety cap forwarded to exact certain-answer evaluation.
    """

    def __init__(
        self,
        answer_cache_capacity: int = DEFAULT_ANSWER_CACHE_CAPACITY,
        parse_cache_capacity: int = DEFAULT_PARSE_CACHE_CAPACITY,
        plan_cache_capacity: int = DEFAULT_PLAN_CACHE_CAPACITY,
        max_mappings: int = DEFAULT_MAX_MAPPINGS,
    ) -> None:
        self._registry: dict[str, RegisteredDatabase] = {}
        self._registry_lock = threading.Lock()
        self._answers = LRUCache(answer_cache_capacity)
        self._parses = LRUCache(parse_cache_capacity)
        self._plans = LRUCache(plan_cache_capacity)
        self._exact = CertainAnswerEvaluator(max_mappings=max_mappings)
        self._started = time.monotonic()
        self._batch_executed = 0
        self._batch_deduplicated = 0
        self._lifecycle = ExecutorLifecycle(
            "QueryService", "create a new service instead of reusing it"
        )

    # Registry ------------------------------------------------------------------

    def register(
        self,
        name: str,
        database: CWDatabase,
        replace_existing: bool = False,
        precompute: bool = True,
    ) -> RegisteredDatabase:
        """Register an immutable snapshot under *name* and precompute ``Ph2``.

        Registration is the only expensive mutation the service performs;
        afterwards every query against the snapshot reads shared immutable
        state.  ``precompute=False`` defers the default ``Ph2`` derivation
        to first use — for one-shot callers that may never evaluate against
        it.  Re-registering a name requires ``replace_existing=True`` —
        cached responses for the old content stay keyed on the old
        fingerprint and are dropped from the cache.
        """
        if not name:
            raise ServiceError("a database snapshot needs a nonempty name")
        # Reject duplicate names before the (expensive) Ph2 derivation; the
        # registry is re-checked at insertion in case of a racing register.
        with self._registry_lock:
            if name in self._registry and not replace_existing:
                raise ServiceError(f"database {name!r} is already registered (pass replace_existing=True)")
        entry = RegisteredDatabase(
            name=name,
            database=database,
            fingerprint=database.fingerprint(),
        )
        if precompute:
            entry.storage(False)
        with self._registry_lock:
            previous = self._registry.get(name)
            if previous is not None and not replace_existing:
                raise ServiceError(f"database {name!r} is already registered (pass replace_existing=True)")
            self._registry[name] = entry
        if previous is not None and previous.fingerprint != entry.fingerprint:
            self._answers.invalidate(lambda key: key[0] == previous.fingerprint)
            self._plans.invalidate(lambda key: key[0] == previous.fingerprint)
        return entry

    def register_from_store(
        self,
        store,
        snapshot_name: str,
        as_name: str | None = None,
        replace_existing: bool = False,
    ) -> RegisteredDatabase:
        """Register a snapshot loaded from a :class:`~repro.cluster.store.SnapshotStore`.

        This is the warm-boot path of cluster workers: the snapshot's
        persisted optimizer statistics are seeded onto the precomputed
        ``Ph2`` storage, so the very first plans run with real cardinalities
        instead of triggering cold rescans.
        """
        from repro.physical.statistics import preload_statistics

        snapshot = store.load(snapshot_name)
        entry = self.register(
            as_name or snapshot_name,
            snapshot.database,
            replace_existing=replace_existing,
            precompute=True,
        )
        if snapshot.statistics is not None:
            preload_statistics(entry.storage(False), snapshot.statistics)
        return entry

    def unregister(self, name: str) -> None:
        """Drop a snapshot and every cached response computed from it."""
        with self._registry_lock:
            entry = self._registry.pop(name, None)
        if entry is None:
            raise UnknownDatabaseError(f"unknown database {name!r}")
        self._answers.invalidate(lambda key: key[0] == entry.fingerprint)
        self._plans.invalidate(lambda key: key[0] == entry.fingerprint)

    def database_names(self) -> tuple[str, ...]:
        with self._registry_lock:
            return tuple(sorted(self._registry))

    def entry(self, name: str) -> RegisteredDatabase:
        with self._registry_lock:
            entry = self._registry.get(name)
            known = None if entry is not None else (", ".join(sorted(self._registry)) or "none registered")
        if entry is None:
            raise UnknownDatabaseError(f"unknown database {name!r} (known: {known})")
        return entry

    # Query paths ---------------------------------------------------------------

    def execute(self, request: QueryRequest) -> QueryResponse:
        """Evaluate one request, serving repeats from the response cache.

        The cache key pairs the snapshot's content fingerprint with every
        request field that can change the answer, so distinct methods,
        engines and ``NE`` encodings never share an entry.
        """
        entry = self.entry(request.database)
        key = (entry.fingerprint, request.query, request.method, request.engine, request.virtual_ne)
        response, was_cached = self._answers.get_or_compute(key, lambda: self._evaluate(entry, request))
        if was_cached:
            # Entries are shared between content-identical snapshots, so the
            # stored name may be another alias — relabel for this request.
            response = replace(response, cached=True, database=entry.name)
        return response

    def query(
        self,
        database: str,
        query: str,
        method: str = "approx",
        engine: str = "algebra",
        virtual_ne: bool = False,
    ) -> QueryResponse:
        """Convenience wrapper building the :class:`QueryRequest` inline."""
        return self.execute(QueryRequest(database, query, method, engine, virtual_ne))

    def classify(self, query_text: str) -> ClassifyResponse:
        """Classify a query (parse-cached; needs no registered database)."""
        return build_classify_response(query_text, classify_query(self._parse(query_text)))

    def info(self, name: str) -> InfoResponse:
        """Describe one registered snapshot."""
        entry = self.entry(name)
        return build_info_response(entry.name, entry.database)

    def batch(self, requests, max_workers: int | None = None):
        """Deduplicated concurrent evaluation; see :mod:`repro.service.batch`.

        With the default worker count, batches share one long-lived thread
        pool owned by the service, so a bursty client does not pay pool
        startup/teardown per batch.  Raises :class:`ServiceClosedError` once
        the service has been closed.
        """
        from repro.service.batch import BatchEvaluator

        if max_workers is None:
            return BatchEvaluator(self, executor=self._shared_executor()).run(requests)
        self._check_open()
        return BatchEvaluator(self, max_workers=max_workers).run(requests)

    def warm(self, requests) -> WarmupReport:
        """Replay recorded traffic through the caches (the ``--warm`` path).

        Each request is executed exactly as live traffic would be, so the
        parse, plan and answer caches all fill; errors are counted, not
        raised — a stale log line must not keep a server from booting.
        """
        return replay_warmup(self.execute, requests)

    def stats(self) -> StatsResponse:
        return StatsResponse(
            databases=self.database_names(),
            answer_cache=self._answers.stats().as_dict(),
            parse_cache=self._parses.stats().as_dict(),
            batch=dict(self._batch_counters()),
            uptime_seconds=time.monotonic() - self._started,
            plan_cache=self._plans.stats().as_dict(),
        )

    # Internals -----------------------------------------------------------------

    @property
    def _executor(self):
        """The shared batch pool, if one currently exists (for tests/debugging)."""
        return self._lifecycle.pool("batch")

    def _check_open(self) -> None:
        self._lifecycle.check_open()

    def _shared_executor(self):
        from repro.service.batch import DEFAULT_MAX_WORKERS

        return self._lifecycle.executor("batch", DEFAULT_MAX_WORKERS, "repro-batch")

    def close(self) -> None:
        """Shut down the shared batch thread pool; the service is then terminal.

        Closing twice raises :class:`ServiceClosedError` — the old silent
        idempotence hid real lifecycle bugs in which a post-close ``batch()``
        quietly spun up a fresh pool that nothing would ever shut down.
        """
        self._lifecycle.close()

    def record_batch(self, executed: int, deduplicated: int) -> None:
        """Called by the batch evaluator to fold its counters into stats()."""
        with self._registry_lock:
            self._batch_executed += executed
            self._batch_deduplicated += deduplicated

    def _batch_counters(self) -> Mapping[str, int]:
        with self._registry_lock:
            return {"executed": self._batch_executed, "deduplicated": self._batch_deduplicated}

    def _parse(self, query_text: str) -> Query:
        query, __ = self._parses.get_or_compute(query_text, lambda: parse_query(query_text))
        return query

    def _evaluate(self, entry: RegisteredDatabase, request: QueryRequest) -> QueryResponse:
        started = time.perf_counter()
        query = self._parse(request.query)
        answers: dict[str, tuple[tuple[str, ...], ...]] = {}
        approx: frozenset[tuple[str, ...]] | None = None
        exact: frozenset[tuple[str, ...]] | None = None
        if request.method in ("approx", "both"):
            evaluator = ApproximateEvaluator(engine=request.engine, virtual_ne=request.virtual_ne)
            storage = entry.storage(request.virtual_ne)
            # The plan depends on the snapshot content and the NE encoding
            # (ph2 derivation is deterministic in both), never on the method,
            # so content-identical snapshots share plans across aliases.
            plan_key = (entry.fingerprint, request.query, request.engine, request.virtual_ne)
            plan, __ = self._plans.get_or_compute(
                plan_key, lambda: evaluator.plan_on_storage(storage, query)
            )
            approx = evaluator.answers_on_storage(storage, query, plan=plan)
            answers["approximate"] = tuple(tuple(row) for row in answers_to_wire(approx))
        if request.method in ("exact", "both"):
            exact = self._exact.certain_answers(entry.database, query)
            answers["exact"] = tuple(tuple(row) for row in answers_to_wire(exact))
        complete = missed = None
        if approx is not None and exact is not None:
            if not approx <= exact:
                raise ServiceError(
                    "soundness violated: the approximation returned a non-certain answer — please report this as a bug"
                )
            complete = approx == exact
            missed = len(exact - approx)
        return QueryResponse(
            database=entry.name,
            fingerprint=entry.fingerprint,
            query=request.query,
            method=request.method,
            engine=request.engine,
            virtual_ne=request.virtual_ne,
            arity=query.arity,
            answers=answers,
            complete=complete,
            missed=missed,
            cached=False,
            elapsed_seconds=time.perf_counter() - started,
        )

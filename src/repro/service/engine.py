"""The long-lived query service: named snapshots, precomputed storage, caches.

The one-shot CLI pays the full pipeline on every invocation: load the CSV
database, parse the query, derive ``Ph2(LB)``, evaluate.  A
:class:`QueryService` amortizes all of that across many queries and many
clients:

* **snapshot registry** — databases are registered under a name as
  *immutable* :class:`~repro.logical.database.CWDatabase` snapshots; both
  ``Ph2`` variants (materialized and virtual ``NE``) are precomputed at
  registration time and shared, lock-free, by every concurrent query;
* **content fingerprints** — each snapshot's
  :meth:`~repro.logical.database.CWDatabase.fingerprint` joins the cache
  key, so re-registering a name with different content can never serve
  stale answers;
* **result caching** — parsed queries and full responses live in
  thread-safe LRU caches (:mod:`repro.service.cache`) keyed on
  ``(fingerprint, query_text, method, engine, virtual_ne)``;
* **plan caching** — compiled + optimized relational-algebra plans are kept
  per ``(snapshot fingerprint, query_text, engine, NE encoding)``, so a warm
  server answering an uncached request (e.g. after answer-cache eviction, or
  with response caching disabled) still skips parse-rewrite-compile-optimize
  and goes straight to plan execution;
* **adaptive re-optimization** — every plan execution records actual subplan
  cardinalities (:class:`~repro.physical.statistics.CardinalityRecorder`);
  observations that contradict the optimizer's model beyond a threshold are
  folded into the snapshot's statistics and the stale plan-cache entry is
  dropped, so the query is re-optimized — with the corrected cardinalities,
  and a possibly different engine under ``"auto"`` — on its next arrival.
  The loop converges: only *new* divergent observations invalidate, and each
  re-optimization can only add observations.

The service is deliberately transport-agnostic: :mod:`repro.service.server`
exposes it over HTTP and :mod:`repro.service.batch` fans request lists out
over a thread pool, but it is equally usable in-process.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Mapping

from repro.approx.evaluator import ApproximateEvaluator
from repro.complexity.classes import classify_query
from repro.errors import ReproError, ServiceError, UnboundParameterError, UnknownDatabaseError
from repro.logic.parser import parse_query
from repro.logic.queries import Query
from repro.logical.database import CWDatabase
from repro.logical.exact import CertainAnswerEvaluator
from repro.logical.mappings import DEFAULT_MAX_MAPPINGS
from repro.logical.ph import ph2
from repro.observability import events
from repro.observability.accounting import current_account
from repro.observability.explain import PlanProfiler, profile_payload
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import span
from repro.physical.algebra import node_label
from repro.resilience.deadlines import check_deadline
from repro.physical.database import PhysicalDatabase
from repro.physical.optimizer import DEFAULT_FEEDBACK_THRESHOLD, apply_feedback, plan_cost
from repro.physical.plan import substitute_plan_parameters
from repro.physical.statistics import (
    CardinalityRecorder,
    bounded_insert,
    preload_statistics,
    statistics_for,
)
from repro.service.cache import LRUCache
from repro.service.lifecycle import ExecutorLifecycle
from repro.service.prepared import PreparedStatement, StatementRegistry
from repro.service.protocol import (
    ClassifyResponse,
    InfoResponse,
    MetricsResponse,
    QueryRequest,
    QueryResponse,
    StatsResponse,
    answers_to_wire,
    build_classify_response,
    build_info_response,
)

__all__ = ["RegisteredDatabase", "QueryService", "WarmupReport", "replay_warmup"]

DEFAULT_ANSWER_CACHE_CAPACITY = 4096
DEFAULT_PARSE_CACHE_CAPACITY = 512
DEFAULT_PLAN_CACHE_CAPACITY = 1024

#: Plan-cache value meaning "the auto dispatcher chose Tarskian enumeration".
#: Caching the *decision* (not just the absent plan) lets warm requests skip
#: the compile + optimize + cost-model work the dispatcher needed to decide.
_TARSKI_ROUTE = "tarski-route"

#: Plan-cache value meaning "this template has no generic plan" (parameterized
#: extension atoms, second order, an explicitly Tarskian statement): prepared
#: executions bind at the AST level and take the ad-hoc per-binding plan path.
_AST_ROUTE = "ast-route"


@dataclass(frozen=True)
class RegisteredDatabase:
    """One named snapshot with its ``Ph2`` physical representations.

    Each ``NE``-encoding variant is derived once on first use and then
    shared; :meth:`QueryService.register` touches the materialized variant
    eagerly by default so a long-lived server pays the derivation at
    registration time, while one-shot callers that never evaluate against a
    variant (e.g. the exact-only CLI path) never build it.  Both variants
    are immutable once built.
    """

    name: str
    database: CWDatabase
    fingerprint: str

    def storage(self, virtual_ne: bool) -> PhysicalDatabase:
        """``Ph2(LB)`` for the requested ``NE`` encoding (derived on first use)."""
        attribute = "_storage_virtual" if virtual_ne else "_storage_materialized"
        cached = self.__dict__.get(attribute)
        if cached is None:
            # Benign race: concurrent first requests may both derive it; the
            # results are equal immutable objects and last-writer-wins.
            cached = ph2(self.database, virtual_ne=virtual_ne)
            payload = self.__dict__.get("_statistics_payload")
            if payload is not None and virtual_ne:
                # The persisted relation statistics describe the materialized
                # storage (different NE encoding); observed cardinalities are
                # safe to share — a fingerprint either names an NE-touching
                # subplan (exists in exactly one variant, inert in the other)
                # or a subplan over relations both variants store identically
                # (same actual cardinality either way).  Seed just those, so
                # feedback learned on virtual-NE traffic survives a reboot.
                preload_statistics(cached, {"observed": payload.get("observed", {})})
            elif payload is not None:
                preload_statistics(cached, payload)
            object.__setattr__(self, attribute, cached)
        return cached

    @property
    def storage_materialized(self) -> PhysicalDatabase:
        return self.storage(False)

    @property
    def storage_virtual(self) -> PhysicalDatabase:
        return self.storage(True)


@dataclass(frozen=True)
class WarmupReport:
    """Outcome of replaying a recorded traffic log through the caches.

    ``failed`` counts requests that raised (unknown database, parse
    error...); warm-up is best-effort, so failures are tallied rather than
    aborting the boot sequence.
    """

    total: int
    warmed: int
    already_cached: int
    failed: int


def replay_warmup(execute, requests) -> WarmupReport:
    """Replay recorded traffic through *execute*, tallying the outcomes.

    Shared by :meth:`QueryService.warm` and the cluster router's warm-up so
    the semantics (best-effort, errors counted not raised) cannot drift.
    Malformed entries — anything that is not a :class:`QueryRequest`, e.g. a
    hand-edited log line that parsed as a different message — count as
    failures instead of aborting the whole replay.
    """
    total = warmed = already = failed = 0
    for request in requests:
        total += 1
        if not isinstance(request, QueryRequest):
            failed += 1
            continue
        try:
            response = execute(request)
        except ReproError:
            failed += 1
            continue
        if response.cached:
            already += 1
        else:
            warmed += 1
    return WarmupReport(total=total, warmed=warmed, already_cached=already, failed=failed)


class QueryService:
    """Registry of database snapshots plus cached, thread-safe evaluation.

    Parameters
    ----------
    answer_cache_capacity:
        LRU capacity for full :class:`QueryResponse` objects; 0 disables
        response caching (the benchmark's "cold" configuration).
    parse_cache_capacity:
        LRU capacity for parsed :class:`~repro.logic.queries.Query` objects.
    plan_cache_capacity:
        LRU capacity for compiled + optimized algebra plans; 0 disables plan
        caching (every uncached request recompiles).
    max_mappings:
        Safety cap forwarded to exact certain-answer evaluation.
    feedback_threshold:
        How far (as a factor, either direction) an observed subplan
        cardinality must diverge from the optimizer's estimate before the
        statistics learn it and the cached plan is re-optimized.  ``None``
        or ``0`` disables the adaptive feedback loop entirely.
    """

    def __init__(
        self,
        answer_cache_capacity: int = DEFAULT_ANSWER_CACHE_CAPACITY,
        parse_cache_capacity: int = DEFAULT_PARSE_CACHE_CAPACITY,
        plan_cache_capacity: int = DEFAULT_PLAN_CACHE_CAPACITY,
        max_mappings: int = DEFAULT_MAX_MAPPINGS,
        feedback_threshold: float | None = DEFAULT_FEEDBACK_THRESHOLD,
    ) -> None:
        self._registry: dict[str, RegisteredDatabase] = {}
        self._registry_lock = threading.Lock()
        self._answers = LRUCache(answer_cache_capacity)
        self._parses = LRUCache(parse_cache_capacity)
        self._plans = LRUCache(plan_cache_capacity)
        self._exact = CertainAnswerEvaluator(max_mappings=max_mappings)
        self._started = time.monotonic()
        self._batch_executed = 0
        self._batch_deduplicated = 0
        self._feedback_threshold = feedback_threshold or None
        self._feedback = {"observations": 0, "invalidations": 0, "reoptimizations": 0}
        self._statements = StatementRegistry()
        self._prepared = {"templates": 0, "executions": 0, "generic_plans": 0, "custom_plans": 0}
        #: (template plan key, statistics generation) → cached generic cost;
        #: bounded like the feedback marker maps.
        self._generic_costs: dict[tuple, float] = {}
        #: plan keys dropped by feedback, awaiting re-optimization — mapped to
        #: the statistics generation a replacement plan must have seen.
        self._replanned: dict[tuple, int] = {}
        #: plan keys whose observations all matched the model — mapped to the
        #: statistics generation that was current then, so convergence expires
        #: (and observation resumes) whenever the statistics drift; until
        #: then their executions skip the recorder entirely.
        self._converged: dict[tuple, int] = {}
        #: both marker maps are bounded (a high-diversity query stream must
        #: not grow them forever); overflowing drops the oldest entries, whose
        #: only cost is one extra observation or invalidation round.
        self._marker_capacity = max(plan_cache_capacity, DEFAULT_PLAN_CACHE_CAPACITY)
        #: Request telemetry (counters + latency histograms), served at
        #: ``GET /metrics``; recording is a single lock acquire per request.
        self.metrics_registry = MetricsRegistry()
        self._lifecycle = ExecutorLifecycle(
            "QueryService", "create a new service instead of reusing it"
        )

    # Registry ------------------------------------------------------------------

    def register(
        self,
        name: str,
        database: CWDatabase,
        replace_existing: bool = False,
        precompute: bool = True,
    ) -> RegisteredDatabase:
        """Register an immutable snapshot under *name* and precompute ``Ph2``.

        Registration is the only expensive mutation the service performs;
        afterwards every query against the snapshot reads shared immutable
        state.  ``precompute=False`` defers the default ``Ph2`` derivation
        to first use — for one-shot callers that may never evaluate against
        it.  Re-registering a name requires ``replace_existing=True`` —
        cached responses for the old content stay keyed on the old
        fingerprint and are dropped from the cache.
        """
        if not name:
            raise ServiceError("a database snapshot needs a nonempty name")
        # Reject duplicate names before the (expensive) Ph2 derivation; the
        # registry is re-checked at insertion in case of a racing register.
        with self._registry_lock:
            if name in self._registry and not replace_existing:
                raise ServiceError(f"database {name!r} is already registered (pass replace_existing=True)")
        entry = RegisteredDatabase(
            name=name,
            database=database,
            fingerprint=database.fingerprint(),
        )
        if precompute:
            entry.storage(False)
        with self._registry_lock:
            previous = self._registry.get(name)
            if previous is not None and not replace_existing:
                raise ServiceError(f"database {name!r} is already registered (pass replace_existing=True)")
            self._registry[name] = entry
        if previous is not None and previous.fingerprint != entry.fingerprint:
            self._answers.invalidate(lambda key: key[0] == previous.fingerprint)
            self._plans.invalidate(lambda key: key[0] == previous.fingerprint)
        return entry

    def register_from_store(
        self,
        store,
        snapshot_name: str,
        as_name: str | None = None,
        replace_existing: bool = False,
    ) -> RegisteredDatabase:
        """Register a snapshot loaded from a :class:`~repro.cluster.store.SnapshotStore`.

        This is the warm-boot path of cluster workers: the snapshot's
        persisted optimizer statistics — including observed cardinalities
        learned by other workers' feedback loops — are seeded onto the
        precomputed ``Ph2`` storage, so the very first plans run with real
        cardinalities instead of triggering cold rescans.
        """
        snapshot = store.load(snapshot_name)
        entry = self.register(
            as_name or snapshot_name,
            snapshot.database,
            replace_existing=replace_existing,
            precompute=True,
        )
        if snapshot.statistics is not None:
            self.preload_statistics(entry.name, snapshot.statistics)
            # Stash the payload for the lazily derived virtual-NE variant:
            # its observed cardinalities are seeded when (if) it is built.
            object.__setattr__(entry, "_statistics_payload", snapshot.statistics)
        return entry

    def preload_statistics(self, name: str, payload: Mapping[str, object], virtual_ne: bool = False) -> int:
        """Seed a snapshot's optimizer statistics from a persisted payload.

        Plans cached for that snapshot (same fingerprint *and* ``NE``
        encoding — statistics live per storage variant) were optimized
        without the new information, so exactly those entries are dropped;
        the next arrival of each query re-optimizes against the updated
        statistics.  Returns the number of invalidated plan-cache entries.
        """
        entry = self.entry(name)
        preload_statistics(entry.storage(virtual_ne), payload)

        def affected(key: tuple) -> bool:
            return key[0] == entry.fingerprint and key[3] == virtual_ne

        dropped = self._plans.invalidate(affected)
        with self._registry_lock:
            if dropped:
                self._feedback["invalidations"] += dropped
            # New statistics make re-observation worthwhile again, and any
            # pending feedback marker refers to plans that no longer exist.
            self._converged = {
                key: generation for key, generation in self._converged.items() if not affected(key)
            }
            for key in [key for key in self._replanned if affected(key)]:
                del self._replanned[key]
        if dropped:
            events.emit(
                "plan.invalidated",
                database=entry.name,
                dropped=dropped,
                reason="statistics_preload",
            )
        return dropped

    def export_feedback(self) -> dict[str, dict[str, int]]:
        """Observed cardinalities per snapshot fingerprint (for persistence).

        Only storage variants that were actually built and observed something
        appear.  The cluster worker merges this into the snapshot store on
        shutdown, which is how feedback learned under live traffic reaches
        the next boot — and, via the store, every other worker.
        """
        learned: dict[str, dict[str, int]] = {}
        with self._registry_lock:
            entries = list(self._registry.values())
        for entry in entries:
            for attribute in ("_storage_materialized", "_storage_virtual"):
                storage = entry.__dict__.get(attribute)
                if storage is None:
                    continue
                statistics = storage.__dict__.get("_statistics")
                if statistics is None or not statistics.has_observations():
                    continue
                # One flat map per snapshot holds both variants safely: a
                # fingerprint shared by both names a subplan over relations
                # the variants store identically (same cardinality), and an
                # NE-touching fingerprint exists in only one of them.
                learned.setdefault(entry.fingerprint, {}).update(statistics.observed)
        return learned

    def unregister(self, name: str) -> None:
        """Drop a snapshot and every cached response computed from it."""
        with self._registry_lock:
            entry = self._registry.pop(name, None)
        if entry is None:
            raise UnknownDatabaseError(f"unknown database {name!r}")
        self._answers.invalidate(lambda key: key[0] == entry.fingerprint)
        self._plans.invalidate(lambda key: key[0] == entry.fingerprint)
        self._statements.drop_database(name)
        with self._registry_lock:
            self._converged = {
                key: generation
                for key, generation in self._converged.items()
                if key[0] != entry.fingerprint
            }
            for key in [key for key in self._replanned if key[0] == entry.fingerprint]:
                del self._replanned[key]

    def database_names(self) -> tuple[str, ...]:
        with self._registry_lock:
            return tuple(sorted(self._registry))

    def entry(self, name: str) -> RegisteredDatabase:
        with self._registry_lock:
            entry = self._registry.get(name)
            known = None if entry is not None else (", ".join(sorted(self._registry)) or "none registered")
        if entry is None:
            raise UnknownDatabaseError(f"unknown database {name!r} (known: {known})")
        return entry

    # Query paths ---------------------------------------------------------------

    def execute(self, request: QueryRequest) -> QueryResponse:
        """Evaluate one request, serving repeats from the response cache.

        The cache key pairs the snapshot's content fingerprint with every
        request field that can change the answer, so distinct methods,
        engines and ``NE`` encodings never share an entry.
        """
        entry = self.entry(request.database)
        # ``profile`` joins the key (a profiled response carries an extra
        # payload); profile-less ad-hoc and prepared requests keep sharing
        # slots because both spell the flag the same way (False).
        key = (
            entry.fingerprint,
            request.query,
            request.method,
            request.engine,
            request.virtual_ne,
            request.profile,
        )
        response, was_cached = self._answers.get_or_compute(key, lambda: self._evaluate(entry, request))
        account = current_account()
        if was_cached:
            # Entries are shared between content-identical snapshots, so the
            # stored name may be another alias — relabel for this request.
            response = replace(response, cached=True, database=entry.name)
            self.metrics_registry.increment("query.cache_hits")
            if account is not None:
                account.note_cache_hit()
        else:
            self.metrics_registry.observe(f"query.{request.engine}", response.elapsed_seconds)
            if account is not None:
                account.add_operator_seconds(response.elapsed_seconds)
        if account is not None:
            account.add_emitted(sum(len(rows) for rows in response.answers.values()))
        self.metrics_registry.increment("query.requests")
        return response

    def query(
        self,
        database: str,
        query: str,
        method: str = "approx",
        engine: str = "algebra",
        virtual_ne: bool = False,
    ) -> QueryResponse:
        """Convenience wrapper building the :class:`QueryRequest` inline."""
        return self.execute(QueryRequest(database, query, method, engine, virtual_ne))

    def classify(self, query_text: str) -> ClassifyResponse:
        """Classify a query (parse-cached; needs no registered database)."""
        return build_classify_response(query_text, classify_query(self._parse(query_text)))

    def info(self, name: str) -> InfoResponse:
        """Describe one registered snapshot."""
        entry = self.entry(name)
        return build_info_response(entry.name, entry.database)

    def batch(self, requests, max_workers: int | None = None):
        """Deduplicated concurrent evaluation; see :mod:`repro.service.batch`.

        With the default worker count, batches share one long-lived thread
        pool owned by the service, so a bursty client does not pay pool
        startup/teardown per batch.  Raises :class:`ServiceClosedError` once
        the service has been closed.
        """
        from repro.service.batch import BatchEvaluator

        if max_workers is None:
            return BatchEvaluator(self, executor=self._shared_executor()).run(requests)
        self._check_open()
        return BatchEvaluator(self, max_workers=max_workers).run(requests)

    # Prepared statements --------------------------------------------------------

    def prepare(
        self,
        database: str,
        template: str,
        method: str = "approx",
        engine: str = "algebra",
        virtual_ne: bool = False,
    ) -> PreparedStatement:
        """Parse and register a query template; plan work happens per template.

        The template may mention ``$name`` parameters (it need not: preparing
        a parameter-free query simply pins its parse).  Preparing the same
        template twice returns the same statement.  The returned statement's
        id drives :meth:`execute_prepared` / :meth:`execute_prepared_many`.
        """
        entry = self.entry(database)
        query = self._parse(template)
        statement, created = self._statements.intern(entry.name, query, method, engine, virtual_ne)
        if created:
            with self._registry_lock:
                self._prepared["templates"] += 1
        return statement

    def statement(self, statement_id: str) -> PreparedStatement:
        """Look up a prepared statement (:class:`UnknownStatementError` if absent)."""
        return self._statements.get(statement_id)

    def deallocate(self, statement_id: str) -> None:
        """Forget one prepared statement."""
        self._statements.deallocate(statement_id)

    def execute_prepared(self, statement_id: str, params: Mapping[str, str] | None = None) -> QueryResponse:
        """Execute a prepared statement under one parameter binding.

        Answers are byte-identical to the ad-hoc request whose query text is
        the bound template — the two share answer-cache entries — but the
        expression-side work is amortized: the template was parsed once at
        prepare time, and the compiled + optimized *template plan* is rebound
        by value substitution instead of recompiled (see
        :meth:`_approx_prepared` for the generic-vs-custom plan choice).
        """
        statement = self._statements.get(statement_id)
        values = dict(params or {})
        bound, rendered = statement.bind(values)
        entry = self.entry(statement.database)
        with self._registry_lock:
            self._prepared["executions"] += 1
        # The trailing False mirrors QueryRequest.profile's default, keeping
        # the key shape identical to execute() so prepared executions share
        # answer-cache slots with the equivalent (unprofiled) ad-hoc request.
        key = (entry.fingerprint, rendered, statement.method, statement.engine, statement.virtual_ne, False)
        response, was_cached = self._answers.get_or_compute(
            key, lambda: self._evaluate_prepared(entry, statement, bound, rendered, values)
        )
        account = current_account()
        if was_cached:
            response = replace(response, cached=True, database=entry.name)
            self.metrics_registry.increment("execute.cache_hits")
            if account is not None:
                account.note_cache_hit()
        else:
            self.metrics_registry.observe(f"template.{statement_id}", response.elapsed_seconds)
            if account is not None:
                account.add_operator_seconds(response.elapsed_seconds)
        if account is not None:
            account.add_emitted(sum(len(rows) for rows in response.answers.values()))
        self.metrics_registry.increment("execute.requests")
        return response

    def execute_prepared_many(self, statement_id, bindings, max_workers: int | None = None):
        """Execute one statement under many bindings (deduplicated, concurrent).

        The prepared counterpart of :meth:`batch`: equal bindings are
        evaluated once, the unique ones fan out over the shared thread pool,
        and ``responses[i]`` always answers ``bindings[i]`` (failed bindings
        carry an :class:`~repro.service.protocol.ErrorResponse` in their
        slot).  Returns a :class:`~repro.service.protocol.BatchResponse`.
        """
        from repro.service.batch import PreparedBatchEvaluator

        if max_workers is None:
            evaluator = PreparedBatchEvaluator(self, executor=self._shared_executor())
        else:
            self._check_open()
            evaluator = PreparedBatchEvaluator(self, max_workers=max_workers)
        return evaluator.run(statement_id, bindings)

    def warm(self, requests) -> WarmupReport:
        """Replay recorded traffic through the caches (the ``--warm`` path).

        Each request is executed exactly as live traffic would be, so the
        parse, plan and answer caches all fill; errors are counted, not
        raised — a stale log line must not keep a server from booting.
        """
        return replay_warmup(self.execute, requests)

    def stats(self) -> StatsResponse:
        with self._registry_lock:
            feedback = dict(self._feedback)
            prepared = dict(self._prepared)
        prepared["statements"] = len(self._statements)
        return StatsResponse(
            databases=self.database_names(),
            answer_cache=self._answers.stats().as_dict(),
            parse_cache=self._parses.stats().as_dict(),
            batch=dict(self._batch_counters()),
            uptime_seconds=time.monotonic() - self._started,
            plan_cache=self._plans.stats().as_dict(),
            feedback=feedback,
            prepared=prepared,
        )

    def metrics(self) -> MetricsResponse:
        """A telemetry snapshot for ``GET /metrics``.

        Request latencies live in the registry; cache occupancy/hit counts
        are read fresh from the caches at snapshot time, so they are true
        totals (summable across a cluster) rather than sampled deltas.
        """
        snapshot = self.metrics_registry.snapshot()
        counters = dict(snapshot["counters"])
        gauges = dict(snapshot["gauges"])
        for prefix, cache in (
            ("answer_cache", self._answers),
            ("parse_cache", self._parses),
            ("plan_cache", self._plans),
        ):
            stats = cache.stats().as_dict()
            for field_name in ("hits", "misses", "evictions"):
                value = stats.get(field_name)
                if isinstance(value, int):
                    counters[f"{prefix}.{field_name}"] = value
            size = stats.get("size")
            if isinstance(size, int):
                gauges[f"{prefix}.size"] = float(size)
        return MetricsResponse(
            counters=counters,
            gauges=gauges,
            histograms=snapshot["histograms"],
            uptime_seconds=snapshot["uptime_seconds"],
        )

    # Internals -----------------------------------------------------------------

    @property
    def _executor(self):
        """The shared batch pool, if one currently exists (for tests/debugging)."""
        return self._lifecycle.pool("batch")

    def _check_open(self) -> None:
        self._lifecycle.check_open()

    def _shared_executor(self):
        from repro.service.batch import DEFAULT_MAX_WORKERS

        return self._lifecycle.executor("batch", DEFAULT_MAX_WORKERS, "repro-batch")

    def close(self) -> None:
        """Shut down the shared batch thread pool; the service is then terminal.

        Closing twice raises :class:`ServiceClosedError` — the old silent
        idempotence hid real lifecycle bugs in which a post-close ``batch()``
        quietly spun up a fresh pool that nothing would ever shut down.
        """
        self._lifecycle.close()

    def record_batch(self, executed: int, deduplicated: int) -> None:
        """Called by the batch evaluator to fold its counters into stats()."""
        with self._registry_lock:
            self._batch_executed += executed
            self._batch_deduplicated += deduplicated

    def _batch_counters(self) -> Mapping[str, int]:
        with self._registry_lock:
            return {"executed": self._batch_executed, "deduplicated": self._batch_deduplicated}

    def _parse(self, query_text: str) -> Query:
        query, __ = self._parses.get_or_compute(query_text, lambda: parse_query(query_text))
        return query

    def _absorb_feedback(self, storage: PhysicalDatabase, recorder: CardinalityRecorder, plan_key: tuple) -> None:
        """Fold one execution's observations in; drop the plan if now stale.

        The *answer* that execution produced stays valid (every plan is
        exact), so the response cache is untouched — only the plan entry is
        invalidated so the next uncached arrival re-optimizes with the
        corrected statistics.  An execution that teaches nothing new marks
        the key *converged*: later executions skip the recorder entirely, so
        the steady-state hot path pays no feedback bookkeeping.
        """
        statistics = statistics_for(storage)
        outcome = apply_feedback(storage, recorder, self._feedback_threshold, statistics)
        if outcome.diverged:
            dropped = self._plans.invalidate(lambda key: key == plan_key)
            with self._registry_lock:
                self._feedback["observations"] += outcome.recorded
                self._converged.pop(plan_key, None)
                if dropped:
                    self._feedback["invalidations"] += dropped
                    bounded_insert(self._replanned, plan_key, statistics.generation, self._marker_capacity)
            if dropped:
                events.emit(
                    "plan.invalidated",
                    query=plan_key[1],
                    dropped=dropped,
                    reason="feedback_divergence",
                )
            return
        # Nothing fingerprintable, or every observation matches what the
        # statistics already know — either way there is nothing left to learn
        # from re-observing this exact plan.  A key with a pending
        # re-optimization is left alone: this execution ran the doomed plan
        # (a concurrent observer got there first), and the *replacement*
        # still deserves observation.
        with self._registry_lock:
            if plan_key not in self._replanned:
                bounded_insert(self._converged, plan_key, statistics.generation, self._marker_capacity)

    def _plan_with_markers(self, storage: PhysicalDatabase, plan_key: tuple, compute_plan):
        """Fetch a cached plan, honouring the feedback loop's staleness markers.

        ``compute_plan`` returns ``(plan, statistics generation)``; the
        generation is captured *before* optimizing, so a plan tagged >= N
        provably saw every observation up to N.
        """
        plan, generation = self._plans.get_or_compute(plan_key, compute_plan)[0]
        with self._registry_lock:
            required = self._replanned.get(plan_key)
            converged_at = self._converged.get(plan_key)
        if required is not None:
            if generation < required:
                # The cached plan predates the feedback that doomed it (a
                # compute racing the invalidation can re-cache the stale
                # plan): drop it and recompile with the learned statistics.
                self._plans.invalidate(lambda key: key == plan_key)
                plan, generation = self._plans.get_or_compute(plan_key, compute_plan)[0]
            if generation >= required:
                with self._registry_lock:
                    reoptimized = self._replanned.pop(plan_key, None) is not None
                    if reoptimized:
                        self._feedback["reoptimizations"] += 1
                if reoptimized:
                    events.emit(
                        "plan.reoptimized",
                        query=plan_key[1],
                        generation=generation,
                    )
        elif converged_at is not None and generation < converged_at:
            # A stalled pre-feedback compute can publish its stale plan
            # *after* the replacement already converged (marker long
            # consumed); the generation tag exposes the resurrection.
            # The convergence verdict belonged to the replaced plan, so
            # it goes too — the recompiled plan must be observed afresh.
            self._plans.invalidate(lambda key: key == plan_key)
            with self._registry_lock:
                self._converged.pop(plan_key, None)
            plan, generation = self._plans.get_or_compute(plan_key, compute_plan)[0]
        if plan is _TARSKI_ROUTE and generation < statistics_for(storage).generation:
            # The enumeration-vs-algebra decision was costed under older
            # statistics; corrections learned since (possibly from other
            # queries sharing subplans) may flip it — re-decide.
            self._plans.invalidate(lambda key: key == plan_key)
            plan, generation = self._plans.get_or_compute(plan_key, compute_plan)[0]
        return plan, generation

    def _execute_plan(
        self,
        storage: PhysicalDatabase,
        plan_key: tuple,
        plan,
        evaluator: ApproximateEvaluator,
        query: Query,
        profiler: PlanProfiler | None = None,
    ) -> frozenset[tuple[str, ...]]:
        """Run one plan (or the Tarskian route), observing per feedback rules."""
        if self._feedback_threshold and plan is not None:
            current_generation = statistics_for(storage).generation
            with self._registry_lock:
                observe = self._converged.get(plan_key) != current_generation
        else:
            observe = False
        recorder = CardinalityRecorder() if observe else None
        approx = evaluator.answers_on_storage(
            storage, query, plan=plan, recorder=recorder, profiler=profiler
        )
        if recorder is not None:
            self._absorb_feedback(storage, recorder, plan_key)
        return approx

    def _approx_answers(
        self,
        entry: RegisteredDatabase,
        storage: PhysicalDatabase,
        query_text: str,
        query: Query,
        engine: str,
        virtual_ne: bool,
        profiler: PlanProfiler | None = None,
    ) -> frozenset[tuple[str, ...]]:
        """The approximate route: plan cache, feedback markers, auto dispatch."""
        evaluator = ApproximateEvaluator(engine=engine, virtual_ne=virtual_ne)
        # The plan depends on the snapshot content and the NE encoding
        # (ph2 derivation is deterministic in both), never on the method,
        # so content-identical snapshots share plans across aliases.
        plan_key = (entry.fingerprint, query_text, engine, virtual_ne)

        def compute_plan():
            generation = statistics_for(storage).generation
            plan = evaluator.plan_on_storage(storage, query)
            if plan is None and engine == "auto":
                plan = _TARSKI_ROUTE
            return (plan, generation)

        plan, __ = self._plan_with_markers(storage, plan_key, compute_plan)
        if plan is _TARSKI_ROUTE:
            evaluator = ApproximateEvaluator(engine="tarski", virtual_ne=virtual_ne)
            plan = None
        return self._execute_plan(storage, plan_key, plan, evaluator, query, profiler)

    @staticmethod
    def _soundness(approx, exact) -> tuple[bool | None, int | None]:
        if approx is None or exact is None:
            return None, None
        if not approx <= exact:
            raise ServiceError(
                "soundness violated: the approximation returned a non-certain answer — please report this as a bug"
            )
        return approx == exact, len(exact - approx)

    def _approx_prepared(
        self,
        entry: RegisteredDatabase,
        statement: PreparedStatement,
        bound_query: Query,
        rendered: str,
        values: Mapping[str, str],
    ) -> frozenset[tuple[str, ...]]:
        """Approximate route for a prepared execution: rebind the template plan.

        The plan cache holds one *template-keyed* entry per (snapshot,
        template, engine, NE encoding): the compiled + optimized plan with
        :class:`~repro.logic.terms.Parameter` placeholders still inside.
        Each execution substitutes the bound values into that plan — a pure
        tree rebuild — unless

        * no generic plan exists (parameterized extension atoms, second
          order, an explicitly Tarskian statement): fall back to the ad-hoc
          plan path on the bound query (still parse-free);
        * the ``auto`` dispatcher costed the template onto the Tarskian
          route: enumerate the bound query directly;
        * the bound plan's cost under *observed* statistics diverges from
          the generic estimate by the feedback threshold: this binding's
          selectivity is provably unlike the template's average, so compile
          a **custom plan** for it (cached under the bound text, exactly as
          an ad-hoc request would be).

        Feedback stays template-keyed: divergent observations invalidate the
        template entry, so the *template* is re-optimized on its next
        execution.
        """
        storage = entry.storage(statement.virtual_ne)
        evaluator = ApproximateEvaluator(engine=statement.engine, virtual_ne=statement.virtual_ne)
        template_key = (entry.fingerprint, statement.template, statement.engine, statement.virtual_ne)

        def compute_plan():
            generation = statistics_for(storage).generation
            try:
                plan = evaluator.plan_on_storage(storage, statement.query)
            except UnboundParameterError:
                plan = _AST_ROUTE
            else:
                if plan is None:
                    plan = _TARSKI_ROUTE if statement.engine == "auto" else _AST_ROUTE
            return (plan, generation)

        plan, __ = self._plan_with_markers(storage, template_key, compute_plan)
        if plan is _AST_ROUTE:
            return self._approx_answers(
                entry, storage, rendered, bound_query, statement.engine, statement.virtual_ne
            )
        if plan is _TARSKI_ROUTE:
            tarskian = ApproximateEvaluator(engine="tarski", virtual_ne=statement.virtual_ne)
            return self._execute_plan(storage, template_key, None, tarskian, bound_query)
        # Resolving through constant_value makes a binding to an unknown
        # constant fail exactly like the equivalent ad-hoc request.
        resolved = {name: storage.constant_value(value) for name, value in values.items()}
        bound_plan = substitute_plan_parameters(plan, resolved)
        statistics = statistics_for(storage)
        if self._feedback_threshold and statistics.has_observations():
            generic_cost = self._generic_cost(template_key, plan, storage, statistics)
            bound_cost = plan_cost(bound_plan, storage, statistics)
            larger = max(generic_cost, bound_cost, 1.0)
            smaller = max(min(generic_cost, bound_cost), 1.0)
            if larger / smaller >= self._feedback_threshold:
                # Observed cardinalities say this binding behaves nothing
                # like the generic estimate — optimize a plan for *it*.
                with self._registry_lock:
                    self._prepared["custom_plans"] += 1
                return self._approx_answers(
                    entry, storage, rendered, bound_query, statement.engine, statement.virtual_ne
                )
        with self._registry_lock:
            self._prepared["generic_plans"] += 1
        return self._execute_plan(storage, template_key, bound_plan, evaluator, bound_query)

    def _generic_cost(self, template_key: tuple, plan, storage: PhysicalDatabase, statistics) -> float:
        """The template plan's estimated cost, cached per statistics generation.

        Binding-independent by construction (the estimator never looks at
        binding values), so the hot sweep path pays the plan-tree walk once
        per (template, statistics state) instead of once per execution; a
        new observation bumps the generation and naturally invalidates it.
        """
        key = (template_key, statistics.generation)
        with self._registry_lock:
            cached = self._generic_costs.get(key)
        if cached is None:
            cached = plan_cost(plan, storage, statistics)
            with self._registry_lock:
                bounded_insert(self._generic_costs, key, cached, self._marker_capacity)
        return cached

    def _evaluate_prepared(
        self,
        entry: RegisteredDatabase,
        statement: PreparedStatement,
        bound_query: Query,
        rendered: str,
        values: Mapping[str, str],
    ) -> QueryResponse:
        started = time.perf_counter()
        check_deadline("prepared evaluation")
        answers: dict[str, tuple[tuple[str, ...], ...]] = {}
        approx: frozenset[tuple[str, ...]] | None = None
        exact: frozenset[tuple[str, ...]] | None = None
        if statement.method in ("approx", "both"):
            approx = self._approx_prepared(entry, statement, bound_query, rendered, values)
            answers["approximate"] = tuple(tuple(row) for row in answers_to_wire(approx))
        if statement.method in ("exact", "both"):
            check_deadline("exact evaluation")
            exact = self._exact.certain_answers(entry.database, bound_query)
            answers["exact"] = tuple(tuple(row) for row in answers_to_wire(exact))
        complete, missed = self._soundness(approx, exact)
        return QueryResponse(
            database=entry.name,
            fingerprint=entry.fingerprint,
            query=rendered,
            method=statement.method,
            engine=statement.engine,
            virtual_ne=statement.virtual_ne,
            arity=statement.arity,
            answers=answers,
            complete=complete,
            missed=missed,
            cached=False,
            elapsed_seconds=time.perf_counter() - started,
        )

    def _evaluate(self, entry: RegisteredDatabase, request: QueryRequest) -> QueryResponse:
        started = time.perf_counter()
        check_deadline("query evaluation")
        query = self._parse(request.query)
        answers: dict[str, tuple[tuple[str, ...], ...]] = {}
        approx: frozenset[tuple[str, ...]] | None = None
        exact: frozenset[tuple[str, ...]] | None = None
        profiler = PlanProfiler() if request.profile else None
        if request.method in ("approx", "both"):
            storage = entry.storage(request.virtual_ne)
            with span("evaluate approx", engine=request.engine):
                approx = self._approx_answers(
                    entry, storage, request.query, query, request.engine, request.virtual_ne, profiler
                )
            answers["approximate"] = tuple(tuple(row) for row in answers_to_wire(approx))
        if request.method in ("exact", "both"):
            # The exact route is exponential by design: refuse to start it
            # for a request whose budget is already spent.
            check_deadline("exact evaluation")
            with span("evaluate exact"):
                exact = self._exact.certain_answers(entry.database, query)
            answers["exact"] = tuple(tuple(row) for row in answers_to_wire(exact))
        complete, missed = self._soundness(approx, exact)
        return QueryResponse(
            database=entry.name,
            fingerprint=entry.fingerprint,
            query=request.query,
            method=request.method,
            engine=request.engine,
            virtual_ne=request.virtual_ne,
            arity=query.arity,
            answers=answers,
            complete=complete,
            missed=missed,
            cached=False,
            elapsed_seconds=time.perf_counter() - started,
            profile=profile_payload(request.method, profiler, node_label) if request.profile else None,
        )

"""Shared terminal-close lifecycle for services that own thread pools.

Both the single-process :class:`~repro.service.engine.QueryService` and the
cluster :class:`~repro.cluster.router.ClusterRouter` follow the same
contract: thread pools are created lazily on first use, shared across
calls, and ``close()`` is *terminal* — a repeated ``close()`` or a
post-close pool request raises
:class:`~repro.errors.ServiceClosedError` instead of silently recreating
(and leaking) a pool.  :class:`ExecutorLifecycle` owns that contract once,
so a lifecycle fix never has to be applied twice.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.errors import ServiceClosedError

__all__ = ["ExecutorLifecycle"]


class ExecutorLifecycle:
    """Lazily created named thread pools behind one terminal ``close()``."""

    def __init__(self, owner: str, advice: str) -> None:
        self._owner = owner
        self._advice = advice
        self._lock = threading.Lock()
        self._closed = False
        self._pools: dict[str, ThreadPoolExecutor] = {}

    def check_open(self) -> None:
        if self._closed:
            raise ServiceClosedError(f"this {self._owner} has been closed; {self._advice}")

    def executor(self, name: str, max_workers: int, thread_name_prefix: str) -> ThreadPoolExecutor:
        """The shared pool called *name*, created on first use.

        Creation is checked under the lock so a request racing ``close()``
        can never recreate a pool on a closed owner.
        """
        with self._lock:
            self.check_open()
            pool = self._pools.get(name)
            if pool is None:
                pool = ThreadPoolExecutor(max_workers=max_workers, thread_name_prefix=thread_name_prefix)
                self._pools[name] = pool
            return pool

    def pool(self, name: str) -> ThreadPoolExecutor | None:
        """The pool called *name* if it currently exists (for introspection)."""
        return self._pools.get(name)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut every pool down and make the owner terminal."""
        with self._lock:
            self.check_open()
            self._closed = True
            for pool in self._pools.values():
                pool.shutdown(wait=False)
            self._pools.clear()

"""JSON request/response messages of the query service (protocol v1 + v2).

One wire format serves three consumers: the HTTP front-end
(:mod:`repro.service.server`), the keep-alive client
(:mod:`repro.service.client`) and the ``--json`` mode of the human CLI —
they all serialize through the dataclasses below, so a response printed by
``repro query --json`` is byte-compatible with what the server returns.

Every message carries ``"type"`` (its message kind) and ``"v"`` (the
protocol version).  :func:`parse_wire` is the single entry point for
deserialization; it validates the version and dispatches on the type tag.

**Versioning.**  Protocol v2 adds the session API — prepared statements
(:class:`PrepareRequest` / :class:`PrepareResponse` /
:class:`ExecuteRequest` / :class:`ExecuteManyRequest`) and chunked result
streaming (:class:`CursorResponse` / :class:`FetchRequest` /
:class:`PageResponse`) — plus the stable ``code`` field on
:class:`ErrorResponse` and version advertisement on
:class:`HealthResponse`.  The compatibility rules, documented in
``docs/protocol.md``:

* :func:`parse_wire` accepts **both** versions.  v1 messages pass through a
  deprecation shim (:func:`upconvert_v1`) that fills v2 defaults, so
  recorded v1 traffic logs and old clients keep working against a v2
  server.  v2-only message types are rejected when tagged ``v: 1``.
* A server answers every request **at the request's version** — a v1 client
  never sees a ``v: 2`` envelope.
* Clients discover support through :class:`HealthResponse.protocol_versions`
  and speak the highest version both sides understand.
"""

from __future__ import annotations

import json
import threading
import warnings
from dataclasses import asdict, dataclass, field, fields
from typing import Iterable, Mapping, Sequence

from repro.complexity.classes import QueryClassification
from repro.errors import ProtocolError, ServiceError, wire_code
from repro.logical.database import CWDatabase

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_PROTOCOL_VERSIONS",
    "DEFAULT_PAGE_SIZE",
    "METHODS",
    "ENGINES",
    "normalize_options",
    "QueryRequest",
    "QueryResponse",
    "ClassifyRequest",
    "ClassifyResponse",
    "InfoResponse",
    "HealthResponse",
    "DatabasesResponse",
    "StatsResponse",
    "MetricsResponse",
    "BatchRequest",
    "BatchResponse",
    "ErrorResponse",
    "PrepareRequest",
    "PrepareResponse",
    "ExecuteRequest",
    "ExecuteManyRequest",
    "CursorResponse",
    "FetchRequest",
    "PageResponse",
    "answers_to_wire",
    "answers_from_wire",
    "build_info_response",
    "build_classify_response",
    "parse_wire",
    "wire_version",
    "upconvert_v1",
    "DeprecationGate",
    "warn_v1_deprecated",
    "dump_wire",
]

#: The highest protocol version this library speaks (and its default for
#: serialization).  ``parse_wire`` still accepts every version in
#: :data:`SUPPORTED_PROTOCOL_VERSIONS`.
PROTOCOL_VERSION = 2

SUPPORTED_PROTOCOL_VERSIONS = (1, 2)

#: Default rows-per-page of a streamed (cursor) result.
DEFAULT_PAGE_SIZE = 1024

METHODS = ("approx", "exact", "both")
ENGINES = ("tarski", "algebra", "auto")


def normalize_options(method: str, engine: str, virtual_ne: bool) -> tuple[str, str, bool]:
    """Validate evaluation options and normalize the exact route.

    The single source of this rule — :class:`QueryRequest`,
    :class:`PrepareRequest` and the statement registry all delegate here, so
    an ad-hoc request and a prepared statement can never normalize
    differently (they must share answer-cache slots).  The exact route never
    consults the approximation engine or the ``NE`` encoding, so those
    fields collapse to canonical values and all equivalent exact requests
    compare equal (one cache slot, batch dedup hit).
    """
    if method not in METHODS:
        raise ServiceError(f"unknown method {method!r}; expected one of {METHODS}")
    if engine not in ENGINES:
        raise ServiceError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if method == "exact":
        return method, "algebra", False
    return method, engine, bool(virtual_ne)


def answers_to_wire(answers: Iterable[Sequence[str]]) -> list[list[str]]:
    """Canonical JSON form of an answer set: sorted list of string lists."""
    return sorted([list(row) for row in answers])


def answers_from_wire(rows: Iterable[Sequence[str]]) -> frozenset[tuple[str, ...]]:
    """Inverse of :func:`answers_to_wire`."""
    return frozenset(tuple(row) for row in rows)


@dataclass(frozen=True)
class QueryRequest:
    """A single query against a registered database snapshot.

    Instances double as cache/deduplication keys: two requests are equal
    exactly when they would produce the same answer on the same snapshot.
    ``profile=True`` asks for an EXPLAIN ANALYZE payload alongside the
    answers; it joins the cache key so a profiled request never collides
    with a profile-less cached response (and vice versa).
    """

    database: str
    query: str
    method: str = "approx"
    engine: str = "algebra"
    virtual_ne: bool = False
    profile: bool = False

    def __post_init__(self) -> None:
        __, engine, virtual_ne = normalize_options(self.method, self.engine, self.virtual_ne)
        object.__setattr__(self, "engine", engine)
        object.__setattr__(self, "virtual_ne", virtual_ne)
        object.__setattr__(self, "profile", bool(self.profile))


@dataclass(frozen=True)
class QueryResponse:
    """Answers for one :class:`QueryRequest`.

    ``answers`` maps a route label (``"approximate"`` and/or ``"exact"``) to
    the wire form of its answer set.  ``complete`` is only meaningful for
    ``method="both"``: whether the approximation matched the exact answers.
    ``profile`` carries the EXPLAIN ANALYZE payload (operator tree with
    rows / wall time / access path / memo hits) when the request asked for
    one; it lives inside the cached response, so repeated cached profiled
    executions return byte-identical profiles.

    ``degraded`` marks an answer served from a router's stale-response
    cache because no live replica could be reached (the opt-in
    ``degraded="stale_cache"`` router mode).  The answer was byte-identical
    to a fresh one when it was cached — snapshots are immutable — but the
    flag is the honest signal that the cluster, not a worker, produced it.
    A pre-resilience peer ignores the field (``parse_wire`` filters unknown
    keys), so it needs no protocol version bump.

    ``cost`` is the per-request resource bill (``repro-cost/v1``: rows
    scanned/emitted, operator wall time, cache hits, queue wait, retries,
    bytes on the wire), attached by the serving edge at response time —
    never stored in the answer cache, so cached responses stay
    byte-identical across servings.  Like ``degraded``, unknown-key
    filtering makes it wire-compatible with pre-accounting peers.
    """

    database: str
    fingerprint: str
    query: str
    method: str
    engine: str
    virtual_ne: bool
    arity: int
    answers: Mapping[str, tuple[tuple[str, ...], ...]]
    complete: bool | None = None
    missed: int | None = None
    cached: bool = False
    elapsed_seconds: float = 0.0
    profile: Mapping[str, object] | None = None
    degraded: bool = False
    cost: Mapping[str, object] | None = None

    def answer_set(self, label: str) -> frozenset[tuple[str, ...]]:
        """The answer set for *label* as the library's frozenset-of-tuples."""
        try:
            rows = self.answers[label]
        except KeyError:
            raise ServiceError(f"response has no {label!r} answers (method was {self.method!r})") from None
        return answers_from_wire(rows)


@dataclass(frozen=True)
class ClassifyRequest:
    """Ask for a query's syntactic class and the paper's complexity bounds."""

    query: str


@dataclass(frozen=True)
class ClassifyResponse:
    """Wire form of :class:`~repro.complexity.classes.QueryClassification`."""

    query: str
    is_first_order: bool
    prefix_class: str
    is_positive: bool
    logical_data_complexity: str
    logical_combined_complexity: str
    summary: str


@dataclass(frozen=True)
class InfoResponse:
    """Summary of one registered (or loaded) CW logical database."""

    name: str
    fingerprint: str
    constants: int
    predicates: Mapping[str, Mapping[str, int]]
    uniqueness_axioms: int
    unknown_constants: tuple[str, ...]
    fully_specified: bool
    description: str


@dataclass(frozen=True)
class HealthResponse:
    """Liveness probe result, advertising the protocol versions spoken.

    ``protocol_versions`` defaults to ``(1,)`` so health messages from
    servers predating v2 still parse — and absence of 2 is exactly what a
    client needs to know to stay on v1.  The cluster router reads the field
    off worker health checks.
    """

    status: str
    library_version: str
    protocol_versions: tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        object.__setattr__(self, "protocol_versions", tuple(int(v) for v in self.protocol_versions))


@dataclass(frozen=True)
class DatabasesResponse:
    """The names of every registered snapshot."""

    databases: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "databases", tuple(self.databases))


@dataclass(frozen=True)
class StatsResponse:
    """Service-level counters: registered snapshots and cache behaviour.

    ``plan_cache`` reports the compiled-plan LRU (hits mean a query skipped
    parse-rewrite-compile-optimize).  ``feedback`` reports the adaptive
    execution loop: cardinality observations recorded, plan-cache entries
    invalidated by divergent observations, and queries re-optimized on their
    next arrival.  ``cluster`` is filled by the sharded router front-end
    (:mod:`repro.cluster.router`): per-plan-kind routing counters, failovers,
    and one stats summary per worker.  ``prepared`` reports the session API:
    templates registered, statements held, executions, and how often an
    execution ran the generic template plan versus a binding-specific custom
    plan.  All four default to empty mappings so messages from servers
    predating them still parse.
    """

    databases: tuple[str, ...]
    answer_cache: Mapping[str, object]
    parse_cache: Mapping[str, object]
    batch: Mapping[str, int]
    uptime_seconds: float
    plan_cache: Mapping[str, object] = field(default_factory=dict)
    cluster: Mapping[str, object] = field(default_factory=dict)
    feedback: Mapping[str, int] = field(default_factory=dict)
    prepared: Mapping[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class MetricsResponse:
    """A telemetry snapshot: counters, gauges, latency histograms.

    Served at ``GET /metrics``.  ``histograms`` maps a metric name (e.g.
    ``"query.algebra"``) to its log-bucketed distribution with precomputed
    ``p50``/``p95``/``p99`` upper bounds in seconds (see
    :mod:`repro.observability.metrics`).  The cluster router answers with
    the merged view across its own registry and every reachable worker;
    quantiles are recomputed from the merged buckets, never summed.
    """

    counters: Mapping[str, int] = field(default_factory=dict)
    gauges: Mapping[str, float] = field(default_factory=dict)
    histograms: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    uptime_seconds: float = 0.0


@dataclass(frozen=True)
class BatchRequest:
    """Many query requests evaluated together (deduplicated, concurrent)."""

    requests: tuple[QueryRequest, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "requests", tuple(self.requests))


@dataclass(frozen=True)
class BatchResponse:
    """Positional responses for a batch; ``responses[i]`` answers request i.

    Failed items carry an :class:`ErrorResponse` in their slot so one bad
    query cannot poison the rest of the batch.
    """

    responses: tuple[QueryResponse | ErrorResponse, ...]
    total: int
    unique: int
    deduplicated: int


@dataclass(frozen=True)
class ErrorResponse:
    """A structured error: a stable code, the exception kind, the message.

    ``code`` is the wire contract (:data:`repro.errors.WIRE_ERROR_CODES`):
    clients re-raise the matching typed exception instead of pattern-matching
    messages.  ``kind`` (the Python class name) stays for humans and logs.
    """

    error: str
    kind: str = "ServiceError"
    code: str = "service"

    @classmethod
    def from_exception(cls, error: BaseException) -> "ErrorResponse":
        return cls(error=str(error), kind=type(error).__name__, code=wire_code(error))


# Protocol v2: the session API --------------------------------------------------


@dataclass(frozen=True)
class PrepareRequest:
    """Register a query template (with ``$name`` parameters) for execution.

    Options mean exactly what they mean on :class:`QueryRequest`, with the
    same exact-route normalization, so a prepared execution is always
    byte-identical to the equivalent ad-hoc request.
    """

    database: str
    template: str
    method: str = "approx"
    engine: str = "algebra"
    virtual_ne: bool = False

    def __post_init__(self) -> None:
        __, engine, virtual_ne = normalize_options(self.method, self.engine, self.virtual_ne)
        object.__setattr__(self, "engine", engine)
        object.__setattr__(self, "virtual_ne", virtual_ne)


@dataclass(frozen=True)
class PrepareResponse:
    """A registered statement: its server-side id and what it needs bound.

    ``template`` is the canonical rendering of the parsed template (the
    server's spelling, not the client's); ``parameters`` the sorted ``$``
    names every execution must bind.
    """

    statement_id: str
    database: str
    fingerprint: str
    template: str
    parameters: tuple[str, ...]
    arity: int
    method: str
    engine: str
    virtual_ne: bool

    def __post_init__(self) -> None:
        object.__setattr__(self, "parameters", tuple(self.parameters))


@dataclass(frozen=True)
class ExecuteRequest:
    """Execute a prepared statement under one parameter binding.

    With ``stream=False`` the answer arrives as an ordinary
    :class:`QueryResponse` body.  With ``stream=True`` the server materializes
    the answer into a cursor and replies with a :class:`CursorResponse`; the
    client then pulls :class:`PageResponse` chunks via :class:`FetchRequest`
    — large answer sets never travel as one giant JSON body.  Streaming
    requires a single answer route (``method`` ``approx`` or ``exact``).
    """

    statement_id: str
    params: Mapping[str, str] = field(default_factory=dict)
    stream: bool = False
    page_size: int = DEFAULT_PAGE_SIZE

    def __post_init__(self) -> None:
        params = dict(self.params)
        for name, value in params.items():
            if not isinstance(name, str) or not isinstance(value, str):
                raise ServiceError(f"parameter bindings must map names to strings, got {name!r}={value!r}")
        object.__setattr__(self, "params", params)
        if not isinstance(self.page_size, int) or self.page_size < 1:
            raise ServiceError(f"page_size must be a positive integer, got {self.page_size!r}")


@dataclass(frozen=True)
class ExecuteManyRequest:
    """Execute one prepared statement under many bindings (a parameter sweep).

    Answered by a :class:`BatchResponse`: positional, deduplicated, with
    per-binding failures isolated as :class:`ErrorResponse` slots.
    """

    statement_id: str
    bindings: tuple[Mapping[str, str], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "bindings", tuple(dict(binding) for binding in self.bindings))


@dataclass(frozen=True)
class CursorResponse:
    """The header of a streamed answer: cursor id, paging shape, metadata.

    Mirrors every :class:`QueryResponse` field except the answer rows
    themselves, which arrive chunked through :class:`FetchRequest` /
    :class:`PageResponse`.  Reassembling all pages in order yields exactly
    ``answers_to_wire`` of the answer set — byte-identical to the
    single-body response.  Cursors are bounded server-side state and may be
    evicted; fetching pages is idempotent until then.
    """

    cursor_id: str
    database: str
    fingerprint: str
    query: str
    method: str
    engine: str
    virtual_ne: bool
    arity: int
    label: str
    total_rows: int
    page_size: int
    pages: int
    complete: bool | None = None
    missed: int | None = None
    cached: bool = False
    elapsed_seconds: float = 0.0


@dataclass(frozen=True)
class FetchRequest:
    """Pull one page of a streamed answer (0-based page index)."""

    cursor_id: str
    page: int

    def __post_init__(self) -> None:
        if not isinstance(self.page, int) or self.page < 0:
            raise ServiceError(f"page must be a non-negative integer, got {self.page!r}")


@dataclass(frozen=True)
class PageResponse:
    """One chunk of a streamed answer, in the canonical sorted order."""

    cursor_id: str
    page: int
    rows: tuple[tuple[str, ...], ...]
    last: bool

    def __post_init__(self) -> None:
        object.__setattr__(self, "rows", tuple(tuple(row) for row in self.rows))


_MESSAGE_TYPES: dict[str, type] = {
    "query_request": QueryRequest,
    "query_response": QueryResponse,
    "classify_request": ClassifyRequest,
    "classify_response": ClassifyResponse,
    "info_response": InfoResponse,
    "health": HealthResponse,
    "databases": DatabasesResponse,
    "stats_response": StatsResponse,
    "metrics_response": MetricsResponse,
    "batch_request": BatchRequest,
    "batch_response": BatchResponse,
    "error": ErrorResponse,
    "prepare_request": PrepareRequest,
    "prepare_response": PrepareResponse,
    "execute_request": ExecuteRequest,
    "execute_many_request": ExecuteManyRequest,
    "cursor_response": CursorResponse,
    "fetch_request": FetchRequest,
    "page_response": PageResponse,
}
_TYPE_TAGS = {cls: tag for tag, cls in _MESSAGE_TYPES.items()}

#: Message types introduced by protocol v2 — rejected inside a v1 envelope.
_V2_ONLY_TAGS = frozenset(
    {
        "prepare_request",
        "prepare_response",
        "execute_request",
        "execute_many_request",
        "cursor_response",
        "fetch_request",
        "page_response",
    }
)


def to_wire(message: object, version: int = PROTOCOL_VERSION) -> dict[str, object]:
    """Serialize a protocol dataclass to a JSON-compatible dict.

    *version* stamps the envelope; the server echoes each request's version
    so v1 clients only ever see v1 envelopes.  Serializing a v2-only message
    at v1 is a programming error and raises.
    """
    tag = _TYPE_TAGS.get(type(message))
    if tag is None:
        raise ProtocolError(f"not a protocol message: {type(message).__name__}")
    if version not in SUPPORTED_PROTOCOL_VERSIONS:
        raise ProtocolError(f"unsupported protocol version {version!r} (this library speaks {SUPPORTED_PROTOCOL_VERSIONS})")
    if version < 2 and tag in _V2_ONLY_TAGS:
        raise ProtocolError(f"message type {tag!r} requires protocol v2 (asked to serialize at v{version})")
    if isinstance(message, BatchRequest):
        # Shallow envelope: asdict would deep-convert every nested message
        # only for the list to be rebuilt via to_wire immediately after.
        payload: dict[str, object] = {
            "requests": [to_wire(request, version) for request in message.requests]
        }
    elif isinstance(message, BatchResponse):
        payload = {
            "responses": [to_wire(response, version) for response in message.responses],
            "total": message.total,
            "unique": message.unique,
            "deduplicated": message.deduplicated,
        }
    else:
        payload = asdict(message)
    payload["type"] = tag
    payload["v"] = version
    return payload


def dump_wire(message: object, indent: int | None = None, version: int = PROTOCOL_VERSION) -> str:
    """JSON text of a protocol message (the CLI's ``--json`` output)."""
    return json.dumps(to_wire(message, version), indent=indent, sort_keys=True)


def wire_version(payload: Mapping[str, object] | str | bytes) -> int:
    """The protocol version a raw payload claims (without fully parsing it)."""
    if isinstance(payload, (str, bytes)):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as error:
            raise ProtocolError(f"payload is not valid JSON: {error}") from None
    if not isinstance(payload, Mapping) or "v" not in payload:
        raise ProtocolError("message is missing the protocol version field 'v'")
    version = payload["v"]
    if version not in SUPPORTED_PROTOCOL_VERSIONS:
        raise ProtocolError(
            f"unsupported protocol version {version!r} (this library speaks {SUPPORTED_PROTOCOL_VERSIONS})"
        )
    return int(version)  # type: ignore[arg-type]


class DeprecationGate:
    """Once-per-owner latch for the v1-deprecation warning.

    Each :class:`~repro.service.server.ServiceHTTPServer` owns one, so the
    warning fires once per *server instance* rather than once per process —
    a long-lived process that restarts its server (tests, embedding hosts)
    warns again for the new instance instead of staying silent forever.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._warned = False

    def warn(self, where: str) -> None:
        """Emit the v1-deprecation warning if this gate has not yet fired."""
        with self._lock:
            if self._warned:
                return
            self._warned = True
        warnings.warn(
            f"received a protocol v1 request ({where}); v1 is supported but deprecated — "
            "upgrade clients to v2 (see docs/protocol.md)",
            DeprecationWarning,
            stacklevel=3,
        )


_PROCESS_DEPRECATION_GATE = DeprecationGate()


def warn_v1_deprecated(where: str) -> None:
    """Emit the v1-deprecation warning, once per process.

    Called by the *server* when a v1 request envelope arrives — not by
    :func:`parse_wire` itself, which also parses the v1 envelopes this
    library legitimately emits (GET responses, recorded traffic logs).
    Servers should prefer their own :class:`DeprecationGate`; this module
    gate remains for embedders without a server instance.
    """
    _PROCESS_DEPRECATION_GATE.warn(where)


def upconvert_v1(tag: str, payload: Mapping[str, object]) -> dict:
    """The v1 → v2 compatibility shim.

    Today's v2 schema is a strict superset of v1 (every new field has a
    default), so up-conversion is mostly "accept and fill defaults" — but it
    is a named seam: when a future version renames or reshapes a field, the
    rewrite lives here, and v1 traffic (recorded logs, old clients) keeps
    parsing.  It receives the **raw** payload, before unknown fields are
    filtered against the current schema — a renamed v1-only field must reach
    the shim, or there would be nothing left to rewrite.
    """
    if tag in _V2_ONLY_TAGS:
        raise ProtocolError(f"message type {tag!r} requires protocol v2 (got a v1 envelope)")
    return dict(payload)


def parse_wire(payload: Mapping[str, object] | str | bytes) -> object:
    """Deserialize one protocol message, validating version and type tag.

    Accepts every version in :data:`SUPPORTED_PROTOCOL_VERSIONS`; v1
    messages are up-converted through :func:`upconvert_v1`.
    """
    if isinstance(payload, (str, bytes)):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as error:
            raise ProtocolError(f"payload is not valid JSON: {error}") from None
    if not isinstance(payload, Mapping):
        raise ProtocolError(f"payload must be a JSON object, got {type(payload).__name__}")
    version = wire_version(payload)
    tag = payload.get("type")
    if not isinstance(tag, str):
        raise ProtocolError(f"message type must be a string, got {type(tag).__name__}")
    message_type = _MESSAGE_TYPES.get(tag)
    if message_type is None:
        raise ProtocolError(f"unknown message type {tag!r}")
    if version < 2:
        payload = upconvert_v1(tag, payload)
    known = {f.name for f in fields(message_type)}
    arguments = {key: value for key, value in payload.items() if key in known}
    try:
        if message_type is BatchRequest:
            arguments["requests"] = tuple(
                _expect(parse_wire(item), QueryRequest) for item in arguments.get("requests", ())
            )
        if message_type is BatchResponse:
            arguments["responses"] = tuple(
                _expect(parse_wire(item), (QueryResponse, ErrorResponse))
                for item in arguments.get("responses", ())
            )
        if message_type is QueryResponse:
            arguments["answers"] = {
                label: tuple(tuple(row) for row in rows)
                for label, rows in dict(arguments.get("answers", {})).items()
            }
        if message_type is InfoResponse:
            arguments["unknown_constants"] = tuple(arguments.get("unknown_constants", ()))
        if message_type in (StatsResponse, DatabasesResponse):
            arguments["databases"] = tuple(arguments.get("databases", ()))
        if message_type is ExecuteManyRequest:
            bindings = arguments.get("bindings", ())
            if not all(isinstance(binding, Mapping) for binding in bindings):
                raise ProtocolError("execute_many_request bindings must be JSON objects")
            arguments["bindings"] = tuple(dict(binding) for binding in bindings)
        if message_type is ExecuteRequest and "params" in arguments:
            if not isinstance(arguments["params"], Mapping):
                raise ProtocolError("execute_request params must be a JSON object")
            arguments["params"] = dict(arguments["params"])
        return message_type(**arguments)
    except ProtocolError:
        raise
    except (TypeError, ServiceError) as error:
        raise ProtocolError(f"malformed {tag} message: {error}") from None


def _expect(message: object, types) -> object:
    if not isinstance(message, types):
        raise ProtocolError(f"unexpected nested message {type(message).__name__}")
    return message


# Builders shared by the engine and the human CLI ------------------------------


def build_info_response(name: str, database: CWDatabase) -> InfoResponse:
    """Describe a CW database in wire form (used by ``info`` and ``/info``)."""
    return InfoResponse(
        name=name,
        fingerprint=database.fingerprint(),
        constants=len(database.constants),
        predicates={
            predicate: {"arity": arity, "facts": len(database.facts_for(predicate))}
            for predicate, arity in sorted(database.predicates.items())
        },
        uniqueness_axioms=len(database.unequal),
        unknown_constants=tuple(sorted(database.unknown_constants())),
        fully_specified=database.is_fully_specified,
        description=database.describe(),
    )


def build_classify_response(query_text: str, classification: QueryClassification) -> ClassifyResponse:
    """Wire form of a classification (used by ``classify`` and ``/classify``)."""
    return ClassifyResponse(
        query=query_text,
        is_first_order=classification.is_first_order,
        prefix_class=classification.prefix_class,
        is_positive=classification.is_positive,
        logical_data_complexity=classification.logical_data_complexity,
        logical_combined_complexity=classification.logical_combined_complexity,
        summary=classification.summary(),
    )

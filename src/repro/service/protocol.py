"""JSON request/response messages of the query service.

One wire format serves three consumers: the HTTP front-end
(:mod:`repro.service.server`), the urllib client
(:mod:`repro.service.client`) and the ``--json`` mode of the human CLI —
they all serialize through the dataclasses below, so a response printed by
``repro query --json`` is byte-compatible with what the server returns.

Every message carries ``"type"`` (its message kind) and ``"v"`` (the
protocol version).  :func:`parse_wire` is the single entry point for
deserialization; it validates the version and dispatches on the type tag.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Iterable, Mapping, Sequence

from repro.complexity.classes import QueryClassification
from repro.errors import ProtocolError, ServiceError
from repro.logical.database import CWDatabase

__all__ = [
    "PROTOCOL_VERSION",
    "METHODS",
    "ENGINES",
    "QueryRequest",
    "QueryResponse",
    "ClassifyRequest",
    "ClassifyResponse",
    "InfoResponse",
    "HealthResponse",
    "DatabasesResponse",
    "StatsResponse",
    "BatchRequest",
    "BatchResponse",
    "ErrorResponse",
    "answers_to_wire",
    "answers_from_wire",
    "build_info_response",
    "build_classify_response",
    "parse_wire",
    "dump_wire",
]

PROTOCOL_VERSION = 1

METHODS = ("approx", "exact", "both")
ENGINES = ("tarski", "algebra", "auto")


def answers_to_wire(answers: Iterable[Sequence[str]]) -> list[list[str]]:
    """Canonical JSON form of an answer set: sorted list of string lists."""
    return sorted([list(row) for row in answers])


def answers_from_wire(rows: Iterable[Sequence[str]]) -> frozenset[tuple[str, ...]]:
    """Inverse of :func:`answers_to_wire`."""
    return frozenset(tuple(row) for row in rows)


@dataclass(frozen=True)
class QueryRequest:
    """A single query against a registered database snapshot.

    Instances double as cache/deduplication keys: two requests are equal
    exactly when they would produce the same answer on the same snapshot.
    """

    database: str
    query: str
    method: str = "approx"
    engine: str = "algebra"
    virtual_ne: bool = False

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise ServiceError(f"unknown method {self.method!r}; expected one of {METHODS}")
        if self.engine not in ENGINES:
            raise ServiceError(f"unknown engine {self.engine!r}; expected one of {ENGINES}")
        if self.method == "exact":
            # The exact route never consults the approximation engine or the
            # NE encoding; normalizing them makes all equivalent exact
            # requests equal, so caching and batch dedup collapse them.
            object.__setattr__(self, "engine", "algebra")
            object.__setattr__(self, "virtual_ne", False)


@dataclass(frozen=True)
class QueryResponse:
    """Answers for one :class:`QueryRequest`.

    ``answers`` maps a route label (``"approximate"`` and/or ``"exact"``) to
    the wire form of its answer set.  ``complete`` is only meaningful for
    ``method="both"``: whether the approximation matched the exact answers.
    """

    database: str
    fingerprint: str
    query: str
    method: str
    engine: str
    virtual_ne: bool
    arity: int
    answers: Mapping[str, tuple[tuple[str, ...], ...]]
    complete: bool | None = None
    missed: int | None = None
    cached: bool = False
    elapsed_seconds: float = 0.0

    def answer_set(self, label: str) -> frozenset[tuple[str, ...]]:
        """The answer set for *label* as the library's frozenset-of-tuples."""
        try:
            rows = self.answers[label]
        except KeyError:
            raise ServiceError(f"response has no {label!r} answers (method was {self.method!r})") from None
        return answers_from_wire(rows)


@dataclass(frozen=True)
class ClassifyRequest:
    """Ask for a query's syntactic class and the paper's complexity bounds."""

    query: str


@dataclass(frozen=True)
class ClassifyResponse:
    """Wire form of :class:`~repro.complexity.classes.QueryClassification`."""

    query: str
    is_first_order: bool
    prefix_class: str
    is_positive: bool
    logical_data_complexity: str
    logical_combined_complexity: str
    summary: str


@dataclass(frozen=True)
class InfoResponse:
    """Summary of one registered (or loaded) CW logical database."""

    name: str
    fingerprint: str
    constants: int
    predicates: Mapping[str, Mapping[str, int]]
    uniqueness_axioms: int
    unknown_constants: tuple[str, ...]
    fully_specified: bool
    description: str


@dataclass(frozen=True)
class HealthResponse:
    """Liveness probe result."""

    status: str
    library_version: str


@dataclass(frozen=True)
class DatabasesResponse:
    """The names of every registered snapshot."""

    databases: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "databases", tuple(self.databases))


@dataclass(frozen=True)
class StatsResponse:
    """Service-level counters: registered snapshots and cache behaviour.

    ``plan_cache`` reports the compiled-plan LRU (hits mean a query skipped
    parse-rewrite-compile-optimize).  ``feedback`` reports the adaptive
    execution loop: cardinality observations recorded, plan-cache entries
    invalidated by divergent observations, and queries re-optimized on their
    next arrival.  ``cluster`` is filled by the sharded router front-end
    (:mod:`repro.cluster.router`): per-plan-kind routing counters, failovers,
    and one stats summary per worker.  All three default to empty mappings so
    messages from servers predating them still parse.
    """

    databases: tuple[str, ...]
    answer_cache: Mapping[str, object]
    parse_cache: Mapping[str, object]
    batch: Mapping[str, int]
    uptime_seconds: float
    plan_cache: Mapping[str, object] = field(default_factory=dict)
    cluster: Mapping[str, object] = field(default_factory=dict)
    feedback: Mapping[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class BatchRequest:
    """Many query requests evaluated together (deduplicated, concurrent)."""

    requests: tuple[QueryRequest, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "requests", tuple(self.requests))


@dataclass(frozen=True)
class BatchResponse:
    """Positional responses for a batch; ``responses[i]`` answers request i.

    Failed items carry an :class:`ErrorResponse` in their slot so one bad
    query cannot poison the rest of the batch.
    """

    responses: tuple[QueryResponse | ErrorResponse, ...]
    total: int
    unique: int
    deduplicated: int


@dataclass(frozen=True)
class ErrorResponse:
    """A structured error: the exception kind plus its message."""

    error: str
    kind: str = "ServiceError"


_MESSAGE_TYPES: dict[str, type] = {
    "query_request": QueryRequest,
    "query_response": QueryResponse,
    "classify_request": ClassifyRequest,
    "classify_response": ClassifyResponse,
    "info_response": InfoResponse,
    "health": HealthResponse,
    "databases": DatabasesResponse,
    "stats_response": StatsResponse,
    "batch_request": BatchRequest,
    "batch_response": BatchResponse,
    "error": ErrorResponse,
}
_TYPE_TAGS = {cls: tag for tag, cls in _MESSAGE_TYPES.items()}


def to_wire(message: object) -> dict[str, object]:
    """Serialize a protocol dataclass to a JSON-compatible dict."""
    tag = _TYPE_TAGS.get(type(message))
    if tag is None:
        raise ProtocolError(f"not a protocol message: {type(message).__name__}")
    if isinstance(message, BatchRequest):
        # Shallow envelope: asdict would deep-convert every nested message
        # only for the list to be rebuilt via to_wire immediately after.
        payload: dict[str, object] = {"requests": [to_wire(request) for request in message.requests]}
    elif isinstance(message, BatchResponse):
        payload = {
            "responses": [to_wire(response) for response in message.responses],
            "total": message.total,
            "unique": message.unique,
            "deduplicated": message.deduplicated,
        }
    else:
        payload = asdict(message)
    payload["type"] = tag
    payload["v"] = PROTOCOL_VERSION
    return payload


def dump_wire(message: object, indent: int | None = None) -> str:
    """JSON text of a protocol message (the CLI's ``--json`` output)."""
    return json.dumps(to_wire(message), indent=indent, sort_keys=True)


def parse_wire(payload: Mapping[str, object] | str | bytes) -> object:
    """Deserialize one protocol message, validating version and type tag."""
    if isinstance(payload, (str, bytes)):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as error:
            raise ProtocolError(f"payload is not valid JSON: {error}") from None
    if not isinstance(payload, Mapping):
        raise ProtocolError(f"payload must be a JSON object, got {type(payload).__name__}")
    if "v" not in payload:
        raise ProtocolError("message is missing the protocol version field 'v'")
    version = payload["v"]
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version!r} (this library speaks {PROTOCOL_VERSION})")
    tag = payload.get("type")
    if not isinstance(tag, str):
        raise ProtocolError(f"message type must be a string, got {type(tag).__name__}")
    message_type = _MESSAGE_TYPES.get(tag)
    if message_type is None:
        raise ProtocolError(f"unknown message type {tag!r}")
    known = {f.name for f in fields(message_type)}
    arguments = {key: value for key, value in payload.items() if key in known}
    try:
        if message_type is BatchRequest:
            arguments["requests"] = tuple(
                _expect(parse_wire(item), QueryRequest) for item in arguments.get("requests", ())
            )
        if message_type is BatchResponse:
            arguments["responses"] = tuple(
                _expect(parse_wire(item), (QueryResponse, ErrorResponse))
                for item in arguments.get("responses", ())
            )
        if message_type is QueryResponse:
            arguments["answers"] = {
                label: tuple(tuple(row) for row in rows)
                for label, rows in dict(arguments.get("answers", {})).items()
            }
        if message_type is InfoResponse:
            arguments["unknown_constants"] = tuple(arguments.get("unknown_constants", ()))
        if message_type in (StatsResponse, DatabasesResponse):
            arguments["databases"] = tuple(arguments.get("databases", ()))
        return message_type(**arguments)
    except ProtocolError:
        raise
    except (TypeError, ServiceError) as error:
        raise ProtocolError(f"malformed {tag} message: {error}") from None


def _expect(message: object, types) -> object:
    if not isinstance(message, types):
        raise ProtocolError(f"unexpected nested message {type(message).__name__}")
    return message


# Builders shared by the engine and the human CLI ------------------------------


def build_info_response(name: str, database: CWDatabase) -> InfoResponse:
    """Describe a CW database in wire form (used by ``info`` and ``/info``)."""
    return InfoResponse(
        name=name,
        fingerprint=database.fingerprint(),
        constants=len(database.constants),
        predicates={
            predicate: {"arity": arity, "facts": len(database.facts_for(predicate))}
            for predicate, arity in sorted(database.predicates.items())
        },
        uniqueness_axioms=len(database.unequal),
        unknown_constants=tuple(sorted(database.unknown_constants())),
        fully_specified=database.is_fully_specified,
        description=database.describe(),
    )


def build_classify_response(query_text: str, classification: QueryClassification) -> ClassifyResponse:
    """Wire form of a classification (used by ``classify`` and ``/classify``)."""
    return ClassifyResponse(
        query=query_text,
        is_first_order=classification.is_first_order,
        prefix_class=classification.prefix_class,
        is_positive=classification.is_positive,
        logical_data_complexity=classification.logical_data_complexity,
        logical_combined_complexity=classification.logical_combined_complexity,
        summary=classification.summary(),
    )

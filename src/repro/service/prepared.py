"""Prepared statements: plan once, execute many.

Vardi's PODS'85 analysis separates *expression complexity* (the query) from
*data complexity* (the instance).  The ad-hoc request path re-pays the
expression side — parse, classify, optimize, (in a cluster) decompose — on
every arrival, even when millions of requests are the same query template
with different constants.  A *prepared statement* moves that work to a
single ``prepare`` call: the template (a query with ``$name`` parameter
placeholders) is parsed and planned once, and each ``execute`` only binds
constants into the finished artifacts.

This module holds the parts shared by the single-process service
(:class:`~repro.service.engine.QueryService`) and the cluster front-end
(:class:`~repro.cluster.router.ClusterRouter`): the immutable statement
record and a thread-safe, deduplicating registry.  Statement ids are
*session state* — a restarted server forgets them, and clients re-prepare
on :class:`~repro.errors.UnknownStatementError`.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Mapping

from repro.errors import UnknownStatementError
from repro.logic.printer import query_to_text
from repro.logic.queries import Query
from repro.logic.template import bind_query, query_parameters

__all__ = ["PreparedStatement", "StatementRegistry", "normalize_statement_options"]


def normalize_statement_options(method: str, engine: str, virtual_ne: bool) -> tuple[str, str, bool]:
    """Validate and normalize evaluation options.

    Delegates to :func:`repro.service.protocol.normalize_options` — one
    source of the rule, so a prepared statement and the equivalent ad-hoc
    request always normalize identically and land on the same answer-cache
    slot.
    """
    from repro.service.protocol import normalize_options

    return normalize_options(method, engine, virtual_ne)


@dataclass(frozen=True)
class PreparedStatement:
    """One prepared template: parsed once, bound many times.

    ``template`` is the *canonical* text (the parsed query printed back), so
    two spellings of the same template share plan-cache entries.  ``query``
    is the parsed AST with :class:`~repro.logic.terms.Parameter` terms still
    in place; :meth:`bind` substitutes a concrete binding without re-parsing.
    """

    statement_id: str
    database: str
    template: str
    query: Query
    method: str
    engine: str
    virtual_ne: bool
    parameters: tuple[str, ...]
    arity: int

    def bind(self, values: Mapping[str, str]) -> tuple[Query, str]:
        """The bound (parameter-free) query and its rendered text."""
        bound = bind_query(self.query, values)
        return bound, query_to_text(bound)

    def dedup_key(self) -> tuple:
        """Statements with equal keys are interchangeable (one registry slot)."""
        return (self.database, self.template, self.method, self.engine, self.virtual_ne)


class StatementRegistry:
    """Thread-safe statement store, deduplicating by content.

    Preparing the same (database, template, options) twice returns the
    *same* statement — the registry's size is bounded by the number of
    distinct templates a deployment actually uses, not by how often clients
    call ``prepare``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_id: dict[str, PreparedStatement] = {}
        self._by_key: dict[tuple, PreparedStatement] = {}
        self._ids = itertools.count(1)

    def intern(
        self,
        database: str,
        query: Query,
        method: str,
        engine: str,
        virtual_ne: bool,
    ) -> tuple[PreparedStatement, bool]:
        """Register (or find) a statement; returns ``(statement, created)``."""
        method, engine, virtual_ne = normalize_statement_options(method, engine, virtual_ne)
        template = query_to_text(query)
        key = (database, template, method, engine, virtual_ne)
        with self._lock:
            existing = self._by_key.get(key)
            if existing is not None:
                return existing, False
            statement = PreparedStatement(
                statement_id=f"stmt-{next(self._ids)}",
                database=database,
                template=template,
                query=query,
                method=method,
                engine=engine,
                virtual_ne=virtual_ne,
                parameters=query_parameters(query),
                arity=query.arity,
            )
            self._by_id[statement.statement_id] = statement
            self._by_key[key] = statement
            return statement, True

    def get(self, statement_id: str) -> PreparedStatement:
        with self._lock:
            statement = self._by_id.get(statement_id)
        if statement is None:
            raise UnknownStatementError(
                f"unknown prepared statement {statement_id!r} — statements are per-server "
                "session state; re-prepare after a reconnect or server restart"
            )
        return statement

    def deallocate(self, statement_id: str) -> None:
        """Drop one statement (idempotent errors: unknown ids raise)."""
        with self._lock:
            statement = self._by_id.pop(statement_id, None)
            if statement is not None:
                self._by_key.pop(statement.dedup_key(), None)
        if statement is None:
            raise UnknownStatementError(f"unknown prepared statement {statement_id!r}")

    def drop_database(self, name: str) -> int:
        """Forget every statement prepared against *name* (on unregister)."""
        with self._lock:
            doomed = [s for s in self._by_id.values() if s.database == name]
            for statement in doomed:
                del self._by_id[statement.statement_id]
                self._by_key.pop(statement.dedup_key(), None)
        return len(doomed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_id)

"""Reproduction of "Querying Logical Databases" (Vardi, PODS 1985 / JCSS 1986).

The library implements, from scratch:

* a first-/second-order logic substrate (:mod:`repro.logic`);
* physical databases with Tarskian and relational-algebra evaluation
  (:mod:`repro.physical`);
* closed-world logical databases with unknown values and exact
  certain-answer evaluation via Theorem 1 (:mod:`repro.logical`);
* the precise second-order simulation of Theorem 3 (:mod:`repro.simulation`);
* the sound approximation algorithm of Section 5 (:mod:`repro.approx`);
* the complexity reductions of Section 4 (:mod:`repro.complexity`);
* workload generators, scenarios and the experiment harness
  (:mod:`repro.workloads`, :mod:`repro.harness`);
* the concurrent query-serving subsystem — snapshot registry, result
  caching, batch evaluation and a JSON HTTP front-end
  (:mod:`repro.service`);
* sharded multi-process serving with a persistent, content-addressed
  snapshot store — deterministic partitioning, scatter-gather routing with
  sound merges, replication and failover (:mod:`repro.cluster`).

Quick start::

    from repro import CWDatabase, parse_query, certain_answers, approximate_answers

    lb = CWDatabase(
        constants=("socrates", "plato", "aristotle"),
        predicates={"TEACHES": 2},
        facts={"TEACHES": [("socrates", "plato"), ("plato", "aristotle")]},
        unequal=[("socrates", "plato"), ("plato", "aristotle")],
    )
    q = parse_query("(x, y) . TEACHES(x, y) & ~(x = y)")
    print(certain_answers(lb, q))        # exact (exponential)
    print(approximate_answers(lb, q))    # sound approximation (polynomial)
"""

from repro.approx import ApproximateEvaluator, approximate_answers, approximately_holds, rewrite_query
from repro.logic import (
    Atom,
    C,
    Constant,
    Eq,
    Formula,
    Neq,
    Parameter,
    Pred,
    Query,
    V,
    Variable,
    Vocabulary,
    bind_query,
    boolean_query,
    parse_formula,
    parse_query,
    query_parameters,
    to_text,
)
from repro.logical import (
    CWDatabase,
    CertainAnswerEvaluator,
    certain_answers,
    certainly_holds,
    ph1,
    ph2,
)
from repro.physical import PhysicalDatabase, Relation, evaluate_query, satisfies
from repro.cluster import ClusterRouter, SnapshotStore, start_cluster
from repro.service import (
    BatchEvaluator,
    PreparedHandle,
    PreparedStatement,
    QueryRequest,
    QueryResponse,
    QueryService,
    ServiceClient,
    evaluate_batch,
    running_server,
)
from repro.simulation import build_simulation_query, evaluate_by_simulation

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # logic
    "Variable",
    "Constant",
    "Parameter",
    "bind_query",
    "query_parameters",
    "Atom",
    "Formula",
    "Query",
    "Vocabulary",
    "boolean_query",
    "parse_formula",
    "parse_query",
    "to_text",
    "V",
    "C",
    "Pred",
    "Eq",
    "Neq",
    # physical
    "PhysicalDatabase",
    "Relation",
    "evaluate_query",
    "satisfies",
    # logical
    "CWDatabase",
    "certain_answers",
    "certainly_holds",
    "CertainAnswerEvaluator",
    "ph1",
    "ph2",
    # simulation
    "build_simulation_query",
    "evaluate_by_simulation",
    # approximation
    "ApproximateEvaluator",
    "approximate_answers",
    "approximately_holds",
    "rewrite_query",
    # service
    "QueryService",
    "QueryRequest",
    "QueryResponse",
    "BatchEvaluator",
    "evaluate_batch",
    "ServiceClient",
    "PreparedHandle",
    "PreparedStatement",
    "running_server",
    # cluster
    "ClusterRouter",
    "SnapshotStore",
    "start_cluster",
]

"""Batch-size sweep: measure operator microbenchmarks per ``REPRO_BATCH_SIZE``.

The vectorized executor's one tunable is the scan batch size.  Too small
and the per-batch Python overhead (one loop iteration, one ``ColumnBatch``
allocation, one profiler call per operator per batch) eats the columnar
win; too large costs nothing on these in-memory workloads — there is no
cache-capacity cliff to fall off at Python-object granularity, so the
curve flattens instead of turning over.  This module measures that curve
so the default in :mod:`repro.physical.batch` is a recorded decision
rather than folklore, and so the E20 benchmark can embed the sweep it ran
under in its report's environment stanza.

The sweep times the three operator shapes the executor spends its life
in, each over one synthetic two-relation database:

* **scan** — full materialization of a stored relation (the pipeline
  breaker: slice columns, re-assemble row tuples, hash into the result
  set);
* **filter** — a constant-binding selection over a scan (one vectorized
  mask pass per batch);
* **join** — a two-relation natural join (per-batch hash build + probe).

Each candidate batch size gets ``best_of(repeats)`` seconds per shape
(noise-stripped minimums, same policy as every comparison benchmark in
this repo); :func:`recommend_batch_size` then picks the smallest
candidate within *tolerance* of the fastest total, preferring smaller
batches when the difference is noise because they bound peak batch memory.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.harness.experiments import best_of
from repro.logic.vocabulary import Vocabulary
from repro.physical.batch import DEFAULT_BATCH_SIZE, execute_batched
from repro.physical.database import PhysicalDatabase
from repro.physical.plan import NaturalJoin, PlanNode, RenameColumns, ScanRelation, Selection

__all__ = [
    "CANDIDATE_BATCH_SIZES",
    "sweep_database",
    "sweep_plans",
    "sweep_batch_sizes",
    "recommend_batch_size",
    "sweep_summary",
]

#: The batch sizes the sweep measures.  Powers of four around the plausible
#: range: 64 is small enough to expose per-batch overhead, 16384 is larger
#: than any relation the benchmarks scan (i.e. "one batch per relation").
CANDIDATE_BATCH_SIZES: tuple[int, ...] = (64, 256, 1024, 4096, 16384)


def sweep_database(rows: int = 4096, fanout: int = 16) -> PhysicalDatabase:
    """A deterministic two-relation instance for the operator sweep.

    ``R(a, b)`` has *rows* rows whose ``b`` values repeat with the given
    *fanout* (so the join below multiplies rows like a real foreign-key
    join); ``S(b, c)`` has one row per distinct ``b``.
    """
    groups = max(1, rows // fanout)
    r_rows = [(f"a{i}", f"b{i % groups}") for i in range(rows)]
    s_rows = [(f"b{g}", f"c{g % 7}") for g in range(groups)]
    vocabulary = Vocabulary((), {"R": 2, "S": 2})
    domain = {value for row in r_rows + s_rows for value in row}
    return PhysicalDatabase(vocabulary, domain, {}, {"R": r_rows, "S": s_rows})


def sweep_plans() -> tuple[tuple[str, PlanNode], ...]:
    """The ``(shape name, plan)`` pairs the sweep times, over :func:`sweep_database`."""
    scan = ScanRelation("R", ("a", "b"))
    filter_plan = Selection(scan, bindings=(("b", "b3"),))
    join = NaturalJoin(
        scan, RenameColumns(ScanRelation("S", ("x", "c")), (("x", "b"),))
    )
    return (("scan", scan), ("filter", filter_plan), ("join", join))


def sweep_batch_sizes(
    database: PhysicalDatabase | None = None,
    plans: Sequence[tuple[str, PlanNode]] | None = None,
    batch_sizes: Sequence[int] = CANDIDATE_BATCH_SIZES,
    repeats: int = 3,
) -> list[dict[str, object]]:
    """Time every plan shape at every batch size; one result row per size.

    Each row carries the batch size, per-shape best-of seconds, and their
    total.  Results at different sizes are verified to agree exactly —
    the batch size must never be semantically visible.
    """
    if database is None:
        database = sweep_database()
    if plans is None:
        plans = sweep_plans()
    expected = {name: execute_batched(plan, database) for name, plan in plans}
    rows: list[dict[str, object]] = []
    for batch_rows in batch_sizes:
        seconds: dict[str, float] = {}
        for name, plan in plans:
            result, elapsed = best_of(
                lambda p=plan: execute_batched(p, database, batch_rows=batch_rows),
                repeats=repeats,
            )
            if result != expected[name]:
                raise AssertionError(
                    f"batch size {batch_rows} changed the {name} answer — "
                    "the batch size must never be semantically visible"
                )
            seconds[name] = elapsed
        rows.append(
            {
                "batch_rows": batch_rows,
                "seconds": seconds,
                "total_seconds": sum(seconds.values()),
            }
        )
    return rows


def recommend_batch_size(
    rows: Sequence[Mapping[str, object]], tolerance: float = 0.05
) -> int:
    """The smallest batch size within *tolerance* of the fastest total.

    Ties break toward smaller batches: when two sizes measure the same to
    within noise, the smaller one bounds peak per-batch memory for free.
    """
    if not rows:
        raise ValueError("sweep produced no rows")
    fastest = min(float(row["total_seconds"]) for row in rows)
    for row in sorted(rows, key=lambda r: int(r["batch_rows"])):
        if float(row["total_seconds"]) <= fastest * (1.0 + tolerance):
            return int(row["batch_rows"])
    raise AssertionError("unreachable: the fastest row is within any tolerance of itself")


def sweep_summary(repeats: int = 3) -> dict[str, object]:
    """Run the sweep and fold it into one JSON-compatible stanza.

    This is what the E20 benchmark embeds under its report's
    ``environment`` so the artifact records which batch size the numbers
    were taken at and why.
    """
    rows = sweep_batch_sizes(repeats=repeats)
    recommended = recommend_batch_size(rows)
    return {
        "candidates": [
            {
                "batch_rows": row["batch_rows"],
                "total_us": int(float(row["total_seconds"]) * 1_000_000),
            }
            for row in rows
        ],
        "recommended_batch_rows": recommended,
        "default_batch_rows": DEFAULT_BATCH_SIZE,
    }

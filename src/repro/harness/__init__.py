"""Experiment harness: timing helpers and plain-text reporting."""

from repro.harness.experiments import (
    Experiment,
    Measurement,
    ThroughputResult,
    measure_throughput,
    run_experiment,
    timed,
)
from repro.harness.reporting import format_ratio, format_report, format_table

__all__ = [
    "Experiment",
    "Measurement",
    "run_experiment",
    "timed",
    "ThroughputResult",
    "measure_throughput",
    "format_table",
    "format_report",
    "format_ratio",
]

"""Reporting helpers for the experiment harness: ASCII tables + BENCH JSON.

The paper has no tables of its own, so each experiment prints a small ASCII
table whose rows are the measurements and whose caption restates the paper
claim the experiment illustrates.  These helpers are deliberately dependency
free (no tabulate/rich) so the benchmark output is stable across
environments.

Besides the human-readable reports, every benchmark writes a
**perf-trajectory artifact**: a :class:`BenchReport` serialized as
``BENCH_<NAME>.json`` (schema :data:`BENCH_SCHEMA`), holding medians,
percentiles, speedup ratios and an environment stanza.  One artifact per
benchmark is committed per PR, so the performance history of the repository
is a diffable series of files; ``repro bench-diff`` compares two of them and
flags regressions, and CI validates freshly emitted artifacts against the
schema with :func:`validate_bench_payload`.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from statistics import mean, median
from typing import Iterable, Mapping, Sequence

__all__ = [
    "BENCH_SCHEMA",
    "BenchReport",
    "diff_bench_reports",
    "format_table",
    "format_report",
    "format_ratio",
    "latency_summary",
    "load_bench_report",
    "validate_bench_payload",
]

#: Schema tag every BENCH_*.json artifact carries; bump on breaking reshapes.
BENCH_SCHEMA = "repro-bench-report/v1"

#: Environment variable redirecting where ``BenchReport.write`` puts files.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"

#: Default artifact directory, relative to the working directory.
DEFAULT_BENCH_DIR = os.path.join("benchmarks", "reports")


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a list of rows as an aligned ASCII table."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, value in enumerate(row):
            if index >= len(widths):
                widths.append(len(value))
            else:
                widths[index] = max(widths[index], len(value))

    def line(values: Sequence[str]) -> str:
        padded = [value.ljust(widths[index]) for index, value in enumerate(values)]
        return "| " + " | ".join(padded) + " |"

    separator = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    parts = [separator, line(list(headers)), separator]
    for row in materialized:
        parts.append(line(row))
    parts.append(separator)
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def format_report(title: str, claim: str, headers: Sequence[str], rows: Iterable[Sequence[object]],
                  notes: Sequence[str] = ()) -> str:
    """A full experiment report: title, the paper's claim, the table, optional notes."""
    parts = [f"== {title} ==", f"paper claim: {claim}", format_table(headers, rows)]
    for note in notes:
        parts.append(f"note: {note}")
    return "\n".join(parts)


def format_ratio(numerator: float, denominator: float) -> str:
    """A human-readable speedup/size ratio, guarding against division by zero."""
    if denominator <= 0:
        return "n/a"
    return f"{numerator / denominator:.1f}x"


def summarize_counts(counts: Mapping[str, int]) -> str:
    """Render a `{label: count}` mapping on one line."""
    return ", ".join(f"{label}={count}" for label, count in sorted(counts.items()))


# Perf-trajectory artifacts ------------------------------------------------------


def _percentile(ordered: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, int(round(quantile * (len(ordered) - 1)))))
    return ordered[rank]


def latency_summary(seconds: Sequence[float]) -> dict[str, float | int]:
    """count/mean/min/max/p50/p95/p99 of one latency sample, in seconds."""
    ordered = sorted(float(value) for value in seconds)
    if not ordered:
        return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
    return {
        "count": len(ordered),
        "mean": mean(ordered),
        "min": ordered[0],
        "max": ordered[-1],
        "p50": median(ordered),
        "p95": _percentile(ordered, 0.95),
        "p99": _percentile(ordered, 0.99),
    }


class BenchReport:
    """One benchmark's machine-readable result, written as ``BENCH_<NAME>.json``.

    Benchmarks record two kinds of results: **metrics** (a single number —
    a median speedup, a throughput — with its direction of goodness and the
    threshold the benchmark asserts, so a diff can tell a regression from an
    improvement without re-reading the benchmark) and **latency samples**
    (summarized into count/mean/min/max and p50/p95/p99).  The environment
    stanza pins what machine and mode produced the numbers; trajectory
    comparisons across different machines are indicative, not exact.
    """

    def __init__(self, name: str, title: str, mode: str = "full") -> None:
        if not name or any(ch not in "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-" for ch in name.upper()):
            raise ValueError(f"bench report names must be simple identifiers, got {name!r}")
        self.name = name.upper()
        self.title = title
        self.mode = mode
        self._metrics: dict[str, dict[str, object]] = {}
        self._latencies: dict[str, dict[str, float | int]] = {}
        self._notes: list[str] = []
        self._environment: dict[str, object] = {}

    def metric(
        self,
        name: str,
        value: float,
        unit: str = "",
        higher_is_better: bool = True,
        required: float | None = None,
    ) -> None:
        """Record one scalar result (a speedup ratio, a throughput, a count)."""
        self._metrics[name] = {
            "value": float(value),
            "unit": unit,
            "higher_is_better": bool(higher_is_better),
            "required": None if required is None else float(required),
        }

    def latency(self, name: str, seconds: Sequence[float]) -> None:
        """Record one latency sample, summarized into percentiles."""
        self._latencies[name] = latency_summary(seconds)

    def note(self, text: str) -> None:
        self._notes.append(str(text))

    def environment(self, **entries: object) -> None:
        """Pin extra environment facts next to the machine/mode stanza.

        Benchmarks use this to record configuration that explains the
        numbers — e.g. E20 embeds the batch-size sweep that justified the
        executor's default ``REPRO_BATCH_SIZE``.  Values must be
        JSON-compatible; later calls overwrite earlier keys.
        """
        self._environment.update(entries)

    def payload(self) -> dict:
        """The JSON-compatible artifact body (schema :data:`BENCH_SCHEMA`)."""
        return {
            "schema": BENCH_SCHEMA,
            "name": self.name,
            "title": self.title,
            "mode": self.mode,
            "created_unix": time.time(),
            "environment": {
                "python": platform.python_version(),
                "implementation": platform.python_implementation(),
                "platform": sys.platform,
                "machine": platform.machine(),
                "cpu_count": os.cpu_count() or 0,
                **self._environment,
            },
            "metrics": dict(self._metrics),
            "latencies": dict(self._latencies),
            "notes": list(self._notes),
        }

    def write(self, directory: str | None = None) -> str:
        """Serialize to ``<dir>/BENCH_<NAME>.json``; returns the path written.

        The directory defaults to ``$REPRO_BENCH_DIR`` or
        ``benchmarks/reports`` and is created if missing.
        """
        target = directory or os.environ.get(BENCH_DIR_ENV) or DEFAULT_BENCH_DIR
        os.makedirs(target, exist_ok=True)
        path = os.path.join(target, f"BENCH_{self.name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


def validate_bench_payload(payload: object) -> list[str]:
    """Schema-check one artifact body; returns the list of problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(payload, Mapping):
        return ["artifact body must be a JSON object"]
    if payload.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema must be {BENCH_SCHEMA!r}, got {payload.get('schema')!r}")
    for key in ("name", "title", "mode"):
        if not isinstance(payload.get(key), str) or not payload.get(key):
            problems.append(f"{key!r} must be a nonempty string")
    if not isinstance(payload.get("created_unix"), (int, float)):
        problems.append("'created_unix' must be a number")
    environment = payload.get("environment")
    if not isinstance(environment, Mapping):
        problems.append("'environment' must be an object")
    else:
        for key in ("python", "platform", "cpu_count"):
            if key not in environment:
                problems.append(f"environment is missing {key!r}")
    metrics = payload.get("metrics")
    if not isinstance(metrics, Mapping):
        problems.append("'metrics' must be an object")
    else:
        for name, entry in metrics.items():
            if not isinstance(entry, Mapping):
                problems.append(f"metric {name!r} must be an object")
                continue
            if not isinstance(entry.get("value"), (int, float)):
                problems.append(f"metric {name!r} needs a numeric 'value'")
            if not isinstance(entry.get("higher_is_better"), bool):
                problems.append(f"metric {name!r} needs a boolean 'higher_is_better'")
            required = entry.get("required")
            if required is not None and not isinstance(required, (int, float)):
                problems.append(f"metric {name!r}: 'required' must be a number or null")
    latencies = payload.get("latencies")
    if latencies is not None and not isinstance(latencies, Mapping):
        problems.append("'latencies' must be an object when present")
    elif isinstance(latencies, Mapping):
        for name, entry in latencies.items():
            if not isinstance(entry, Mapping):
                problems.append(f"latency {name!r} must be an object")
                continue
            for key in ("count", "p50", "p95", "p99"):
                if not isinstance(entry.get(key), (int, float)):
                    problems.append(f"latency {name!r} needs numeric {key!r}")
    if isinstance(metrics, Mapping) and isinstance(latencies, Mapping) and not metrics and not latencies:
        problems.append("artifact records no metrics and no latencies")
    return problems


def load_bench_report(path: str) -> dict:
    """Read and validate one BENCH_*.json artifact; raises ``ValueError`` if bad."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ValueError(f"cannot read bench report {path!r}: {error}") from None
    problems = validate_bench_payload(payload)
    if problems:
        raise ValueError(f"invalid bench report {path!r}: " + "; ".join(problems))
    return payload


def diff_bench_reports(old: Mapping, new: Mapping, tolerance: float = 0.10) -> list[dict]:
    """Compare two artifacts metric by metric; flag regressions beyond *tolerance*.

    A metric regresses when it moved against its ``higher_is_better``
    direction by more than ``tolerance`` (relative).  Latency percentiles
    are compared with lower-is-better semantics.  Metrics present in only
    one artifact appear with ``"status": "added"`` / ``"removed"`` so a
    silently dropped benchmark shows up in review.
    """
    rows: list[dict] = []

    def judge(name: str, old_value: float, new_value: float, higher_is_better: bool) -> None:
        if old_value <= 0:
            ratio = float("inf") if new_value > 0 else 1.0
        else:
            ratio = new_value / old_value
        if higher_is_better:
            regressed = ratio < (1.0 - tolerance)
        else:
            regressed = ratio > (1.0 + tolerance)
        rows.append(
            {
                "metric": name,
                "old": old_value,
                "new": new_value,
                "ratio": ratio,
                "higher_is_better": higher_is_better,
                "status": "regression" if regressed else "ok",
            }
        )

    old_metrics = old.get("metrics") if isinstance(old.get("metrics"), Mapping) else {}
    new_metrics = new.get("metrics") if isinstance(new.get("metrics"), Mapping) else {}
    for name in sorted(set(old_metrics) | set(new_metrics)):
        old_entry, new_entry = old_metrics.get(name), new_metrics.get(name)
        if old_entry is None:
            rows.append({"metric": name, "old": None, "new": new_entry.get("value"), "status": "added"})
        elif new_entry is None:
            rows.append({"metric": name, "old": old_entry.get("value"), "new": None, "status": "removed"})
        else:
            judge(
                name,
                float(old_entry.get("value", 0.0)),
                float(new_entry.get("value", 0.0)),
                bool(new_entry.get("higher_is_better", True)),
            )
    old_latencies = old.get("latencies") if isinstance(old.get("latencies"), Mapping) else {}
    new_latencies = new.get("latencies") if isinstance(new.get("latencies"), Mapping) else {}
    for name in sorted(set(old_latencies) & set(new_latencies)):
        for quantile in ("p50", "p95", "p99"):
            old_value = old_latencies[name].get(quantile)
            new_value = new_latencies[name].get(quantile)
            if isinstance(old_value, (int, float)) and isinstance(new_value, (int, float)):
                judge(f"{name}.{quantile}", float(old_value), float(new_value), higher_is_better=False)
    return rows

"""Plain-text reporting helpers for the experiment harness.

The paper has no tables of its own, so each experiment prints a small ASCII
table whose rows are the measurements and whose caption restates the paper
claim the experiment illustrates.  These helpers are deliberately dependency
free (no tabulate/rich) so the benchmark output is stable across
environments.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_report", "format_ratio"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a list of rows as an aligned ASCII table."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, value in enumerate(row):
            if index >= len(widths):
                widths.append(len(value))
            else:
                widths[index] = max(widths[index], len(value))

    def line(values: Sequence[str]) -> str:
        padded = [value.ljust(widths[index]) for index, value in enumerate(values)]
        return "| " + " | ".join(padded) + " |"

    separator = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    parts = [separator, line(list(headers)), separator]
    for row in materialized:
        parts.append(line(row))
    parts.append(separator)
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def format_report(title: str, claim: str, headers: Sequence[str], rows: Iterable[Sequence[object]],
                  notes: Sequence[str] = ()) -> str:
    """A full experiment report: title, the paper's claim, the table, optional notes."""
    parts = [f"== {title} ==", f"paper claim: {claim}", format_table(headers, rows)]
    for note in notes:
        parts.append(f"note: {note}")
    return "\n".join(parts)


def format_ratio(numerator: float, denominator: float) -> str:
    """A human-readable speedup/size ratio, guarding against division by zero."""
    if denominator <= 0:
        return "n/a"
    return f"{numerator / denominator:.1f}x"


def summarize_counts(counts: Mapping[str, int]) -> str:
    """Render a `{label: count}` mapping on one line."""
    return ", ".join(f"{label}={count}" for label, count in sorted(counts.items()))

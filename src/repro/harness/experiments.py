"""Experiment harness: timing, result collection and report generation.

Every benchmark module in ``benchmarks/`` builds an :class:`Experiment`
(an id, the paper claim it reproduces, and a list of measured rows), runs it
and prints the resulting report.  EXPERIMENTS.md is the curated record of
those reports next to the paper's claims.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from statistics import median
from typing import Callable, Sequence

from repro.harness.reporting import format_report

__all__ = [
    "timed",
    "best_of",
    "median",
    "Measurement",
    "Experiment",
    "run_experiment",
    "ThroughputResult",
    "measure_latencies",
    "measure_throughput",
    "measure_parallel_throughput",
]


def timed(function: Callable[[], object]) -> tuple[object, float]:
    """Run *function* once and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = function()
    elapsed = time.perf_counter() - start
    return result, elapsed


def best_of(function: Callable[[], object], repeats: int = 3) -> tuple[object, float]:
    """Run *function* *repeats* times; return its result and the best time.

    Minimum-of-N is the standard way to strip scheduler noise from short
    single-process measurements (the comparison benchmarks use it for both
    contestants, so neither side benefits from the noise filtering).
    """
    if repeats < 1:
        raise ValueError("need at least one repeat")
    result, best = timed(function)
    for __ in range(repeats - 1):
        __result, elapsed = timed(function)
        best = min(best, elapsed)
    return result, best


# ``median`` is re-exported from the standard library (statistics.median);
# benchmark code imports it from here next to best_of/measure_throughput.


@dataclass(frozen=True)
class ThroughputResult:
    """Operations-per-second measurement used by the serving benchmarks."""

    operations: int
    elapsed_seconds: float

    @property
    def per_second(self) -> float:
        return self.operations / self.elapsed_seconds if self.elapsed_seconds else float("inf")

    @property
    def per_operation_seconds(self) -> float:
        return self.elapsed_seconds / self.operations if self.operations else 0.0


def measure_throughput(function: Callable[[], object], operations: int) -> ThroughputResult:
    """Run *function* *operations* times and report aggregate throughput.

    The per-operation path stays as thin as possible (one function call per
    iteration) so sub-millisecond cached operations are still measured
    meaningfully.
    """
    if operations < 1:
        raise ValueError("need at least one operation")
    start = time.perf_counter()
    for __ in range(operations):
        function()
    return ThroughputResult(operations=operations, elapsed_seconds=time.perf_counter() - start)


def measure_latencies(function: Callable[[], object], operations: int) -> list[float]:
    """Per-operation wall times (seconds) of *operations* sequential calls.

    The raw sample feeds :func:`repro.harness.reporting.latency_summary` /
    ``BenchReport.latency`` — percentiles need the distribution, which the
    aggregate-only :func:`measure_throughput` deliberately throws away.
    """
    if operations < 1:
        raise ValueError("need at least one operation")
    perf_counter = time.perf_counter
    samples = []
    for __ in range(operations):
        start = perf_counter()
        function()
        samples.append(perf_counter() - start)
    return samples


def measure_parallel_throughput(
    function: Callable[[int], object],
    operations: int,
    concurrency: int,
) -> ThroughputResult:
    """Aggregate throughput of *operations* calls issued by concurrent clients.

    ``function(i)`` is called once per operation index from a pool of
    *concurrency* client threads.  This is how the cluster benchmarks drive
    a router: each client thread blocks on one in-flight request while the
    worker processes evaluate in parallel, so the measured rate reflects the
    whole serving path rather than one caller's round-trip latency.
    """
    if operations < 1:
        raise ValueError("need at least one operation")
    if concurrency < 1:
        raise ValueError("need at least one client")
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=concurrency, thread_name_prefix="repro-load") as pool:
        start = time.perf_counter()
        for __ in pool.map(function, range(operations)):
            pass
        elapsed = time.perf_counter() - start
    return ThroughputResult(operations=operations, elapsed_seconds=elapsed)


@dataclass(frozen=True)
class Measurement:
    """One row of an experiment's result table."""

    values: tuple[object, ...]


@dataclass
class Experiment:
    """A named experiment: metadata plus collected measurements."""

    experiment_id: str
    title: str
    claim: str
    headers: tuple[str, ...]
    rows: list[Measurement] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"experiment {self.experiment_id}: row has {len(values)} values, expected {len(self.headers)}"
            )
        self.rows.append(Measurement(tuple(values)))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def report(self) -> str:
        return format_report(
            f"{self.experiment_id}: {self.title}",
            self.claim,
            self.headers,
            [measurement.values for measurement in self.rows],
            self.notes,
        )


def run_experiment(
    experiment: Experiment,
    populate: Callable[[Experiment], None],
    echo: bool = True,
) -> Experiment:
    """Populate an experiment's rows via *populate* and (optionally) print the report."""
    populate(experiment)
    if echo:
        print(experiment.report())
    return experiment


def scaling_rows(
    sizes: Sequence[int],
    measure: Callable[[int], dict[str, object]],
) -> list[dict[str, object]]:
    """Run ``measure(size)`` for every size and collect the result dictionaries."""
    return [dict(measure(size), size=size) for size in sizes]

"""Relational vocabularies (Section 2.1 of the paper).

A relational vocabulary ``L`` consists of finitely many constant symbols and
finitely many predicate symbols (each with a fixed arity), including
equality, and no function symbols.  :class:`Vocabulary` captures exactly
that, and offers the checks the rest of the library relies on:

* validating that a formula or query only uses symbols of the vocabulary
  with the right arities;
* extending a vocabulary with new predicates (the ``NE`` relation of
  ``Ph2(LB)``, the primed predicates and ``H`` of the precise simulation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import VocabularyError
from repro.logic.formulas import (
    Atom,
    Equals,
    ExtensionAtom,
    Formula,
    SecondOrderExists,
    SecondOrderForall,
    walk,
)
from repro.logic.terms import Constant, Variable

__all__ = ["Vocabulary", "EQUALITY", "NE_PREDICATE"]

#: Name reserved for the built-in equality predicate.
EQUALITY = "="

#: Name of the inequality relation added by ``Ph2(LB)`` (Sections 3.2 and 5).
NE_PREDICATE = "NE"


@dataclass(frozen=True)
class Vocabulary:
    """A finite relational vocabulary: constants plus predicates with arities.

    Parameters
    ----------
    constants:
        The constant symbols, as strings.  Order is preserved (it matters for
        deterministic enumeration) but duplicates are rejected.
    predicates:
        Mapping from predicate name to arity.  Equality is implicit and must
        not be listed.
    """

    constants: tuple[str, ...]
    predicates: Mapping[str, int] = field(default_factory=dict)

    def __init__(self, constants: Iterable[str] = (), predicates: Mapping[str, int] | None = None) -> None:
        names = tuple(constants)
        seen: set[str] = set()
        for name in names:
            if not isinstance(name, str) or not name:
                raise VocabularyError(f"constant symbols must be non-empty strings, got {name!r}")
            if name in seen:
                raise VocabularyError(f"duplicate constant symbol {name!r}")
            seen.add(name)
        preds = dict(predicates or {})
        for pred, arity in preds.items():
            if not isinstance(pred, str) or not pred:
                raise VocabularyError(f"predicate names must be non-empty strings, got {pred!r}")
            if pred == EQUALITY:
                raise VocabularyError("equality is built in and must not be declared")
            if not isinstance(arity, int) or arity < 1:
                raise VocabularyError(f"predicate {pred!r} must have a positive integer arity, got {arity!r}")
        object.__setattr__(self, "constants", names)
        object.__setattr__(self, "predicates", preds)

    def __hash__(self) -> int:
        # The generated hash would try to hash the predicates dict; hash a
        # canonical immutable view instead so vocabularies can live in sets.
        return hash((self.constants, tuple(sorted(self.predicates.items()))))

    # Mapping-style helpers -------------------------------------------------

    @property
    def constant_set(self) -> frozenset[str]:
        """The constant symbols as a set (written ``C_L`` in the paper)."""
        return frozenset(self.constants)

    def arity(self, predicate: str) -> int:
        """Return the arity of *predicate*; raise if it is not declared."""
        try:
            return self.predicates[predicate]
        except KeyError:
            raise VocabularyError(f"unknown predicate {predicate!r}") from None

    def has_predicate(self, predicate: str) -> bool:
        return predicate in self.predicates

    def has_constant(self, constant: str) -> bool:
        return constant in self.constant_set

    # Derived vocabularies ---------------------------------------------------

    def with_predicates(self, extra: Mapping[str, int]) -> "Vocabulary":
        """Return a copy extended with *extra* predicates.

        Redeclaring an existing predicate with a different arity is an error;
        redeclaring it with the same arity is a no-op.
        """
        merged = dict(self.predicates)
        for pred, arity in extra.items():
            if pred in merged and merged[pred] != arity:
                raise VocabularyError(
                    f"predicate {pred!r} already declared with arity {merged[pred]}, cannot redeclare as {arity}"
                )
            merged[pred] = arity
        return Vocabulary(self.constants, merged)

    def with_constants(self, extra: Iterable[str]) -> "Vocabulary":
        """Return a copy extended with the constant symbols in *extra*."""
        existing = self.constant_set
        added = [name for name in extra if name not in existing]
        return Vocabulary(self.constants + tuple(added), self.predicates)

    def with_ne(self) -> "Vocabulary":
        """Return the vocabulary ``L'`` of Section 3.2: ``L`` plus binary ``NE``."""
        return self.with_predicates({NE_PREDICATE: 2})

    # Validation --------------------------------------------------------------

    def validate_formula(self, formula: Formula, allow_extra_predicates: Iterable[str] = ()) -> None:
        """Check that *formula* only uses symbols declared in this vocabulary.

        Second-order quantified predicates and the names listed in
        *allow_extra_predicates* are exempt from the predicate check (their
        arity is still verified against the quantifier that binds them when
        possible).  Extension atoms are exempt entirely: their meaning is
        supplied by the evaluator, not the vocabulary.
        """
        extra = set(allow_extra_predicates)
        bound_predicates: dict[str, int] = {}
        self._validate(formula, extra, bound_predicates)

    def _validate(self, formula: Formula, extra: set[str], bound: dict[str, int]) -> None:
        if isinstance(formula, (SecondOrderExists, SecondOrderForall)):
            inner = dict(bound)
            inner[formula.predicate] = formula.arity
            self._validate(formula.body, extra, inner)
            return
        if isinstance(formula, ExtensionAtom):
            self._validate_terms(formula.args)
            return
        if isinstance(formula, Atom):
            self._validate_terms(formula.args)
            name = formula.predicate
            if name in bound:
                expected = bound[name]
            elif name in extra:
                expected = None
            elif self.has_predicate(name):
                expected = self.arity(name)
            else:
                raise VocabularyError(f"formula uses undeclared predicate {name!r}")
            if expected is not None and expected != len(formula.args):
                raise VocabularyError(
                    f"predicate {name!r} has arity {expected} but is applied to {len(formula.args)} arguments"
                )
            return
        if isinstance(formula, Equals):
            self._validate_terms((formula.left, formula.right))
            return
        for child in formula.children():
            self._validate(child, extra, bound)

    def _validate_terms(self, terms: Iterable[object]) -> None:
        for term in terms:
            if isinstance(term, Constant) and not self.has_constant(term.name):
                raise VocabularyError(f"formula uses undeclared constant {term.name!r}")
            if not isinstance(term, (Constant, Variable)):
                raise VocabularyError(f"not a term: {term!r}")

    def predicates_used(self, formula: Formula) -> frozenset[str]:
        """Return the names of the (free, non-equality) predicates in *formula*."""
        bound: set[str] = set()
        used: set[str] = set()
        for node in walk(formula):
            if isinstance(node, (SecondOrderExists, SecondOrderForall)):
                bound.add(node.predicate)
            elif isinstance(node, Atom) and not isinstance(node, ExtensionAtom):
                used.add(node.predicate)
        return frozenset(used - bound)

"""First- and second-order logic substrate.

Public surface of the logic layer: terms, formulas, vocabularies, queries,
the parser/printer pair and the standard transformations.  Everything the
higher layers (physical databases, CW logical databases, the approximation
algorithm, the complexity reductions) need is re-exported here.
"""

from repro.logic.analysis import (
    PrefixClass,
    all_variables,
    constants_in,
    first_order_prefix_class,
    free_variables,
    is_first_order,
    is_positive,
    is_quantifier_free,
    is_sentence,
    predicates_in,
    quantifier_rank,
    second_order_prefix_class,
)
from repro.logic.builders import C, Eq, Neq, Pred, V, vars_
from repro.logic.formulas import (
    And,
    Atom,
    BOTTOM,
    Bottom,
    Equals,
    Exists,
    ExtensionAtom,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    SecondOrderExists,
    SecondOrderForall,
    TOP,
    Top,
    conjoin,
    disjoin,
    exists,
    forall,
    walk,
)
from repro.logic.parser import parse_formula, parse_query, parse_term
from repro.logic.printer import query_to_text, term_to_text, to_text
from repro.logic.queries import FALSE_ANSWER, Query, TRUE_ANSWER, boolean_query
from repro.logic.template import bind_formula, bind_query, has_parameters, query_parameters
from repro.logic.terms import Constant, Parameter, Term, Variable, fresh_variable
from repro.logic.transform import (
    eliminate_implications,
    prenex_normal_form,
    rename_predicate,
    simplify,
    standardize_apart,
    substitute,
    to_nnf,
)
from repro.logic.vocabulary import EQUALITY, NE_PREDICATE, Vocabulary

__all__ = [
    "Parameter",
    "bind_formula",
    "bind_query",
    "has_parameters",
    "query_parameters",
    # terms
    "Variable",
    "Constant",
    "Term",
    "fresh_variable",
    # formulas
    "Formula",
    "Atom",
    "Equals",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Exists",
    "Forall",
    "SecondOrderExists",
    "SecondOrderForall",
    "ExtensionAtom",
    "Top",
    "Bottom",
    "TOP",
    "BOTTOM",
    "conjoin",
    "disjoin",
    "exists",
    "forall",
    "walk",
    # vocabulary
    "Vocabulary",
    "EQUALITY",
    "NE_PREDICATE",
    # queries
    "Query",
    "boolean_query",
    "TRUE_ANSWER",
    "FALSE_ANSWER",
    # analysis
    "free_variables",
    "all_variables",
    "constants_in",
    "predicates_in",
    "is_sentence",
    "is_first_order",
    "is_quantifier_free",
    "is_positive",
    "quantifier_rank",
    "PrefixClass",
    "first_order_prefix_class",
    "second_order_prefix_class",
    # transforms
    "substitute",
    "rename_predicate",
    "eliminate_implications",
    "to_nnf",
    "simplify",
    "standardize_apart",
    "prenex_normal_form",
    # parser / printer
    "parse_formula",
    "parse_query",
    "parse_term",
    "to_text",
    "query_to_text",
    "term_to_text",
    # builders
    "V",
    "C",
    "Pred",
    "Eq",
    "Neq",
    "vars_",
]

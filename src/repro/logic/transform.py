"""Formula transformations.

The approximation algorithm of Section 5 begins by "pushing, in the standard
way, all negations in Q down to the atomic formulas"; the simulation of
Section 3.2 and the reductions of Section 4 need substitution of terms and
of predicate names.  This module implements those transformations:

* :func:`substitute` — capture-avoiding substitution of terms for variables;
* :func:`rename_predicate` — replace a predicate name throughout a formula
  (used to build the primed formula ``phi'`` of Section 3.2);
* :func:`eliminate_implications` — rewrite ``->`` and ``<->`` using
  ``not/and/or``;
* :func:`to_nnf` — negation normal form (negations only on atoms);
* :func:`simplify` — constant folding of ``TOP``/``BOTTOM``;
* :func:`standardize_apart` — give every quantifier a fresh variable name;
* :func:`prenex_normal_form` — pull first-order quantifiers to the front.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import FormulaError, UnsupportedFormulaError
from repro.logic.analysis import all_variables, free_variables
from repro.logic.formulas import (
    And,
    Atom,
    Bottom,
    BOTTOM,
    Equals,
    Exists,
    ExtensionAtom,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    SecondOrderExists,
    SecondOrderForall,
    TOP,
    Top,
    conjoin,
    disjoin,
)
from repro.logic.terms import Term, Variable, fresh_variable

__all__ = [
    "substitute",
    "replace_constants",
    "rename_predicate",
    "eliminate_implications",
    "to_nnf",
    "simplify",
    "standardize_apart",
    "prenex_normal_form",
]


def substitute(formula: Formula, mapping: Mapping[Variable, Term]) -> Formula:
    """Replace free occurrences of variables according to *mapping*.

    The substitution is capture avoiding: when a quantifier binds a variable
    that occurs in one of the substituted terms, the bound variable is
    renamed to a fresh name first.
    """
    if not mapping:
        return formula
    return _substitute(formula, dict(mapping))


def _substitute_term(term: Term, mapping: Mapping[Variable, Term]) -> Term:
    if isinstance(term, Variable) and term in mapping:
        return mapping[term]
    return term


def _substitute(formula: Formula, mapping: dict[Variable, Term]) -> Formula:
    if isinstance(formula, ExtensionAtom):
        return formula.with_args(tuple(_substitute_term(t, mapping) for t in formula.args))
    if isinstance(formula, Atom):
        return Atom(formula.predicate, tuple(_substitute_term(t, mapping) for t in formula.args))
    if isinstance(formula, Equals):
        return Equals(_substitute_term(formula.left, mapping), _substitute_term(formula.right, mapping))
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(_substitute(formula.operand, mapping))
    if isinstance(formula, And):
        return And(tuple(_substitute(op, mapping) for op in formula.operands))
    if isinstance(formula, Or):
        return Or(tuple(_substitute(op, mapping) for op in formula.operands))
    if isinstance(formula, Implies):
        return Implies(_substitute(formula.antecedent, mapping), _substitute(formula.consequent, mapping))
    if isinstance(formula, Iff):
        return Iff(_substitute(formula.left, mapping), _substitute(formula.right, mapping))
    if isinstance(formula, (Exists, Forall)):
        return _substitute_quantifier(formula, mapping)
    if isinstance(formula, (SecondOrderExists, SecondOrderForall)):
        cls = type(formula)
        return cls(formula.predicate, formula.arity, _substitute(formula.body, mapping))
    raise FormulaError(f"unknown formula node: {formula!r}")


def _substitute_quantifier(formula: Exists | Forall, mapping: dict[Variable, Term]) -> Formula:
    cls = type(formula)
    # Drop substitutions shadowed by the quantifier.
    inner = {var: term for var, term in mapping.items() if var not in formula.variables}
    if not inner:
        return formula
    # Rename bound variables that would capture a substituted term.
    term_vars: set[str] = set()
    for term in inner.values():
        if isinstance(term, Variable):
            term_vars.add(term.name)
    body = formula.body
    new_bound: list[Variable] = []
    renaming: dict[Variable, Term] = {}
    avoid = {v.name for v in all_variables(body)} | term_vars | {v.name for v in inner}
    for bound_var in formula.variables:
        if bound_var.name in term_vars:
            replacement = fresh_variable(avoid, bound_var.name)
            avoid.add(replacement.name)
            renaming[bound_var] = replacement
            new_bound.append(replacement)
        else:
            new_bound.append(bound_var)
    if renaming:
        body = _substitute(body, renaming)
    return cls(tuple(new_bound), _substitute(body, inner))


def replace_constants(formula: Formula, mapping: Mapping[str, Term]) -> Formula:
    """Replace occurrences of constant symbols (by name) with arbitrary terms.

    Used by the precise simulation of Section 3.2, which must route the
    constants mentioned by a query through the mapping relation ``H`` just
    like the answer variables.  If a replacement term is a variable that some
    quantifier in the formula binds, that quantifier's variable is renamed
    first (capture avoidance), by way of :func:`standardize_apart`.
    """
    if not mapping:
        return formula
    replacement_names = {term.name for term in mapping.values() if isinstance(term, Variable)}
    from repro.logic.analysis import all_variables

    if replacement_names & {variable.name for variable in all_variables(formula)}:
        formula = standardize_apart(formula, set(replacement_names))
    return _replace_constants(formula, dict(mapping))


def _replace_constants(formula: Formula, mapping: dict[str, Term]) -> Formula:
    from repro.logic.terms import Constant

    def convert(term: Term) -> Term:
        if isinstance(term, Constant) and term.name in mapping:
            return mapping[term.name]
        return term

    if isinstance(formula, ExtensionAtom):
        return formula.with_args(tuple(convert(t) for t in formula.args))
    if isinstance(formula, Atom):
        return Atom(formula.predicate, tuple(convert(t) for t in formula.args))
    if isinstance(formula, Equals):
        return Equals(convert(formula.left), convert(formula.right))
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(_replace_constants(formula.operand, mapping))
    if isinstance(formula, And):
        return And(tuple(_replace_constants(op, mapping) for op in formula.operands))
    if isinstance(formula, Or):
        return Or(tuple(_replace_constants(op, mapping) for op in formula.operands))
    if isinstance(formula, Implies):
        return Implies(
            _replace_constants(formula.antecedent, mapping), _replace_constants(formula.consequent, mapping)
        )
    if isinstance(formula, Iff):
        return Iff(_replace_constants(formula.left, mapping), _replace_constants(formula.right, mapping))
    if isinstance(formula, (Exists, Forall)):
        return type(formula)(formula.variables, _replace_constants(formula.body, mapping))
    if isinstance(formula, (SecondOrderExists, SecondOrderForall)):
        return type(formula)(formula.predicate, formula.arity, _replace_constants(formula.body, mapping))
    raise FormulaError(f"unknown formula node: {formula!r}")


def rename_predicate(formula: Formula, renaming: Mapping[str, str]) -> Formula:
    """Replace predicate names of atoms according to *renaming*.

    Second-order quantifiers shadow the renaming for their bound predicate.
    Extension atoms are left untouched (their predicate is semantic, not a
    vocabulary symbol).
    """
    if not renaming:
        return formula
    return _rename_predicate(formula, dict(renaming))


def _rename_predicate(formula: Formula, renaming: dict[str, str]) -> Formula:
    if isinstance(formula, ExtensionAtom):
        return formula
    if isinstance(formula, Atom):
        return Atom(renaming.get(formula.predicate, formula.predicate), formula.args)
    if isinstance(formula, (Equals, Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(_rename_predicate(formula.operand, renaming))
    if isinstance(formula, And):
        return And(tuple(_rename_predicate(op, renaming) for op in formula.operands))
    if isinstance(formula, Or):
        return Or(tuple(_rename_predicate(op, renaming) for op in formula.operands))
    if isinstance(formula, Implies):
        return Implies(
            _rename_predicate(formula.antecedent, renaming), _rename_predicate(formula.consequent, renaming)
        )
    if isinstance(formula, Iff):
        return Iff(_rename_predicate(formula.left, renaming), _rename_predicate(formula.right, renaming))
    if isinstance(formula, (Exists, Forall)):
        return type(formula)(formula.variables, _rename_predicate(formula.body, renaming))
    if isinstance(formula, (SecondOrderExists, SecondOrderForall)):
        inner = {old: new for old, new in renaming.items() if old != formula.predicate}
        return type(formula)(formula.predicate, formula.arity, _rename_predicate(formula.body, inner))
    raise FormulaError(f"unknown formula node: {formula!r}")


def eliminate_implications(formula: Formula) -> Formula:
    """Rewrite implications and bi-implications in terms of not/and/or."""
    if isinstance(formula, (Atom, Equals, ExtensionAtom, Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(eliminate_implications(formula.operand))
    if isinstance(formula, And):
        return And(tuple(eliminate_implications(op) for op in formula.operands))
    if isinstance(formula, Or):
        return Or(tuple(eliminate_implications(op) for op in formula.operands))
    if isinstance(formula, Implies):
        return Or((Not(eliminate_implications(formula.antecedent)), eliminate_implications(formula.consequent)))
    if isinstance(formula, Iff):
        left = eliminate_implications(formula.left)
        right = eliminate_implications(formula.right)
        return And((Or((Not(left), right)), Or((Not(right), left))))
    if isinstance(formula, (Exists, Forall)):
        return type(formula)(formula.variables, eliminate_implications(formula.body))
    if isinstance(formula, (SecondOrderExists, SecondOrderForall)):
        return type(formula)(formula.predicate, formula.arity, eliminate_implications(formula.body))
    raise FormulaError(f"unknown formula node: {formula!r}")


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form: negations occur only directly on atomic formulas.

    Implications and bi-implications are eliminated first.  Double negations
    are removed; De Morgan's laws and the quantifier dualities (including the
    second-order ones, needed by Theorem 11's induction) push negation
    inward.
    """
    return _nnf(eliminate_implications(formula), negated=False)


def _nnf(formula: Formula, negated: bool) -> Formula:
    if isinstance(formula, (Atom, Equals, ExtensionAtom)):
        return Not(formula) if negated else formula
    if isinstance(formula, Top):
        return BOTTOM if negated else TOP
    if isinstance(formula, Bottom):
        return TOP if negated else BOTTOM
    if isinstance(formula, Not):
        return _nnf(formula.operand, not negated)
    if isinstance(formula, And):
        parts = tuple(_nnf(op, negated) for op in formula.operands)
        return Or(parts) if negated else And(parts)
    if isinstance(formula, Or):
        parts = tuple(_nnf(op, negated) for op in formula.operands)
        return And(parts) if negated else Or(parts)
    if isinstance(formula, Exists):
        body = _nnf(formula.body, negated)
        return Forall(formula.variables, body) if negated else Exists(formula.variables, body)
    if isinstance(formula, Forall):
        body = _nnf(formula.body, negated)
        return Exists(formula.variables, body) if negated else Forall(formula.variables, body)
    if isinstance(formula, SecondOrderExists):
        body = _nnf(formula.body, negated)
        if negated:
            return SecondOrderForall(formula.predicate, formula.arity, body)
        return SecondOrderExists(formula.predicate, formula.arity, body)
    if isinstance(formula, SecondOrderForall):
        body = _nnf(formula.body, negated)
        if negated:
            return SecondOrderExists(formula.predicate, formula.arity, body)
        return SecondOrderForall(formula.predicate, formula.arity, body)
    raise FormulaError(f"unknown formula node: {formula!r}")


def simplify(formula: Formula) -> Formula:
    """Fold TOP/BOTTOM constants and flatten nested conjunctions/disjunctions.

    The result is logically equivalent to the input.  Only cheap, purely
    syntactic simplifications are applied; no satisfiability reasoning.
    """
    if isinstance(formula, (Atom, Equals, ExtensionAtom, Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        inner = simplify(formula.operand)
        if isinstance(inner, Top):
            return BOTTOM
        if isinstance(inner, Bottom):
            return TOP
        if isinstance(inner, Not):
            return inner.operand
        return Not(inner)
    if isinstance(formula, And):
        flattened: list[Formula] = []
        for operand in formula.operands:
            part = simplify(operand)
            if isinstance(part, Bottom):
                return BOTTOM
            if isinstance(part, Top):
                continue
            if isinstance(part, And):
                flattened.extend(part.operands)
            else:
                flattened.append(part)
        return conjoin(flattened)
    if isinstance(formula, Or):
        flattened = []
        for operand in formula.operands:
            part = simplify(operand)
            if isinstance(part, Top):
                return TOP
            if isinstance(part, Bottom):
                continue
            if isinstance(part, Or):
                flattened.extend(part.operands)
            else:
                flattened.append(part)
        return disjoin(flattened)
    if isinstance(formula, Implies):
        antecedent = simplify(formula.antecedent)
        consequent = simplify(formula.consequent)
        if isinstance(antecedent, Bottom) or isinstance(consequent, Top):
            return TOP
        if isinstance(antecedent, Top):
            return consequent
        if isinstance(consequent, Bottom):
            return simplify(Not(antecedent))
        return Implies(antecedent, consequent)
    if isinstance(formula, Iff):
        return Iff(simplify(formula.left), simplify(formula.right))
    if isinstance(formula, (Exists, Forall)):
        body = simplify(formula.body)
        if isinstance(body, (Top, Bottom)):
            return body
        return type(formula)(formula.variables, body)
    if isinstance(formula, (SecondOrderExists, SecondOrderForall)):
        body = simplify(formula.body)
        if isinstance(body, (Top, Bottom)):
            return body
        return type(formula)(formula.predicate, formula.arity, body)
    raise FormulaError(f"unknown formula node: {formula!r}")


def standardize_apart(formula: Formula, avoid: set[str] | None = None) -> Formula:
    """Rename bound variables so that every quantifier binds a distinct name.

    Names listed in *avoid* (and the free variables of the formula) are never
    used for the renamed bound variables.
    """
    used = set(avoid or set())
    used |= {v.name for v in free_variables(formula)}
    return _standardize(formula, {}, used)


def _standardize(formula: Formula, renaming: dict[Variable, Term], used: set[str]) -> Formula:
    if isinstance(formula, (Atom, Equals, ExtensionAtom, Top, Bottom)):
        return _substitute(formula, renaming) if renaming else formula
    if isinstance(formula, Not):
        return Not(_standardize(formula.operand, renaming, used))
    if isinstance(formula, And):
        return And(tuple(_standardize(op, renaming, used) for op in formula.operands))
    if isinstance(formula, Or):
        return Or(tuple(_standardize(op, renaming, used) for op in formula.operands))
    if isinstance(formula, Implies):
        return Implies(
            _standardize(formula.antecedent, renaming, used), _standardize(formula.consequent, renaming, used)
        )
    if isinstance(formula, Iff):
        return Iff(_standardize(formula.left, renaming, used), _standardize(formula.right, renaming, used))
    if isinstance(formula, (Exists, Forall)):
        new_renaming = dict(renaming)
        new_vars: list[Variable] = []
        for var in formula.variables:
            if var.name in used:
                replacement = fresh_variable(used, var.name)
            else:
                replacement = var
            used.add(replacement.name)
            new_renaming[var] = replacement
            new_vars.append(replacement)
        return type(formula)(tuple(new_vars), _standardize(formula.body, new_renaming, used))
    if isinstance(formula, (SecondOrderExists, SecondOrderForall)):
        return type(formula)(formula.predicate, formula.arity, _standardize(formula.body, renaming, used))
    raise FormulaError(f"unknown formula node: {formula!r}")


def prenex_normal_form(formula: Formula) -> Formula:
    """Pull all first-order quantifiers to the front of the formula.

    The input must be first-order (second-order quantifiers are not moved
    and cause :class:`UnsupportedFormulaError`).  Implications are
    eliminated and bound variables standardized apart first, so the familiar
    prenexing rules apply without capture.
    """
    from repro.logic.analysis import is_first_order

    if not is_first_order(formula):
        raise UnsupportedFormulaError("prenex_normal_form only supports first-order formulas")
    prepared = standardize_apart(to_nnf(formula))
    prefix, matrix = _extract_prefix(prepared)
    result = matrix
    for kind, variables in reversed(prefix):
        result = kind(variables, result)
    return result


def _extract_prefix(formula: Formula) -> tuple[list[tuple[type, tuple[Variable, ...]]], Formula]:
    if isinstance(formula, (Exists, Forall)):
        inner_prefix, matrix = _extract_prefix(formula.body)
        return [(type(formula), formula.variables)] + inner_prefix, matrix
    if isinstance(formula, (And, Or)):
        prefix: list[tuple[type, tuple[Variable, ...]]] = []
        matrices: list[Formula] = []
        for operand in formula.operands:
            op_prefix, op_matrix = _extract_prefix(operand)
            prefix.extend(op_prefix)
            matrices.append(op_matrix)
        return prefix, type(formula)(tuple(matrices))
    if isinstance(formula, Not):
        # After NNF the operand is atomic, so there is nothing to extract.
        return [], formula
    return [], formula

"""Pretty-printer for formulas and queries.

The textual syntax is the one accepted by :mod:`repro.logic.parser`, so
``parse_formula(to_text(phi))`` round-trips structurally (modulo redundant
parentheses).  Grammar sketch::

    forall x y. exists z. (EMP_DEPT(x, z) & DEPT_MGR(z, y)) -> ~(x = y)
    exists2 P/1. forall x. P(x) | ~M(x)

Variables are bare lower-case identifiers, constants are single-quoted
strings, predicates are identifiers applied to parenthesized arguments.
"""

from __future__ import annotations

from repro.errors import FormulaError
from repro.logic.formulas import (
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ExtensionAtom,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    SecondOrderExists,
    SecondOrderForall,
    Top,
)
from repro.logic.queries import Query
from repro.logic.terms import Constant, Parameter, Term, Variable

__all__ = ["to_text", "query_to_text", "term_to_text"]

# Binding strength, loosest first.  Quantifiers bind their whole scope.
_PRECEDENCE = {
    "iff": 1,
    "implies": 2,
    "or": 3,
    "and": 4,
    "not": 5,
    "atom": 6,
}


def term_to_text(term: Term) -> str:
    """Render a term: variables bare, constants single-quoted, parameters ``$name``."""
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, Parameter):
        return f"${term.name}"
    if isinstance(term, Constant):
        escaped = term.name.replace("'", "\\'")
        return f"'{escaped}'"
    raise FormulaError(f"not a term: {term!r}")


def to_text(formula: Formula) -> str:
    """Render *formula* in the concrete query-language syntax."""
    return _render(formula, parent_level=0)


def query_to_text(query: Query) -> str:
    """Render a query as ``(x, y) . formula``."""
    head = ", ".join(v.name for v in query.head)
    return f"({head}) . {to_text(query.formula)}"


def _parenthesize(text: str, level: int, parent_level: int) -> str:
    return f"({text})" if level < parent_level else text


def _render(formula: Formula, parent_level: int) -> str:
    if isinstance(formula, Top):
        return "true"
    if isinstance(formula, Bottom):
        return "false"
    if isinstance(formula, ExtensionAtom):
        args = ", ".join(term_to_text(t) for t in formula.args)
        return f"<{type(formula).__name__}>({args})"
    if isinstance(formula, Atom):
        args = ", ".join(term_to_text(t) for t in formula.args)
        return f"{formula.predicate}({args})"
    if isinstance(formula, Equals):
        text = f"{term_to_text(formula.left)} = {term_to_text(formula.right)}"
        return _parenthesize(text, _PRECEDENCE["atom"] - 1, parent_level)
    if isinstance(formula, Not):
        inner = _render(formula.operand, _PRECEDENCE["not"])
        return f"~{inner}"
    if isinstance(formula, And):
        level = _PRECEDENCE["and"]
        text = " & ".join(_render(op, level + 1) for op in formula.operands)
        return _parenthesize(text, level, parent_level)
    if isinstance(formula, Or):
        level = _PRECEDENCE["or"]
        text = " | ".join(_render(op, level + 1) for op in formula.operands)
        return _parenthesize(text, level, parent_level)
    if isinstance(formula, Implies):
        level = _PRECEDENCE["implies"]
        text = f"{_render(formula.antecedent, level + 1)} -> {_render(formula.consequent, level)}"
        return _parenthesize(text, level, parent_level)
    if isinstance(formula, Iff):
        level = _PRECEDENCE["iff"]
        text = f"{_render(formula.left, level + 1)} <-> {_render(formula.right, level + 1)}"
        return _parenthesize(text, level, parent_level)
    if isinstance(formula, (Exists, Forall)):
        keyword = "exists" if isinstance(formula, Exists) else "forall"
        names = " ".join(v.name for v in formula.variables)
        text = f"{keyword} {names}. {_render(formula.body, 1)}"
        return _parenthesize(text, 1, parent_level)
    if isinstance(formula, (SecondOrderExists, SecondOrderForall)):
        keyword = "exists2" if isinstance(formula, SecondOrderExists) else "forall2"
        text = f"{keyword} {formula.predicate}/{formula.arity}. {_render(formula.body, 1)}"
        return _parenthesize(text, 1, parent_level)
    raise FormulaError(f"unknown formula node: {formula!r}")

"""Formula abstract syntax for first- and second-order relational queries.

The paper's queries are expressions ``(x) . phi(x)`` where ``phi`` is a
formula over a relational vocabulary (Section 2.1).  This module defines the
immutable AST used everywhere in the library:

* atomic formulas: :class:`Atom` (a predicate applied to terms) and
  :class:`Equals`;
* the propositional connectives :class:`Not`, :class:`And`, :class:`Or`,
  :class:`Implies`, :class:`Iff`, plus the constants :data:`TOP` and
  :data:`BOTTOM`;
* first-order quantifiers :class:`Exists` and :class:`Forall`, each binding
  one or more variables;
* second-order quantifiers :class:`SecondOrderExists` and
  :class:`SecondOrderForall`, binding a predicate symbol of a fixed arity —
  these are required by the precise simulation of Section 3.2 and by the
  Sigma^k_2 query classes of Theorem 8/9;
* :class:`ExtensionAtom`, an extension point that lets higher layers define
  atoms with bespoke evaluation rules (the approximation algorithm's
  ``alpha_P`` atoms of Lemma 10 are the main client).

Every node is a frozen dataclass: formulas are hashable values and can be
compared structurally, shared freely and used as dictionary keys.  All
connectives are also available through operators (``&``, ``|``, ``~``,
``>>`` for implication) so that tests and examples read naturally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, TYPE_CHECKING

from repro.errors import FormulaError
from repro.logic.terms import Constant, Term, Variable, is_term

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.physical.database import PhysicalDatabase

__all__ = [
    "Formula",
    "Atom",
    "Equals",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Exists",
    "Forall",
    "SecondOrderExists",
    "SecondOrderForall",
    "ExtensionAtom",
    "Top",
    "Bottom",
    "TOP",
    "BOTTOM",
    "conjoin",
    "disjoin",
    "exists",
    "forall",
    "walk",
]


class Formula:
    """Common base class of all formula nodes.

    The class itself carries no data; it provides operator overloads and a
    small amount of shared behaviour.  Construct concrete subclasses
    directly, or use the helpers :func:`conjoin`, :func:`disjoin`,
    :func:`exists` and :func:`forall`.
    """

    __slots__ = ()

    def __and__(self, other: "Formula") -> "And":
        _require_formula(other)
        return And((self, other))

    def __or__(self, other: "Formula") -> "Or":
        _require_formula(other)
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Implies":
        _require_formula(other)
        return Implies(self, other)

    def children(self) -> tuple["Formula", ...]:
        """Return the immediate sub-formulas of this node (empty for atoms)."""
        return ()


def _require_formula(value: object) -> None:
    if not isinstance(value, Formula):
        raise FormulaError(f"expected a Formula, got {value!r}")


def _require_terms(args: Iterable[object]) -> tuple[Term, ...]:
    terms = tuple(args)
    for arg in terms:
        if not is_term(arg):
            raise FormulaError(f"expected a term (Variable or Constant), got {arg!r}")
    return terms  # type: ignore[return-value]


@dataclass(frozen=True, slots=True)
class Atom(Formula):
    """A predicate symbol applied to terms, e.g. ``TEACHES(Socrates, x)``."""

    predicate: str
    args: tuple[Term, ...]

    def __init__(self, predicate: str, args: Iterable[Term] = ()) -> None:
        if not predicate or not isinstance(predicate, str):
            raise FormulaError(f"predicate name must be a non-empty string, got {predicate!r}")
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "args", _require_terms(args))

    @property
    def arity(self) -> int:
        return len(self.args)


@dataclass(frozen=True, slots=True)
class Equals(Formula):
    """The built-in equality atom ``left = right``."""

    left: Term
    right: Term

    def __init__(self, left: Term, right: Term) -> None:
        (checked_left, checked_right) = _require_terms((left, right))
        object.__setattr__(self, "left", checked_left)
        object.__setattr__(self, "right", checked_right)


@dataclass(frozen=True, slots=True)
class Not(Formula):
    """Negation."""

    operand: Formula

    def __init__(self, operand: Formula) -> None:
        _require_formula(operand)
        object.__setattr__(self, "operand", operand)

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)


class _NaryConnective(Formula):
    """Shared implementation of the n-ary connectives ``And`` and ``Or``."""

    __slots__ = ()

    def __init__(self, operands: Iterable[Formula]) -> None:
        ops = tuple(operands)
        if len(ops) < 2:
            raise FormulaError(
                f"{type(self).__name__} needs at least two operands, got {len(ops)}; "
                "use conjoin()/disjoin() to build from arbitrary-length sequences"
            )
        for op in ops:
            _require_formula(op)
        object.__setattr__(self, "operands", ops)

    def children(self) -> tuple[Formula, ...]:
        return self.operands  # type: ignore[attr-defined]


@dataclass(frozen=True, slots=True, init=False)
class And(_NaryConnective):
    """Conjunction of two or more formulas."""

    operands: tuple[Formula, ...]


@dataclass(frozen=True, slots=True, init=False)
class Or(_NaryConnective):
    """Disjunction of two or more formulas."""

    operands: tuple[Formula, ...]


@dataclass(frozen=True, slots=True)
class Implies(Formula):
    """Material implication ``antecedent -> consequent``."""

    antecedent: Formula
    consequent: Formula

    def __init__(self, antecedent: Formula, consequent: Formula) -> None:
        _require_formula(antecedent)
        _require_formula(consequent)
        object.__setattr__(self, "antecedent", antecedent)
        object.__setattr__(self, "consequent", consequent)

    def children(self) -> tuple[Formula, ...]:
        return (self.antecedent, self.consequent)


@dataclass(frozen=True, slots=True)
class Iff(Formula):
    """Bi-implication ``left <-> right``."""

    left: Formula
    right: Formula

    def __init__(self, left: Formula, right: Formula) -> None:
        _require_formula(left)
        _require_formula(right)
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)


class _Quantifier(Formula):
    """Shared implementation of the first-order quantifiers."""

    __slots__ = ()

    def __init__(self, variables: Iterable[Variable], body: Formula) -> None:
        bound = tuple(variables)
        if not bound:
            raise FormulaError(f"{type(self).__name__} must bind at least one variable")
        for var in bound:
            if not isinstance(var, Variable):
                raise FormulaError(f"quantifiers bind Variables, got {var!r}")
        if len({v.name for v in bound}) != len(bound):
            raise FormulaError(f"duplicate bound variable in {type(self).__name__}: {bound}")
        _require_formula(body)
        object.__setattr__(self, "variables", bound)
        object.__setattr__(self, "body", body)

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)  # type: ignore[attr-defined]


@dataclass(frozen=True, slots=True, init=False)
class Exists(_Quantifier):
    """First-order existential quantification over one or more variables."""

    variables: tuple[Variable, ...]
    body: Formula


@dataclass(frozen=True, slots=True, init=False)
class Forall(_Quantifier):
    """First-order universal quantification over one or more variables."""

    variables: tuple[Variable, ...]
    body: Formula


class _SecondOrderQuantifier(Formula):
    """Shared implementation of the second-order quantifiers."""

    __slots__ = ()

    def __init__(self, predicate: str, arity: int, body: Formula) -> None:
        if not predicate or not isinstance(predicate, str):
            raise FormulaError(f"predicate name must be a non-empty string, got {predicate!r}")
        if not isinstance(arity, int) or arity < 1:
            raise FormulaError(f"second-order quantifier arity must be a positive int, got {arity!r}")
        _require_formula(body)
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "arity", arity)
        object.__setattr__(self, "body", body)

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)  # type: ignore[attr-defined]


@dataclass(frozen=True, slots=True, init=False)
class SecondOrderExists(_SecondOrderQuantifier):
    """Existential quantification over a predicate of a fixed arity."""

    predicate: str
    arity: int
    body: Formula


@dataclass(frozen=True, slots=True, init=False)
class SecondOrderForall(_SecondOrderQuantifier):
    """Universal quantification over a predicate of a fixed arity."""

    predicate: str
    arity: int
    body: Formula


@dataclass(frozen=True, slots=True)
class Top(Formula):
    """The always-true formula (empty conjunction)."""


@dataclass(frozen=True, slots=True)
class Bottom(Formula):
    """The always-false formula (empty disjunction)."""


TOP = Top()
BOTTOM = Bottom()


class ExtensionAtom(Formula):
    """Base class for atoms whose satisfaction is computed by custom code.

    The Tarskian evaluator (:mod:`repro.physical.evaluator`) treats any
    subclass of this node as an atomic formula and delegates its truth value
    to :meth:`holds`.  Subclasses must behave like atoms: expose ``args``
    (a tuple of terms) so substitution and free-variable analysis work, and
    be immutable/hashable.

    The approximation algorithm's ``alpha_P`` atoms (Lemma 10) are the
    canonical subclass: they test that a tuple *provably* does not belong to
    a stored relation, given the inequality relation ``NE``.
    """

    __slots__ = ()

    #: tuple of terms; subclasses must define this attribute.
    args: tuple[Term, ...]

    def holds(self, database: "PhysicalDatabase", values: tuple[object, ...]) -> bool:
        """Return the truth value of the atom for already-evaluated arguments.

        ``values`` contains the domain elements the atom's terms evaluate to
        under the current variable assignment, in the same order as
        ``self.args``.
        """
        raise NotImplementedError

    def holds_with(
        self,
        database: "PhysicalDatabase",
        values: tuple[object, ...],
        relation_overrides: dict[str, frozenset[tuple]],
    ) -> bool:
        """Truth value when some predicates are bound by second-order quantifiers.

        ``relation_overrides`` maps predicate names currently bound by an
        enclosing second-order quantifier to their candidate relations.  The
        default ignores the overrides; subclasses that read stored relations
        (like the ``alpha_P`` atoms) override this so that a quantified
        predicate is read from the candidate relation instead of the database
        — this is what makes the approximation's treatment of second-order
        quantification (Theorem 11's induction case) work.
        """
        return self.holds(database, values)

    def with_args(self, args: tuple[Term, ...]) -> "ExtensionAtom":
        """Return a copy of the atom with its argument terms replaced."""
        raise NotImplementedError


def conjoin(formulas: Iterable[Formula]) -> Formula:
    """Conjunction of an arbitrary number of formulas.

    The empty conjunction is :data:`TOP`; a single formula is returned
    unchanged; otherwise an :class:`And` node is produced.
    """
    items = tuple(formulas)
    if not items:
        return TOP
    if len(items) == 1:
        return items[0]
    return And(items)


def disjoin(formulas: Iterable[Formula]) -> Formula:
    """Disjunction of an arbitrary number of formulas (empty = :data:`BOTTOM`)."""
    items = tuple(formulas)
    if not items:
        return BOTTOM
    if len(items) == 1:
        return items[0]
    return Or(items)


def exists(variables: Iterable[Variable], body: Formula) -> Formula:
    """Existentially quantify *variables* over *body* (no-op for empty list)."""
    bound = tuple(variables)
    if not bound:
        return body
    return Exists(bound, body)


def forall(variables: Iterable[Variable], body: Formula) -> Formula:
    """Universally quantify *variables* over *body* (no-op for empty list)."""
    bound = tuple(variables)
    if not bound:
        return body
    return Forall(bound, body)


def walk(formula: Formula) -> Iterator[Formula]:
    """Yield *formula* and every sub-formula, depth first, pre-order."""
    _require_formula(formula)
    stack = [formula]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


# Convenience constructors used pervasively by tests and examples.

def _atom_of_constants(predicate: str, names: Iterable[str]) -> Atom:
    return Atom(predicate, tuple(Constant(name) for name in names))


Atom.of_constants = staticmethod(_atom_of_constants)  # type: ignore[attr-defined]

"""Small construction DSL for formulas.

Writing ASTs by hand is verbose; tests, examples and the reductions build
formulas constantly.  This module provides:

* :func:`V` / :func:`C` — shorthand constructors for variables and constants;
* :class:`Pred` — a callable predicate symbol: ``TEACHES = Pred("TEACHES", 2)``
  then ``TEACHES(x, 'Plato')`` builds an :class:`~repro.logic.formulas.Atom`
  (bare strings are interpreted as constants, which matches how the paper
  writes atomic facts);
* :func:`Eq` / :func:`Neq` — equality and its negation;
* re-exports of the quantifier helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import FormulaError
from repro.logic.formulas import Atom, Equals, Formula, Not, exists, forall
from repro.logic.terms import Constant, Term, Variable

__all__ = ["V", "C", "Pred", "Eq", "Neq", "vars_", "exists", "forall"]


def V(name: str) -> Variable:
    """Shorthand for :class:`Variable`."""
    return Variable(name)


def C(name: str) -> Constant:
    """Shorthand for :class:`Constant`."""
    return Constant(name)


def vars_(names: str) -> tuple[Variable, ...]:
    """Build several variables from a whitespace-separated string: ``vars_("x y z")``."""
    return tuple(Variable(name) for name in names.split())


def _coerce_term(value: object) -> Term:
    """Accept terms directly and turn bare strings into constants."""
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str):
        return Constant(value)
    raise FormulaError(f"cannot interpret {value!r} as a term; pass a Variable, Constant or str")


@dataclass(frozen=True)
class Pred:
    """A predicate symbol usable as an atom factory.

    ``arity`` is optional; when given, applications with the wrong number of
    arguments are rejected immediately rather than at validation time.
    """

    name: str
    arity: int | None = None

    def __call__(self, *args: object) -> Atom:
        terms = tuple(_coerce_term(arg) for arg in args)
        if self.arity is not None and len(terms) != self.arity:
            raise FormulaError(f"predicate {self.name!r} has arity {self.arity}, got {len(terms)} arguments")
        return Atom(self.name, terms)

    def declaration(self) -> tuple[str, int]:
        """Return the ``(name, arity)`` pair for vocabulary declarations."""
        if self.arity is None:
            raise FormulaError(f"predicate {self.name!r} was created without an arity")
        return (self.name, self.arity)


def Eq(left: object, right: object) -> Equals:
    """Equality atom; bare strings become constants."""
    return Equals(_coerce_term(left), _coerce_term(right))


def Neq(left: object, right: object) -> Formula:
    """Negated equality, the shape of the paper's uniqueness axioms."""
    return Not(Eq(left, right))


def atoms_to_conjunction(atoms: Iterable[Formula]) -> Formula:
    """Conjoin an iterable of formulas (re-exported convenience)."""
    from repro.logic.formulas import conjoin

    return conjoin(atoms)

"""Terms of the relational first-order language.

The paper's relational vocabularies contain *constant symbols* and
*predicate symbols* but no function symbols (Section 2.1), so a term is
either a :class:`Variable` or a :class:`Constant`.  Both are immutable,
hashable value objects: two terms are equal exactly when their names are
equal, which lets formulas be used as dictionary keys and stored in sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import FormulaError

__all__ = [
    "Variable",
    "Constant",
    "Parameter",
    "Term",
    "is_term",
    "term_name",
    "fresh_variable",
]


@dataclass(frozen=True, slots=True)
class Variable:
    """An individual (first-order) variable, identified by its name."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise FormulaError(f"variable name must be a non-empty string, got {self.name!r}")

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant symbol.

    Constant *symbols* are always named by strings; the value a constant
    denotes is decided by an interpretation (a physical database).  In a
    closed-world logical database the constants are interpreted by
    themselves (the database ``Ph1(LB)`` of Section 3.1).
    """

    name: str

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise FormulaError(f"constant name must be a non-empty string, got {self.name!r}")

    def __repr__(self) -> str:
        return f"Constant({self.name!r})"

    def __str__(self) -> str:
        return f"'{self.name}'"


@dataclass(frozen=True, slots=True, repr=False)
class Parameter(Constant):
    """A named query parameter: ``$name`` in the textual syntax.

    A parameter is a *placeholder constant*: everywhere the library reasons
    about syntax — free variables, prefix classes, positivity, query heads —
    it behaves exactly like a constant symbol (the paper's expression
    complexity does not depend on which constant is written), which is what
    lets a prepared template be classified, decomposed and planned once.
    Evaluation, by contrast, refuses unbound parameters: a parameter only
    denotes a value after :func:`repro.logic.template.bind_query` substitutes
    a real :class:`Constant` for it (or, on the prepared fast path, after
    :func:`repro.physical.plan.substitute_plan_parameters` rebinds a
    compiled template plan).

    ``name`` is the bare parameter name, without the ``$`` sigil.  Being a
    distinct type (not a specially-named constant) means a parameter can
    never collide with a stored constant that happens to contain ``$``.
    """

    def __repr__(self) -> str:
        return f"Parameter({self.name!r})"

    def __str__(self) -> str:
        return f"${self.name}"


Term = Union[Variable, Constant]


def is_term(value: object) -> bool:
    """Return ``True`` when *value* is a :class:`Variable` or :class:`Constant`."""
    return isinstance(value, (Variable, Constant))


def term_name(term: Term) -> str:
    """Return the symbol name of a term regardless of its kind."""
    if not is_term(term):
        raise FormulaError(f"not a term: {term!r}")
    return term.name


def fresh_variable(avoid: set[str], stem: str = "v") -> Variable:
    """Return a variable whose name does not occur in *avoid*.

    Used by capture-avoiding substitution and by the formula constructions
    of Lemma 10 and Section 3.2, which need names guaranteed not to clash
    with those already present in a query.
    """
    if stem not in avoid:
        return Variable(stem)
    index = 0
    while f"{stem}{index}" in avoid:
        index += 1
    return Variable(f"{stem}{index}")

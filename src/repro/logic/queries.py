"""Queries: expressions of the form ``(x) . phi(x)`` (Section 2.1).

A query pairs a tuple of distinct *head variables* with a formula whose free
variables are all listed in the head.  Queries with an empty head are
*Boolean* queries; their answer over any database is either the empty
relation (false) or the relation containing the empty tuple (true).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import FormulaError
from repro.logic.analysis import (
    first_order_prefix_class,
    free_variables,
    is_first_order,
    is_positive,
    second_order_prefix_class,
)
from repro.logic.formulas import Formula
from repro.logic.terms import Variable

__all__ = ["Query", "boolean_query", "TRUE_ANSWER", "FALSE_ANSWER"]

#: Answer of a Boolean query that holds: the relation containing the empty tuple.
TRUE_ANSWER: frozenset[tuple] = frozenset({()})

#: Answer of a Boolean query that fails: the empty relation.
FALSE_ANSWER: frozenset[tuple] = frozenset()


@dataclass(frozen=True)
class Query:
    """A query ``(head) . formula``.

    Parameters
    ----------
    head:
        The answer variables, in output order.  They must be pairwise
        distinct and must include every free variable of ``formula`` (the
        paper requires the head to contain *all* free variables; it may also
        contain variables that do not occur in the formula, in which case
        those output columns range over the whole domain).
    formula:
        The query condition.
    """

    head: tuple[Variable, ...]
    formula: Formula

    def __init__(self, head: Iterable[Variable], formula: Formula) -> None:
        head_vars = tuple(head)
        for var in head_vars:
            if not isinstance(var, Variable):
                raise FormulaError(f"query head must contain Variables, got {var!r}")
        if len({v.name for v in head_vars}) != len(head_vars):
            raise FormulaError(f"query head variables must be distinct: {head_vars}")
        if not isinstance(formula, Formula):
            raise FormulaError(f"query body must be a Formula, got {formula!r}")
        missing = free_variables(formula) - set(head_vars)
        if missing:
            names = ", ".join(sorted(v.name for v in missing))
            raise FormulaError(f"free variables not listed in the query head: {names}")
        object.__setattr__(self, "head", head_vars)
        object.__setattr__(self, "formula", formula)

    @property
    def arity(self) -> int:
        """Number of output columns (``|x|`` in the paper)."""
        return len(self.head)

    @property
    def is_boolean(self) -> bool:
        """True for sentences queried with an empty head."""
        return not self.head

    @property
    def is_template(self) -> bool:
        """True when the condition mentions ``$name`` parameters.

        Templates classify and plan like constant queries (parameters type
        as constants) but refuse evaluation until bound — see
        :mod:`repro.logic.template`.
        """
        from repro.logic.template import has_parameters

        return has_parameters(self)

    def parameters(self) -> tuple[str, ...]:
        """The ``$`` parameter names a binding must supply (sorted)."""
        from repro.logic.template import query_parameters

        return query_parameters(self)

    @property
    def is_first_order(self) -> bool:
        return is_first_order(self.formula)

    @property
    def is_positive(self) -> bool:
        """True when the query condition is a positive formula (Theorem 13)."""
        return is_positive(self.formula)

    def prefix_class_name(self) -> str:
        """Human-readable prefix classification (Sigma_k / Pi_k), FO or SO."""
        if self.is_first_order:
            return first_order_prefix_class(self.formula).name
        return f"SO-{second_order_prefix_class(self.formula).name}"

    def with_formula(self, formula: Formula) -> "Query":
        """Return a query with the same head but a different condition."""
        return Query(self.head, formula)

    def __str__(self) -> str:  # pragma: no cover - convenience only
        from repro.logic.printer import to_text

        head = ", ".join(v.name for v in self.head)
        return f"({head}) . {to_text(self.formula)}"


def boolean_query(formula: Formula) -> Query:
    """Build a Boolean query from a sentence."""
    return Query((), formula)

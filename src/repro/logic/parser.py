"""Parser for the textual query language.

The syntax is deliberately small — it exists so that examples, tests and the
CSV loaders can state queries as strings instead of building ASTs by hand.

Grammar (loosest binding first)::

    query     := '(' [var {',' var}] ')' '.' formula | formula
    formula   := iff
    iff       := implies { '<->' implies }
    implies   := or [ '->' implies ]                     (right associative)
    or        := and { '|' and }
    and       := unary { '&' unary }
    unary     := '~' unary | quantified | atom
    quantified:= ('forall' | 'exists') var+ '.' formula
               | ('forall2' | 'exists2') pred '/' INT '.' formula
    atom      := 'true' | 'false' | '(' formula ')'
               | pred '(' [term {',' term}] ')'
               | term ('=' | '!=') term
    term      := var | constant | param
    var       := IDENT                                   (unquoted identifier)
    constant  := "'" chars "'" | INTEGER
    param     := '$' IDENT

Unquoted identifiers in term position are variables; quoted strings and bare
integers are constants.  ``$name`` is a query *parameter* — a placeholder
that types as a constant and is substituted by a prepared-query binding
(:mod:`repro.logic.template`).  ``!=`` abbreviates a negated equality.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError
from repro.logic.formulas import (
    And,
    Atom,
    BOTTOM,
    Equals,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    SecondOrderExists,
    SecondOrderForall,
    TOP,
)
from repro.logic.queries import Query
from repro.logic.terms import Constant, Parameter, Term, Variable

__all__ = ["parse_formula", "parse_query", "parse_term"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<constant>'(?:[^'\\]|\\.)*')
  | (?P<integer>\d+)
  | (?P<param>\$[A-Za-z_][A-Za-z0-9_]*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><->|->|!=|[()&|~=.,/])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"forall", "exists", "forall2", "exists2", "true", "false"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r}", position)
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0

    # Token helpers ----------------------------------------------------------

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input", len(self._text))
        self._index += 1
        return token

    def _accept(self, text: str) -> bool:
        token = self._peek()
        if token is not None and token.text == text:
            self._index += 1
            return True
        return False

    def _expect(self, text: str) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError(f"expected {text!r} but input ended", len(self._text))
        if token.text != text:
            raise ParseError(f"expected {text!r} but found {token.text!r}", token.position)
        self._index += 1
        return token

    def at_end(self) -> bool:
        return self._index >= len(self._tokens)

    # Grammar ----------------------------------------------------------------

    def parse_query(self) -> Query:
        token = self._peek()
        if token is not None and token.text == "(" and self._looks_like_head():
            head = self._parse_head()
            self._expect(".")
            formula = self.parse_formula()
            return Query(head, formula)
        formula = self.parse_formula()
        return Query((), formula)

    def _looks_like_head(self) -> bool:
        """Decide whether a leading '(' opens a query head rather than a formula.

        A head is a (possibly empty) comma-separated list of identifiers
        followed by ')' and then '.'.
        """
        index = self._index + 1
        expect_ident = True
        while index < len(self._tokens):
            token = self._tokens[index]
            if expect_ident:
                if token.text == ")" and index == self._index + 1:
                    index += 1
                    break
                if token.kind != "ident" or token.text in _KEYWORDS:
                    return False
                expect_ident = False
            else:
                if token.text == ",":
                    expect_ident = True
                elif token.text == ")":
                    index += 1
                    break
                else:
                    return False
            index += 1
        else:
            return False
        return index < len(self._tokens) and self._tokens[index].text == "."

    def _parse_head(self) -> tuple[Variable, ...]:
        self._expect("(")
        head: list[Variable] = []
        if self._accept(")"):
            return tuple(head)
        while True:
            token = self._next()
            if token.kind != "ident" or token.text in _KEYWORDS:
                raise ParseError(f"expected a variable in query head, found {token.text!r}", token.position)
            head.append(Variable(token.text))
            if self._accept(")"):
                return tuple(head)
            self._expect(",")

    def parse_formula(self) -> Formula:
        return self._parse_iff()

    def _parse_iff(self) -> Formula:
        left = self._parse_implies()
        while self._accept("<->"):
            right = self._parse_implies()
            left = Iff(left, right)
        return left

    def _parse_implies(self) -> Formula:
        left = self._parse_or()
        if self._accept("->"):
            right = self._parse_implies()
            return Implies(left, right)
        return left

    def _parse_or(self) -> Formula:
        operands = [self._parse_and()]
        while self._accept("|"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def _parse_and(self) -> Formula:
        operands = [self._parse_unary()]
        while self._accept("&"):
            operands.append(self._parse_unary())
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def _parse_unary(self) -> Formula:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input", len(self._text))
        if token.text == "~":
            self._next()
            return Not(self._parse_unary())
        if token.text in ("forall", "exists"):
            return self._parse_quantifier()
        if token.text in ("forall2", "exists2"):
            return self._parse_second_order_quantifier()
        return self._parse_atom()

    def _parse_quantifier(self) -> Formula:
        keyword = self._next()
        variables: list[Variable] = []
        while True:
            token = self._peek()
            if token is None:
                raise ParseError("unexpected end of input in quantifier", len(self._text))
            if token.text == ".":
                break
            if token.kind != "ident" or token.text in _KEYWORDS:
                raise ParseError(f"expected a variable after {keyword.text!r}, found {token.text!r}", token.position)
            variables.append(Variable(token.text))
            self._next()
        if not variables:
            raise ParseError(f"{keyword.text!r} must bind at least one variable", keyword.position)
        self._expect(".")
        body = self.parse_formula()
        if keyword.text == "forall":
            return Forall(tuple(variables), body)
        return Exists(tuple(variables), body)

    def _parse_second_order_quantifier(self) -> Formula:
        keyword = self._next()
        name_token = self._next()
        if name_token.kind != "ident" or name_token.text in _KEYWORDS:
            raise ParseError(
                f"expected a predicate name after {keyword.text!r}, found {name_token.text!r}", name_token.position
            )
        self._expect("/")
        arity_token = self._next()
        if arity_token.kind != "integer":
            raise ParseError(f"expected an arity after '/', found {arity_token.text!r}", arity_token.position)
        self._expect(".")
        body = self.parse_formula()
        if keyword.text == "forall2":
            return SecondOrderForall(name_token.text, int(arity_token.text), body)
        return SecondOrderExists(name_token.text, int(arity_token.text), body)

    def _parse_atom(self) -> Formula:
        token = self._next()
        if token.text == "(":
            inner = self.parse_formula()
            self._expect(")")
            return inner
        if token.text == "true":
            return TOP
        if token.text == "false":
            return BOTTOM
        if token.kind == "ident" and not self._at_comparison():
            follower = self._peek()
            if follower is not None and follower.text == "(":
                return self._parse_predicate_application(token.text)
        term = self._token_to_term(token)
        operator = self._peek()
        if operator is not None and operator.text in ("=", "!="):
            self._next()
            right = self._token_to_term(self._next())
            equality = Equals(term, right)
            return Not(equality) if operator.text == "!=" else equality
        raise ParseError(f"expected '=', '!=' or a predicate application, found {token.text!r}", token.position)

    def _at_comparison(self) -> bool:
        token = self._peek()
        return token is not None and token.text in ("=", "!=")

    def _parse_predicate_application(self, predicate: str) -> Formula:
        self._expect("(")
        args: list[Term] = []
        if self._accept(")"):
            raise ParseError(f"predicate {predicate!r} applied to zero arguments", self._position())
        while True:
            args.append(self._token_to_term(self._next()))
            if self._accept(")"):
                return Atom(predicate, tuple(args))
            self._expect(",")

    def _token_to_term(self, token: _Token) -> Term:
        if token.kind == "constant":
            raw = token.text[1:-1]
            return Constant(raw.replace("\\'", "'"))
        if token.kind == "integer":
            return Constant(token.text)
        if token.kind == "param":
            return Parameter(token.text[1:])
        if token.kind == "ident" and token.text not in _KEYWORDS:
            return Variable(token.text)
        raise ParseError(f"expected a term, found {token.text!r}", token.position)

    def _position(self) -> int:
        token = self._peek()
        return token.position if token is not None else len(self._text)


def parse_formula(text: str) -> Formula:
    """Parse *text* as a formula."""
    parser = _Parser(text)
    formula = parser.parse_formula()
    if not parser.at_end():
        token = parser._peek()
        assert token is not None
        raise ParseError(f"unexpected trailing input {token.text!r}", token.position)
    return formula


def parse_query(text: str) -> Query:
    """Parse *text* as a query; a bare formula becomes a Boolean query."""
    parser = _Parser(text)
    query = parser.parse_query()
    if not parser.at_end():
        token = parser._peek()
        assert token is not None
        raise ParseError(f"unexpected trailing input {token.text!r}", token.position)
    return query


def parse_term(text: str) -> Term:
    """Parse a single term (variable, quoted constant or integer constant)."""
    tokens = _tokenize(text)
    if len(tokens) != 1:
        raise ParseError(f"expected a single term, got {text!r}")
    parser = _Parser(text)
    return parser._token_to_term(parser._next())

"""Structural analysis of formulas.

These helpers answer the syntactic questions the paper's results are phrased
in terms of: which variables are free (queries must list all of them in
their head, Section 2.1), whether a query is *positive* (Theorem 13),
whether it is first-order, and which prefix class (Sigma_k / Pi_k, first- or
second-order) it belongs to (Theorems 6-9).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FormulaError
from repro.logic.formulas import (
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ExtensionAtom,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    SecondOrderExists,
    SecondOrderForall,
    Top,
    walk,
)
from repro.logic.terms import Constant, Term, Variable

__all__ = [
    "free_variables",
    "all_variables",
    "constants_in",
    "predicates_in",
    "is_sentence",
    "is_first_order",
    "is_quantifier_free",
    "is_positive",
    "quantifier_rank",
    "PrefixClass",
    "first_order_prefix_class",
    "second_order_prefix_class",
]


def _term_variables(terms: tuple[Term, ...]) -> set[Variable]:
    return {term for term in terms if isinstance(term, Variable)}


def free_variables(formula: Formula) -> frozenset[Variable]:
    """Return the set of free (individual) variables of *formula*."""
    if isinstance(formula, (Atom, ExtensionAtom)):
        return frozenset(_term_variables(formula.args))
    if isinstance(formula, Equals):
        return frozenset(_term_variables((formula.left, formula.right)))
    if isinstance(formula, (Top, Bottom)):
        return frozenset()
    if isinstance(formula, Not):
        return free_variables(formula.operand)
    if isinstance(formula, (And, Or)):
        result: set[Variable] = set()
        for operand in formula.operands:
            result |= free_variables(operand)
        return frozenset(result)
    if isinstance(formula, Implies):
        return free_variables(formula.antecedent) | free_variables(formula.consequent)
    if isinstance(formula, Iff):
        return free_variables(formula.left) | free_variables(formula.right)
    if isinstance(formula, (Exists, Forall)):
        return free_variables(formula.body) - set(formula.variables)
    if isinstance(formula, (SecondOrderExists, SecondOrderForall)):
        return free_variables(formula.body)
    raise FormulaError(f"unknown formula node: {formula!r}")


def all_variables(formula: Formula) -> frozenset[Variable]:
    """Return every variable occurring in *formula*, free or bound."""
    result: set[Variable] = set()
    for node in walk(formula):
        if isinstance(node, (Atom, ExtensionAtom)):
            result |= _term_variables(node.args)
        elif isinstance(node, Equals):
            result |= _term_variables((node.left, node.right))
        elif isinstance(node, (Exists, Forall)):
            result |= set(node.variables)
    return frozenset(result)


def constants_in(formula: Formula) -> frozenset[Constant]:
    """Return the constant symbols occurring in *formula*."""
    result: set[Constant] = set()
    for node in walk(formula):
        terms: tuple[Term, ...] = ()
        if isinstance(node, (Atom, ExtensionAtom)):
            terms = node.args
        elif isinstance(node, Equals):
            terms = (node.left, node.right)
        result |= {term for term in terms if isinstance(term, Constant)}
    return frozenset(result)


def predicates_in(formula: Formula) -> frozenset[str]:
    """Return the predicate names applied in *formula* (excluding equality).

    Predicates bound by second-order quantifiers are included: callers that
    need only the vocabulary predicates should use
    :meth:`repro.logic.vocabulary.Vocabulary.predicates_used`.
    """
    result: set[str] = set()
    for node in walk(formula):
        if isinstance(node, Atom):
            result.add(node.predicate)
    return frozenset(result)


def is_sentence(formula: Formula) -> bool:
    """A sentence has no free individual variables."""
    return not free_variables(formula)


def is_first_order(formula: Formula) -> bool:
    """True when *formula* contains no second-order quantifier."""
    return not any(isinstance(node, (SecondOrderExists, SecondOrderForall)) for node in walk(formula))


def is_quantifier_free(formula: Formula) -> bool:
    """True when *formula* contains no quantifier of either order."""
    return not any(
        isinstance(node, (Exists, Forall, SecondOrderExists, SecondOrderForall)) for node in walk(formula)
    )


def is_positive(formula: Formula) -> bool:
    """Return True when every atomic formula sits under an even number of negations.

    This is the notion used by Theorem 13 ("a formula is positive if every
    atomic formula is governed by an even number of negations").  An
    implication ``a -> b`` counts as one negation of ``a``; a bi-implication
    places both sides under both parities and therefore is positive only if
    it contains no atoms at all.
    """
    return _is_positive(formula, negated=False)


def _is_positive(formula: Formula, negated: bool) -> bool:
    if isinstance(formula, (Atom, Equals, ExtensionAtom)):
        return not negated
    if isinstance(formula, (Top, Bottom)):
        return True
    if isinstance(formula, Not):
        return _is_positive(formula.operand, not negated)
    if isinstance(formula, (And, Or)):
        return all(_is_positive(op, negated) for op in formula.operands)
    if isinstance(formula, Implies):
        return _is_positive(formula.antecedent, not negated) and _is_positive(formula.consequent, negated)
    if isinstance(formula, Iff):
        left_ok = _is_positive(formula.left, negated) and _is_positive(formula.left, not negated)
        right_ok = _is_positive(formula.right, negated) and _is_positive(formula.right, not negated)
        return left_ok and right_ok
    if isinstance(formula, (Exists, Forall, SecondOrderExists, SecondOrderForall)):
        return _is_positive(formula.body, negated)
    raise FormulaError(f"unknown formula node: {formula!r}")


def quantifier_rank(formula: Formula) -> int:
    """Return the maximum nesting depth of first-order quantifiers."""
    if isinstance(formula, (Atom, Equals, ExtensionAtom, Top, Bottom)):
        return 0
    if isinstance(formula, (Exists, Forall)):
        return len(formula.variables) + quantifier_rank(formula.body)
    if isinstance(formula, (SecondOrderExists, SecondOrderForall)):
        return quantifier_rank(formula.body)
    children = formula.children()
    return max((quantifier_rank(child) for child in children), default=0)


@dataclass(frozen=True)
class PrefixClass:
    """Quantifier-prefix classification of a formula.

    ``level`` is the number of quantifier blocks; ``starts_with_exists``
    says whether the outermost block is existential.  A formula with
    ``level == k`` starting existentially is in the class the paper calls
    Sigma_k; starting universally it is in Pi_k.  ``level == 0`` means the
    relevant kind of quantifier does not occur at the top of the prefix.
    """

    level: int
    starts_with_exists: bool

    @property
    def name(self) -> str:
        if self.level == 0:
            return "quantifier-free"
        greek = "Sigma" if self.starts_with_exists else "Pi"
        return f"{greek}_{self.level}"


def first_order_prefix_class(formula: Formula) -> PrefixClass:
    """Classify the leading first-order quantifier prefix of *formula*.

    Only the maximal prefix of ``Exists``/``Forall`` nodes is inspected
    (the paper's Sigma^E_k classes of Theorem 6/7 are defined this way);
    quantifiers buried under connectives are not counted.
    """
    blocks = _prefix_blocks(formula, (Exists, Forall))
    if not blocks:
        return PrefixClass(0, False)
    return PrefixClass(len(blocks), blocks[0] == "E")


def second_order_prefix_class(formula: Formula) -> PrefixClass:
    """Classify the leading second-order quantifier prefix of *formula*."""
    blocks = _prefix_blocks(formula, (SecondOrderExists, SecondOrderForall))
    if not blocks:
        return PrefixClass(0, False)
    return PrefixClass(len(blocks), blocks[0] == "E")


def _prefix_blocks(formula: Formula, kinds: tuple[type, ...]) -> list[str]:
    existential_kind, universal_kind = kinds
    blocks: list[str] = []
    node = formula
    while isinstance(node, kinds):
        label = "E" if isinstance(node, existential_kind) else "A"
        if not blocks or blocks[-1] != label:
            blocks.append(label)
        node = node.body  # type: ignore[union-attr]
    return blocks

"""Parameterized query templates and their binding.

A *template* is an ordinary :class:`~repro.logic.queries.Query` whose
formula mentions :class:`~repro.logic.terms.Parameter` terms (``$name`` in
the textual syntax).  Parameters type as constants, so a template can be
parsed, classified, decomposed and compiled exactly once; binding then
substitutes real :class:`~repro.logic.terms.Constant` symbols for the
placeholders **without re-parsing** — the expression-side work (Vardi's
expression complexity) is paid per template, the data-side work per binding.

Two binding levels exist:

* :func:`bind_query` — AST-level substitution, used by every evaluation
  route (it produces a parameter-free query any engine can run);
* :func:`repro.physical.plan.substitute_plan_parameters` — plan-level
  substitution, the prepared fast path that also skips compile + optimize.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.errors import FormulaError, UnboundParameterError
from repro.logic.formulas import (
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ExtensionAtom,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    SecondOrderExists,
    SecondOrderForall,
    Top,
)
from repro.logic.queries import Query
from repro.logic.terms import Constant, Parameter, Term

__all__ = [
    "formula_parameters",
    "query_parameters",
    "has_parameters",
    "bind_formula",
    "bind_query",
    "check_bound",
]


def _terms_in(formula: Formula) -> Iterator[Term]:
    if isinstance(formula, (Atom, ExtensionAtom)):
        yield from formula.args
    elif isinstance(formula, Equals):
        yield formula.left
        yield formula.right
    for child in formula.children():
        yield from _terms_in(child)


def formula_parameters(formula: Formula) -> tuple[str, ...]:
    """The parameter names mentioned by *formula*, sorted and deduplicated."""
    return tuple(sorted({term.name for term in _terms_in(formula) if isinstance(term, Parameter)}))


def query_parameters(query: Query) -> tuple[str, ...]:
    """The parameter names a binding for *query* must supply."""
    return formula_parameters(query.formula)


def has_parameters(query: Query) -> bool:
    """Whether *query* is a template (mentions at least one parameter)."""
    return any(isinstance(term, Parameter) for term in _terms_in(query.formula))


def _check_binding(parameters: tuple[str, ...], values: Mapping[str, str]) -> dict[str, str]:
    missing = [name for name in parameters if name not in values]
    if missing:
        raise UnboundParameterError(
            "missing value(s) for parameter(s): " + ", ".join(f"${name}" for name in missing)
        )
    extra = sorted(set(values) - set(parameters))
    if extra:
        raise UnboundParameterError(
            "binding names parameter(s) the template does not mention: "
            + ", ".join(f"${name}" for name in extra)
        )
    for name, value in values.items():
        if not isinstance(value, str) or not value:
            raise FormulaError(
                f"parameter ${name} must be bound to a non-empty constant name, got {value!r}"
            )
    return dict(values)


def _bind_term(term: Term, values: Mapping[str, str]) -> Term:
    if isinstance(term, Parameter):
        return Constant(values[term.name])
    return term


def bind_formula(formula: Formula, values: Mapping[str, str]) -> Formula:
    """Substitute constants for every parameter of *formula*.

    *values* must bind exactly the parameters the formula mentions (no
    missing, no extra names) — a silent partial binding would surface later
    as a confusing evaluation error far from its cause.
    """
    _check_binding(formula_parameters(formula), values)
    return _bind(formula, values)


def _bind(formula: Formula, values: Mapping[str, str]) -> Formula:
    if isinstance(formula, ExtensionAtom):
        return formula.with_args(tuple(_bind_term(t, values) for t in formula.args))
    if isinstance(formula, Atom):
        return Atom(formula.predicate, tuple(_bind_term(t, values) for t in formula.args))
    if isinstance(formula, Equals):
        return Equals(_bind_term(formula.left, values), _bind_term(formula.right, values))
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(_bind(formula.operand, values))
    if isinstance(formula, And):
        return And(tuple(_bind(op, values) for op in formula.operands))
    if isinstance(formula, Or):
        return Or(tuple(_bind(op, values) for op in formula.operands))
    if isinstance(formula, Implies):
        return Implies(_bind(formula.antecedent, values), _bind(formula.consequent, values))
    if isinstance(formula, Iff):
        return Iff(_bind(formula.left, values), _bind(formula.right, values))
    if isinstance(formula, (Exists, Forall)):
        # Parameters are constants, never bound variables: no capture risk.
        return type(formula)(formula.variables, _bind(formula.body, values))
    if isinstance(formula, (SecondOrderExists, SecondOrderForall)):
        return type(formula)(formula.predicate, formula.arity, _bind(formula.body, values))
    raise FormulaError(f"cannot bind parameters in formula node {type(formula).__name__}")


def bind_query(query: Query, values: Mapping[str, str]) -> Query:
    """Bind a template to concrete constants; the inverse check of `prepare`.

    Returns a parameter-free query with the same head.  The binding must be
    exact (see :func:`bind_formula`); binding a parameter-free query with an
    empty mapping is the identity.
    """
    if not has_parameters(query):
        _check_binding((), values)
        return query
    return query.with_formula(bind_formula(query.formula, values))


def check_bound(query: Query) -> None:
    """Raise :class:`UnboundParameterError` if *query* still has parameters.

    Evaluation engines call this before running: a parameter has no value,
    so evaluating around one could only produce silently wrong answers.
    """
    names = query_parameters(query)
    if names:
        raise UnboundParameterError(
            "query mentions unbound parameter(s) "
            + ", ".join(f"${name}" for name in names)
            + " — bind them (prepared execute, --param) before evaluation"
        )

"""Named scenarios used by the examples, tests and experiments.

These are the concrete stories the paper tells:

* :func:`socrates_database` — the ``TEACHES(Socrates, Plato)`` style of
  atomic facts from Section 2.2;
* :func:`jack_the_ripper_database` — the uniqueness-axiom example: we do not
  know the identity of Jack the Ripper, so there is *no* axiom
  ``Jack the Ripper != Benjamin D'Israeli``;
* :func:`employee_intro_scenario` — a small fixed instance of the
  employee/department/manager query from the introduction, together with the
  paper's example query
  ``(x1, x2) . exists y. EMP_DEPT(x1, y) & DEPT_MGR(y, x2)``;
* :func:`intro_query` — that query by itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic.parser import parse_query
from repro.logic.queries import Query
from repro.logical.database import CWDatabase
from repro.workloads.generators import EMPLOYEE_PREDICATES

__all__ = [
    "socrates_database",
    "jack_the_ripper_database",
    "employee_intro_scenario",
    "intro_query",
    "Scenario",
]


@dataclass(frozen=True)
class Scenario:
    """A bundled database + queries with a human-readable description."""

    name: str
    description: str
    database: CWDatabase
    queries: tuple[Query, ...]

    def __hash__(self) -> int:
        return hash((self.name, self.database))


def socrates_database() -> CWDatabase:
    """Teachers and students, fully specified: the Section 2.2 flavour of facts."""
    constants = ("socrates", "plato", "aristotle", "alexander")
    facts = {
        "TEACHES": [
            ("socrates", "plato"),
            ("plato", "aristotle"),
            ("aristotle", "alexander"),
        ]
    }
    database = CWDatabase(constants, {"TEACHES": 2}, facts, ())
    return database.fully_specified()


def jack_the_ripper_database() -> CWDatabase:
    """The paper's uniqueness-axiom example: an unidentified suspect.

    The database records who lived in London and who was a murderer.  All the
    named gentlemen are pairwise distinct, but there is *no* uniqueness axiom
    between ``jack_the_ripper`` and anyone else — we do not know who he was.
    """
    named = ("benjamin_disraeli", "charles_dickens", "john_watson")
    constants = named + ("jack_the_ripper",)
    facts = {
        "LIVED_IN_LONDON": [(person,) for person in constants],
        "MURDERER": [("jack_the_ripper",)],
    }
    unequal = [
        (left, right)
        for index, left in enumerate(named)
        for right in named[index + 1:]
    ]
    return CWDatabase(constants, {"LIVED_IN_LONDON": 1, "MURDERER": 1}, facts, unequal)


def intro_query() -> Query:
    """The introduction's employee-manager query.

    ``(x1, x2) . exists y. EMP_DEPT(x1, y) & DEPT_MGR(y, x2)`` — "which
    employees are related to which managers through their department".
    """
    return parse_query("(x1, x2) . exists y. EMP_DEPT(x1, y) & DEPT_MGR(y, x2)")


def employee_intro_scenario() -> Scenario:
    """A small fixed employee database with one null (unknown) manager."""
    employees = ("ada", "boris", "carla")
    departments = ("eng", "sales")
    constants = employees + departments + ("mgr_unknown",)
    facts = {
        "EMP_DEPT": [("ada", "eng"), ("boris", "eng"), ("carla", "sales")],
        "DEPT_MGR": [("eng", "ada"), ("sales", "mgr_unknown")],
        "EMP_SAL": [("ada", "high"), ("boris", "mid"), ("carla", "mid")],
    }
    known = employees + departments + ("high", "mid")
    unequal = [
        (left, right)
        for index, left in enumerate(known)
        for right in known[index + 1:]
    ]
    database = CWDatabase(
        constants + ("high", "mid"),
        dict(EMPLOYEE_PREDICATES),
        facts,
        unequal,
    )
    queries = (
        intro_query(),
        parse_query("(x) . exists d. EMP_DEPT(x, d) & DEPT_MGR(d, x)"),
        parse_query("(x) . ~DEPT_MGR('sales', x)"),
    )
    return Scenario(
        name="employee-intro",
        description="Employees, departments and managers with one unknown manager (a null value)",
        database=database,
        queries=queries,
    )

"""Traffic generation for the query-serving subsystem.

Real query traffic is not uniform: a few hot queries dominate (skewed
popularity), requests arrive in bursts, and only a small fraction can
afford the exponential exact route.  This module turns the named scenarios
of :mod:`repro.workloads.scenarios` into reproducible request streams with
exactly those shapes, for the service benchmarks (E13) and the concurrency
tests:

* **hot-key skew** — with probability ``hot_fraction`` a request repeats
  one of the few "hot" (database, query) pairs, otherwise it draws
  uniformly from the whole pool; repeats are what the response cache and
  the batch deduplicator exploit;
* **approx-vs-exact mix** — a fraction of requests takes the exact
  (Theorem 1) route, the rest the Section 5 approximation, with the
  approximation engines alternating between algebra and Tarski;
* **batch bursts** — :func:`batch_bursts` chops a stream into the request
  lists a bursty client would POST to ``/batch``;
* **recorded logs** — :func:`save_traffic_log` / :func:`load_traffic_log`
  persist a stream as JSONL of protocol messages, the format ``repro serve
  --warm FILE`` replays through the caches before accepting connections;
* **multi-shard traffic** — :func:`cluster_traffic_stream` generates the
  skewed mix the cluster benchmarks serve: hot-constant selections that
  scatter across shards, replicated-relation reads that route to single
  shards, ground conjunctions, and a trickle of non-decomposable queries
  that exercise the full-copy fallback.

All generators take an explicit seed, like the rest of
:mod:`repro.workloads`.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import ProtocolError
from repro.logical.database import CWDatabase
from repro.observability import events
from repro.service.protocol import QueryRequest, parse_wire, to_wire
from repro.workloads.scenarios import (
    Scenario,
    employee_intro_scenario,
    jack_the_ripper_database,
)
from repro.logic.parser import parse_query
from repro.logic.printer import query_to_text

__all__ = [
    "TrafficProfile",
    "ClusterTrafficProfile",
    "default_scenarios",
    "scenario_pool",
    "traffic_stream",
    "cluster_traffic_stream",
    "parameter_sweep_workload",
    "SWEEP_TEMPLATE",
    "batch_bursts",
    "register_scenarios",
    "save_traffic_log",
    "load_traffic_log",
    "load_traffic_log_tolerant",
]


@dataclass(frozen=True)
class TrafficProfile:
    """Knobs of a synthetic traffic mix.

    ``hot_keys`` is how many (database, query) pairs form the skewed head of
    the popularity distribution; ``hot_fraction`` is the probability that a
    request draws from that head.  ``exact_fraction`` requests take the
    exponential exact route (keep it small — that is the paper's point);
    half of those ask for ``method="both"`` so soundness is re-checked in
    flight.  ``tarski_fraction`` of the approximate requests use the direct
    Tarskian engine instead of the algebra compiler.
    """

    hot_keys: int = 2
    hot_fraction: float = 0.8
    exact_fraction: float = 0.1
    tarski_fraction: float = 0.25
    virtual_ne_fraction: float = 0.2


def default_scenarios() -> tuple[Scenario, ...]:
    """The scenarios traffic draws on: employee-intro and Jack the Ripper."""
    ripper = Scenario(
        name="jack-the-ripper",
        description="The uniqueness-axiom example: an unidentified murderer",
        database=jack_the_ripper_database(),
        queries=(
            parse_query("(x) . MURDERER(x)"),
            parse_query("(x) . LIVED_IN_LONDON(x)"),
            parse_query("(x) . ~MURDERER(x)"),
            parse_query("exists x. MURDERER(x) & LIVED_IN_LONDON(x)"),
        ),
    )
    return (employee_intro_scenario(), ripper)


def scenario_pool(scenarios: Iterable[Scenario]) -> list[tuple[str, str]]:
    """The (database name, query text) pairs a traffic stream draws from."""
    pool = []
    for scenario in scenarios:
        for query in scenario.queries:
            pool.append((scenario.name, query_to_text(query)))
    if not pool:
        raise ValueError("traffic needs at least one scenario with at least one query")
    return pool


def traffic_stream(
    n_requests: int,
    scenarios: Sequence[Scenario] | None = None,
    profile: TrafficProfile = TrafficProfile(),
    seed: int | None = None,
) -> list[QueryRequest]:
    """A reproducible stream of *n_requests* mixed query requests."""
    rng = random.Random(seed)
    pool = scenario_pool(default_scenarios() if scenarios is None else scenarios)
    hot = pool[: max(1, min(profile.hot_keys, len(pool)))]

    stream: list[QueryRequest] = []
    for __ in range(n_requests):
        database, query_text = rng.choice(hot) if rng.random() < profile.hot_fraction else rng.choice(pool)
        if rng.random() < profile.exact_fraction:
            method = "exact" if rng.random() < 0.5 else "both"
        else:
            method = "approx"
        engine = "tarski" if rng.random() < profile.tarski_fraction else "algebra"
        virtual_ne = rng.random() < profile.virtual_ne_fraction
        stream.append(QueryRequest(database, query_text, method, engine, virtual_ne))
    return stream


def batch_bursts(requests: Sequence[QueryRequest], burst_size: int) -> list[list[QueryRequest]]:
    """Chop a stream into the bursts a batching client would send together."""
    if burst_size < 1:
        raise ValueError("burst_size must be at least 1")
    return [list(requests[start:start + burst_size]) for start in range(0, len(requests), burst_size)]


def save_traffic_log(requests: Iterable[QueryRequest], path: str | Path) -> Path:
    """Record a request stream as JSONL (one protocol message per line).

    This is the on-disk format of ``repro serve --warm FILE``: replayable,
    versioned (each line carries the protocol envelope) and greppable.
    """
    path = Path(path)
    with path.open("w") as handle:
        for request in requests:
            handle.write(json.dumps(to_wire(request), sort_keys=True) + "\n")
    return path


def load_traffic_log(path: str | Path) -> list[QueryRequest]:
    """Read back a stream written by :func:`save_traffic_log`.

    Blank lines are skipped; anything that is not a valid ``query_request``
    message raises :class:`~repro.errors.ProtocolError` with its line number,
    so a corrupted log fails loudly instead of silently warming nothing.  A
    missing or unreadable file raises the same library error, so the CLI
    reports it cleanly instead of leaking a traceback.
    """
    try:
        text = Path(path).read_text()
    except OSError as error:
        raise ProtocolError(f"cannot read traffic log {path}: {error}") from None
    requests = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            message = parse_wire(line)
        except ProtocolError as error:
            raise ProtocolError(f"{path}:{line_number}: {error}") from None
        if not isinstance(message, QueryRequest):
            raise ProtocolError(
                f"{path}:{line_number}: expected a query_request, got {type(message).__name__}"
            )
        requests.append(message)
    return requests


def load_traffic_log_tolerant(
    path: str | Path,
) -> tuple[list[QueryRequest], list[tuple[int, str]]]:
    """Read a traffic log, skipping malformed lines instead of failing.

    The forgiving sibling of :func:`load_traffic_log` for ``serve --warm``:
    one corrupt line must not cost the whole warm-up.  Every skipped line
    comes back as ``(line_number, reason)`` *and* is emitted as a
    structured ``warmup.skipped_entry`` event, so the skip is forensically
    visible instead of silently shrinking the replay.  A missing or
    unreadable file still raises — there is nothing to degrade to.
    """
    try:
        text = Path(path).read_text()
    except OSError as error:
        raise ProtocolError(f"cannot read traffic log {path}: {error}") from None
    requests: list[QueryRequest] = []
    skipped: list[tuple[int, str]] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            message = parse_wire(line)
        except ProtocolError as error:
            reason = str(error)
        else:
            if isinstance(message, QueryRequest):
                requests.append(message)
                continue
            reason = f"expected a query_request, got {type(message).__name__}"
        skipped.append((line_number, reason))
        events.emit(
            "warmup.skipped_entry",
            level="warning",
            path=str(path),
            line=line_number,
            reason=reason,
        )
    return requests, skipped


@dataclass(frozen=True)
class ClusterTrafficProfile:
    """Shape of the skewed multi-shard mix for the cluster benchmarks.

    ``scatter_fraction`` of requests are bare-atom reads over split
    relations (they fan out to every shard and union-merge); the rest route
    to a single shard via replicated-relation queries.  Within the scatter
    share, ``hot_fraction`` of the selections reuse one of ``hot_constants``
    popular keys — the skew that makes some shards hotter than others.
    ``conjunction_fraction`` and ``fallback_fraction`` carve out ground
    Boolean conjunctions and deliberately non-decomposable join queries (the
    full-copy fallback path), so a stream exercises every routing rule.
    """

    scatter_fraction: float = 0.3
    hot_fraction: float = 0.7
    hot_constants: int = 4
    conjunction_fraction: float = 0.05
    fallback_fraction: float = 0.05
    tarski_fraction: float = 0.0


def cluster_traffic_stream(
    n_requests: int,
    database_name: str,
    database: CWDatabase,
    split_relations: Sequence[str],
    replicated_relations: Sequence[str],
    profile: ClusterTrafficProfile = ClusterTrafficProfile(),
    seed: int | None = None,
) -> list[QueryRequest]:
    """A reproducible skewed multi-shard stream against one database.

    The caller says which relations the partitioner split and which it
    replicated (see :func:`repro.cluster.partition.partition_database`); the
    stream then mixes scatter reads, single-shard reads, ground conjunctions
    and full-copy fallbacks in the profile's proportions.  Only binary
    relations are used for the generated shapes.
    """
    rng = random.Random(seed)
    split_binary = [name for name in split_relations if database.predicates.get(name) == 2]
    replicated_binary = [name for name in replicated_relations if database.predicates.get(name) == 2]
    if not split_binary or not replicated_binary:
        raise ValueError("cluster traffic needs at least one split and one replicated binary relation")

    def quoted(constant: str) -> str:
        return "'" + constant.replace("'", "\\'") + "'"

    # Sorted once per relation: sampling happens on almost every request and
    # facts_for() returns an (unordered) frozenset.
    sorted_rows = {
        relation: sorted(database.facts_for(relation))
        for relation in set(split_binary) | set(replicated_binary)
    }

    def sample_row(relation: str) -> tuple[str, ...]:
        rows = sorted_rows[relation]
        if rows:
            return rows[rng.randrange(len(rows))]
        constants = database.constants
        return tuple(rng.choice(constants) for __ in range(database.predicates[relation]))

    hot_keys = [sample_row(rng.choice(split_binary))[0] for __ in range(max(1, profile.hot_constants))]

    stream: list[QueryRequest] = []
    for __ in range(n_requests):
        roll = rng.random()
        engine = "tarski" if rng.random() < profile.tarski_fraction else "algebra"
        if roll < profile.fallback_fraction:
            # Non-decomposable: a join across a split and a replicated
            # relation under an existential — full-copy territory.
            split_name = rng.choice(split_binary)
            replicated_name = rng.choice(replicated_binary)
            anchor = sample_row(split_name)[0]
            text = (
                f"(x) . exists y. {split_name}({quoted(anchor)}, y) & {replicated_name}(y, x)"
            )
        elif roll < profile.fallback_fraction + profile.conjunction_fraction:
            left_name = rng.choice(split_binary)
            right_name = rng.choice(replicated_binary)
            left_row = sample_row(left_name)
            right_row = sample_row(right_name)
            text = (
                f"() . {left_name}({', '.join(map(quoted, left_row))})"
                f" & {right_name}({', '.join(map(quoted, right_row))})"
            )
        elif roll < profile.fallback_fraction + profile.conjunction_fraction + profile.scatter_fraction:
            relation = rng.choice(split_binary)
            if rng.random() < profile.hot_fraction:
                key = hot_keys[rng.randrange(len(hot_keys))]
            else:
                key = sample_row(relation)[0]
            text = f"(x) . {relation}({quoted(key)}, x)"
        else:
            relation = rng.choice(replicated_binary)
            shape = rng.randrange(3)
            if shape == 0:
                text = f"(x, y) . {relation}(x, y)"
            elif shape == 1:
                key = sample_row(relation)[rng.randrange(2)]
                text = f"(x) . {relation}({quoted(key)}, x)"
            else:
                text = f"(x, y) . exists z. {relation}(x, z) & {relation}(y, z)"
        stream.append(QueryRequest(database_name, text, "approx", engine, False))
    return stream


#: The E17 parameter-sweep template: a join-heavy query over the employee
#: schema whose only varying part is the anchor employee ``$e`` — exactly the
#: hot-traffic shape the prepared-statement API amortizes (plan once per
#: template, bind per request).
SWEEP_TEMPLATE = (
    "(m, s) . exists d y. EMP_DEPT($e, d) & EMP_DEPT(y, d) & EMP_SAL(y, s) & DEPT_MGR(d, m)"
)


def parameter_sweep_workload(
    database: CWDatabase,
    n_bindings: int,
    seed: int | None = None,
    hot_fraction: float = 0.0,
    hot_keys: int = 4,
) -> tuple[str, list[dict[str, str]]]:
    """One join-heavy template plus *n_bindings* parameter bindings.

    The bindings draw employees from the database's ``EMP_DEPT`` relation —
    mostly distinct (the sweep shape that defeats per-text answer and plan
    caches on the ad-hoc path), optionally with a skewed hot head
    (``hot_fraction`` of requests reuse one of ``hot_keys`` employees).
    Returns ``(template text, bindings)`` for
    :meth:`~repro.service.engine.QueryService.prepare` /
    ``execute_many``.
    """
    employees = sorted({row[0] for row in database.facts_for("EMP_DEPT")})
    if not employees:
        raise ValueError("parameter_sweep_workload needs a populated EMP_DEPT relation")
    rng = random.Random(seed)
    hot = employees[: max(1, min(hot_keys, len(employees)))]
    bindings = []
    for __ in range(n_bindings):
        if rng.random() < hot_fraction:
            employee = hot[rng.randrange(len(hot))]
        else:
            employee = employees[rng.randrange(len(employees))]
        bindings.append({"e": employee})
    return SWEEP_TEMPLATE, bindings


def register_scenarios(service, scenarios: Iterable[Scenario] | None = None) -> tuple[str, ...]:
    """Register every scenario's database on *service*; returns the names."""
    names = []
    for scenario in default_scenarios() if scenarios is None else scenarios:
        service.register(scenario.name, scenario.database)
        names.append(scenario.name)
    return tuple(names)

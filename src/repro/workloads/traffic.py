"""Traffic generation for the query-serving subsystem.

Real query traffic is not uniform: a few hot queries dominate (skewed
popularity), requests arrive in bursts, and only a small fraction can
afford the exponential exact route.  This module turns the named scenarios
of :mod:`repro.workloads.scenarios` into reproducible request streams with
exactly those shapes, for the service benchmarks (E13) and the concurrency
tests:

* **hot-key skew** — with probability ``hot_fraction`` a request repeats
  one of the few "hot" (database, query) pairs, otherwise it draws
  uniformly from the whole pool; repeats are what the response cache and
  the batch deduplicator exploit;
* **approx-vs-exact mix** — a fraction of requests takes the exact
  (Theorem 1) route, the rest the Section 5 approximation, with the
  approximation engines alternating between algebra and Tarski;
* **batch bursts** — :func:`batch_bursts` chops a stream into the request
  lists a bursty client would POST to ``/batch``.

All generators take an explicit seed, like the rest of
:mod:`repro.workloads`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.service.protocol import QueryRequest
from repro.workloads.scenarios import (
    Scenario,
    employee_intro_scenario,
    jack_the_ripper_database,
)
from repro.logic.parser import parse_query
from repro.logic.printer import query_to_text

__all__ = [
    "TrafficProfile",
    "default_scenarios",
    "scenario_pool",
    "traffic_stream",
    "batch_bursts",
    "register_scenarios",
]


@dataclass(frozen=True)
class TrafficProfile:
    """Knobs of a synthetic traffic mix.

    ``hot_keys`` is how many (database, query) pairs form the skewed head of
    the popularity distribution; ``hot_fraction`` is the probability that a
    request draws from that head.  ``exact_fraction`` requests take the
    exponential exact route (keep it small — that is the paper's point);
    half of those ask for ``method="both"`` so soundness is re-checked in
    flight.  ``tarski_fraction`` of the approximate requests use the direct
    Tarskian engine instead of the algebra compiler.
    """

    hot_keys: int = 2
    hot_fraction: float = 0.8
    exact_fraction: float = 0.1
    tarski_fraction: float = 0.25
    virtual_ne_fraction: float = 0.2


def default_scenarios() -> tuple[Scenario, ...]:
    """The scenarios traffic draws on: employee-intro and Jack the Ripper."""
    ripper = Scenario(
        name="jack-the-ripper",
        description="The uniqueness-axiom example: an unidentified murderer",
        database=jack_the_ripper_database(),
        queries=(
            parse_query("(x) . MURDERER(x)"),
            parse_query("(x) . LIVED_IN_LONDON(x)"),
            parse_query("(x) . ~MURDERER(x)"),
            parse_query("exists x. MURDERER(x) & LIVED_IN_LONDON(x)"),
        ),
    )
    return (employee_intro_scenario(), ripper)


def scenario_pool(scenarios: Iterable[Scenario]) -> list[tuple[str, str]]:
    """The (database name, query text) pairs a traffic stream draws from."""
    pool = []
    for scenario in scenarios:
        for query in scenario.queries:
            pool.append((scenario.name, query_to_text(query)))
    if not pool:
        raise ValueError("traffic needs at least one scenario with at least one query")
    return pool


def traffic_stream(
    n_requests: int,
    scenarios: Sequence[Scenario] | None = None,
    profile: TrafficProfile = TrafficProfile(),
    seed: int | None = None,
) -> list[QueryRequest]:
    """A reproducible stream of *n_requests* mixed query requests."""
    rng = random.Random(seed)
    pool = scenario_pool(default_scenarios() if scenarios is None else scenarios)
    hot = pool[: max(1, min(profile.hot_keys, len(pool)))]

    stream: list[QueryRequest] = []
    for __ in range(n_requests):
        database, query_text = rng.choice(hot) if rng.random() < profile.hot_fraction else rng.choice(pool)
        if rng.random() < profile.exact_fraction:
            method = "exact" if rng.random() < 0.5 else "both"
        else:
            method = "approx"
        engine = "tarski" if rng.random() < profile.tarski_fraction else "algebra"
        virtual_ne = rng.random() < profile.virtual_ne_fraction
        stream.append(QueryRequest(database, query_text, method, engine, virtual_ne))
    return stream


def batch_bursts(requests: Sequence[QueryRequest], burst_size: int) -> list[list[QueryRequest]]:
    """Chop a stream into the bursts a batching client would send together."""
    if burst_size < 1:
        raise ValueError("burst_size must be at least 1")
    return [list(requests[start:start + burst_size]) for start in range(0, len(requests), burst_size)]


def register_scenarios(service, scenarios: Iterable[Scenario] | None = None) -> tuple[str, ...]:
    """Register every scenario's database on *service*; returns the names."""
    names = []
    for scenario in default_scenarios() if scenarios is None else scenarios:
        service.register(scenario.name, scenario.database)
        names.append(scenario.name)
    return tuple(names)

"""Random workload generators.

The paper has no benchmark datasets, so the experiments draw on synthetic
workloads with controllable size and "unknown-value" fraction:

* :func:`random_cw_database` — random facts over a given schema, with a
  chosen fraction of constant pairs left without a uniqueness axiom
  (i.e. unknown identities);
* :func:`random_positive_query` / :func:`random_query` — random queries of a
  bounded depth over a schema, either purely positive (the Theorem 13 class)
  or with negation;
* :func:`employee_database` — the employee/department/manager scenario the
  paper's introduction uses to motivate queries, scaled by a size parameter
  and with "null" managers modelled as unknown constants.

All generators take an explicit seed so experiments are reproducible.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from repro.logic.builders import V
from repro.logic.formulas import (
    And,
    Atom,
    Equals,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
)
from repro.logic.queries import Query
from repro.logic.terms import Constant, Term, Variable
from repro.logical.database import CWDatabase

__all__ = [
    "random_cw_database",
    "random_query",
    "random_positive_query",
    "employee_database",
    "EMPLOYEE_PREDICATES",
]


def random_cw_database(
    n_constants: int,
    predicates: Mapping[str, int],
    n_facts: int,
    unknown_fraction: float = 0.3,
    seed: int | None = None,
) -> CWDatabase:
    """Random CW logical database.

    ``unknown_fraction`` is the probability that a pair of distinct constants
    is left *without* a uniqueness axiom (an unknown identity); 0.0 gives a
    fully specified database, 1.0 a database with no uniqueness axioms.
    """
    if n_constants < 1:
        raise ValueError("need at least one constant")
    rng = random.Random(seed)
    constants = tuple(f"c{i}" for i in range(n_constants))

    facts: dict[str, set[tuple[str, ...]]] = {name: set() for name in predicates}
    predicate_names = sorted(predicates)
    for __ in range(n_facts):
        name = rng.choice(predicate_names)
        row = tuple(rng.choice(constants) for __ in range(predicates[name]))
        facts[name].add(row)

    unequal = []
    for i, left in enumerate(constants):
        for right in constants[i + 1:]:
            if rng.random() >= unknown_fraction:
                unequal.append((left, right))

    return CWDatabase(constants, dict(predicates), facts, unequal)


def _random_term(variables: Sequence[Variable], constants: Sequence[str], rng: random.Random) -> Term:
    if constants and rng.random() < 0.25:
        return Constant(rng.choice(list(constants)))
    return rng.choice(list(variables))


def _random_atom(
    predicates: Mapping[str, int],
    variables: Sequence[Variable],
    constants: Sequence[str],
    rng: random.Random,
) -> Formula:
    name = rng.choice(sorted(predicates))
    args = tuple(_random_term(variables, constants, rng) for __ in range(predicates[name]))
    return Atom(name, args)


def _random_formula(
    depth: int,
    predicates: Mapping[str, int],
    variables: list[Variable],
    constants: Sequence[str],
    rng: random.Random,
    allow_negation: bool,
) -> Formula:
    if depth <= 0 or rng.random() < 0.3:
        if rng.random() < 0.15 and len(variables) >= 2:
            left, right = rng.sample(variables, 2)
            atom: Formula = Equals(left, right)
        else:
            atom = _random_atom(predicates, variables, constants, rng)
        if allow_negation and rng.random() < 0.4:
            return Not(atom)
        return atom
    choice = rng.random()
    if choice < 0.35:
        return And(
            (
                _random_formula(depth - 1, predicates, variables, constants, rng, allow_negation),
                _random_formula(depth - 1, predicates, variables, constants, rng, allow_negation),
            )
        )
    if choice < 0.7:
        return Or(
            (
                _random_formula(depth - 1, predicates, variables, constants, rng, allow_negation),
                _random_formula(depth - 1, predicates, variables, constants, rng, allow_negation),
            )
        )
    # Quantify a fresh variable.
    fresh = Variable(f"q{len(variables)}")
    variables.append(fresh)
    body = _random_formula(depth - 1, predicates, variables, constants, rng, allow_negation)
    variables.pop()
    quantifier = Exists if rng.random() < 0.6 else Forall
    return quantifier((fresh,), body)


def random_query(
    predicates: Mapping[str, int],
    constants: Sequence[str] = (),
    arity: int = 1,
    depth: int = 2,
    seed: int | None = None,
    allow_negation: bool = True,
) -> Query:
    """Random query with *arity* head variables and bounded formula depth."""
    rng = random.Random(seed)
    head = [V(f"x{i}") for i in range(arity)]
    variables = list(head)
    formula = _random_formula(depth, predicates, variables, constants, rng, allow_negation)
    return Query(tuple(head), formula)


def random_positive_query(
    predicates: Mapping[str, int],
    constants: Sequence[str] = (),
    arity: int = 1,
    depth: int = 2,
    seed: int | None = None,
) -> Query:
    """Random *positive* query (no negation anywhere) — the Theorem 13 class."""
    return random_query(predicates, constants, arity, depth, seed, allow_negation=False)


#: Schema of the employee scenario from the paper's introduction.
EMPLOYEE_PREDICATES: dict[str, int] = {"EMP_DEPT": 2, "DEPT_MGR": 2, "EMP_SAL": 2}

_SALARY_BANDS = ("low", "mid", "high")


def employee_database(
    n_employees: int,
    n_departments: int | None = None,
    unknown_manager_fraction: float = 0.25,
    seed: int | None = None,
) -> CWDatabase:
    """The employee/department/manager workload of the paper's introduction.

    Every employee belongs to a department (``EMP_DEPT``) and has a salary
    band (``EMP_SAL``); every department has a manager (``DEPT_MGR``).  A
    fraction of the managers are *null values*: fresh constants whose
    identity is unknown (no uniqueness axioms link them to the named
    employees), which is exactly the incomplete-information situation the
    paper's logical databases are designed to model.
    """
    rng = random.Random(seed)
    if n_departments is None:
        n_departments = max(1, n_employees // 5)
    employees = [f"emp{i}" for i in range(n_employees)]
    departments = [f"dept{i}" for i in range(n_departments)]

    facts: dict[str, set[tuple[str, ...]]] = {"EMP_DEPT": set(), "DEPT_MGR": set(), "EMP_SAL": set()}
    null_managers: list[str] = []
    known_constants = employees + departments + list(_SALARY_BANDS)

    for index, employee in enumerate(employees):
        department = departments[index % n_departments]
        facts["EMP_DEPT"].add((employee, department))
        facts["EMP_SAL"].add((employee, rng.choice(_SALARY_BANDS)))

    for index, department in enumerate(departments):
        if employees and rng.random() >= unknown_manager_fraction:
            manager = rng.choice(employees)
        else:
            manager = f"mgr_null{index}"
            null_managers.append(manager)
        facts["DEPT_MGR"].add((department, manager))

    constants = tuple(known_constants + null_managers)

    # Known constants are pairwise distinct; null managers have no uniqueness
    # axioms at all (their identity could coincide with any employee or with
    # each other).
    unequal = []
    for i, left in enumerate(known_constants):
        for right in known_constants[i + 1:]:
            unequal.append((left, right))

    return CWDatabase(constants, dict(EMPLOYEE_PREDICATES), facts, unequal)

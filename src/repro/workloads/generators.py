"""Random workload generators.

The paper has no benchmark datasets, so the experiments draw on synthetic
workloads with controllable size and "unknown-value" fraction:

* :func:`random_cw_database` — random facts over a given schema, with a
  chosen fraction of constant pairs left without a uniqueness axiom
  (i.e. unknown identities);
* :func:`random_positive_query` / :func:`random_query` — random queries of a
  bounded depth over a schema, either purely positive (the Theorem 13 class)
  or with negation;
* :func:`employee_database` — the employee/department/manager scenario the
  paper's introduction uses to motivate queries, scaled by a size parameter
  and with "null" managers modelled as unknown constants.

All generators take an explicit seed so experiments are reproducible.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from repro.logic.builders import V
from repro.logic.formulas import (
    And,
    Atom,
    Equals,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
)
from repro.logic.queries import Query
from repro.logic.terms import Constant, Term, Variable
from repro.logical.database import CWDatabase

__all__ = [
    "random_cw_database",
    "random_query",
    "random_positive_query",
    "join_chain_query",
    "join_heavy_workload",
    "employee_database",
    "EMPLOYEE_PREDICATES",
    "skewed_star_database",
    "skewed_adaptive_workload",
    "SKEWED_PREDICATES",
]


def random_cw_database(
    n_constants: int,
    predicates: Mapping[str, int],
    n_facts: int,
    unknown_fraction: float = 0.3,
    seed: int | None = None,
) -> CWDatabase:
    """Random CW logical database.

    ``unknown_fraction`` is the probability that a pair of distinct constants
    is left *without* a uniqueness axiom (an unknown identity); 0.0 gives a
    fully specified database, 1.0 a database with no uniqueness axioms.
    """
    if n_constants < 1:
        raise ValueError("need at least one constant")
    rng = random.Random(seed)
    constants = tuple(f"c{i}" for i in range(n_constants))

    facts: dict[str, set[tuple[str, ...]]] = {name: set() for name in predicates}
    predicate_names = sorted(predicates)
    for __ in range(n_facts):
        name = rng.choice(predicate_names)
        row = tuple(rng.choice(constants) for __ in range(predicates[name]))
        facts[name].add(row)

    unequal = []
    for i, left in enumerate(constants):
        for right in constants[i + 1:]:
            if rng.random() >= unknown_fraction:
                unequal.append((left, right))

    return CWDatabase(constants, dict(predicates), facts, unequal)


def _random_term(variables: Sequence[Variable], constants: Sequence[str], rng: random.Random) -> Term:
    if constants and rng.random() < 0.25:
        return Constant(rng.choice(list(constants)))
    return rng.choice(list(variables))


def _random_atom(
    predicates: Mapping[str, int],
    variables: Sequence[Variable],
    constants: Sequence[str],
    rng: random.Random,
) -> Formula:
    name = rng.choice(sorted(predicates))
    args = tuple(_random_term(variables, constants, rng) for __ in range(predicates[name]))
    return Atom(name, args)


def _random_formula(
    depth: int,
    predicates: Mapping[str, int],
    variables: list[Variable],
    constants: Sequence[str],
    rng: random.Random,
    allow_negation: bool,
) -> Formula:
    if depth <= 0 or rng.random() < 0.3:
        if rng.random() < 0.15 and len(variables) >= 2:
            left, right = rng.sample(variables, 2)
            atom: Formula = Equals(left, right)
        else:
            atom = _random_atom(predicates, variables, constants, rng)
        if allow_negation and rng.random() < 0.4:
            return Not(atom)
        return atom
    choice = rng.random()
    if choice < 0.35:
        return And(
            (
                _random_formula(depth - 1, predicates, variables, constants, rng, allow_negation),
                _random_formula(depth - 1, predicates, variables, constants, rng, allow_negation),
            )
        )
    if choice < 0.7:
        return Or(
            (
                _random_formula(depth - 1, predicates, variables, constants, rng, allow_negation),
                _random_formula(depth - 1, predicates, variables, constants, rng, allow_negation),
            )
        )
    # Quantify a fresh variable.
    fresh = Variable(f"q{len(variables)}")
    variables.append(fresh)
    body = _random_formula(depth - 1, predicates, variables, constants, rng, allow_negation)
    variables.pop()
    quantifier = Exists if rng.random() < 0.6 else Forall
    return quantifier((fresh,), body)


def random_query(
    predicates: Mapping[str, int],
    constants: Sequence[str] = (),
    arity: int = 1,
    depth: int = 2,
    seed: int | None = None,
    allow_negation: bool = True,
) -> Query:
    """Random query with *arity* head variables and bounded formula depth."""
    rng = random.Random(seed)
    head = [V(f"x{i}") for i in range(arity)]
    variables = list(head)
    formula = _random_formula(depth, predicates, variables, constants, rng, allow_negation)
    return Query(tuple(head), formula)


def random_positive_query(
    predicates: Mapping[str, int],
    constants: Sequence[str] = (),
    arity: int = 1,
    depth: int = 2,
    seed: int | None = None,
) -> Query:
    """Random *positive* query (no negation anywhere) — the Theorem 13 class."""
    return random_query(predicates, constants, arity, depth, seed, allow_negation=False)


def join_chain_query(
    predicates: Mapping[str, int],
    length: int = 3,
    closing_constant: str | None = None,
    shuffle: bool = False,
    seed: int | None = None,
    pattern: Sequence[str] | None = None,
) -> Query:
    """A join chain: ``(x0, xL) . exists x1..x(L-1). P1(x0,x1) & ... & PL(x(L-1),xL)``.

    Chains are the canonical join-heavy workload: every conjunct shares one
    variable with its neighbour, so evaluation cost is dominated by the join
    order the engine picks.  With *closing_constant* the last atom's second
    argument is that constant instead of ``xL`` (and the head is ``(x0,)``),
    making the tail highly selective — exactly the case where starting from
    the wrong end is expensive.  With ``shuffle=True`` the conjuncts appear
    in random order, the way a declarative query author writes them: a
    syntax-directed engine then joins adjacent-but-disconnected atoms into
    cross products, while a reordering optimizer recovers the connected
    order.  Only binary predicates are used; *pattern* fixes the exact
    predicate sequence (and hence the chain length) — useful when the schema
    is "typed" and only certain compositions produce nonempty joins.
    """
    binary = sorted(name for name, arity in predicates.items() if arity == 2)
    if not binary:
        raise ValueError("join_chain_query needs at least one binary predicate")
    if pattern is not None:
        unknown = [name for name in pattern if predicates.get(name) != 2]
        if unknown:
            raise ValueError(f"pattern names non-binary or undeclared predicates: {unknown}")
        length = len(pattern)
    if length < 1:
        raise ValueError("a join chain needs at least one atom")
    rng = random.Random(seed)
    variables = [V(f"x{i}") for i in range(length + 1)]
    atoms: list[Formula] = []
    for position in range(length):
        predicate = pattern[position] if pattern is not None else binary[rng.randrange(len(binary))]
        left: Term = variables[position]
        right: Term = variables[position + 1]
        if position == length - 1 and closing_constant is not None:
            right = Constant(closing_constant)
        atoms.append(Atom(predicate, (left, right)))
    if shuffle:
        rng.shuffle(atoms)
    body: Formula = atoms[0] if len(atoms) == 1 else And(tuple(atoms))
    if closing_constant is None:
        head = (variables[0], variables[length])
        bound = tuple(variables[1:length])
    else:
        head = (variables[0],)
        bound = tuple(variables[1:length])
    if bound:
        body = Exists(bound, body)
    return Query(head, body)


def join_heavy_workload(
    predicates: Mapping[str, int] | None = None,
    constants: Sequence[str] = (),
    chains: int = 4,
    length: int = 3,
    seed: int | None = None,
) -> list[tuple[str, Query]]:
    """A named mix of join-heavy queries for optimizer benchmarks and tests.

    Contains plain chains, constant-closed chains (selective tails), a
    co-worker style self-join, and an equality-linking query whose naive
    plan is a filtered active-domain product.  All queries are positive, so
    the approximation is complete on them (Theorem 13) and the workload
    isolates pure join/execution cost.
    """
    if predicates is None:
        predicates = EMPLOYEE_PREDICATES
    rng = random.Random(seed)
    binary = sorted(name for name, arity in predicates.items() if arity == 2)
    if not binary:
        raise ValueError("join_heavy_workload needs at least one binary predicate")
    # On the employee schema, compose predicates so every join step is
    # nonempty: employee -EMP_DEPT-> department -DEPT_MGR-> manager -> ...,
    # optionally ending at a salary band.  Other schemas fall back to random
    # predicate choices.
    typed = set(predicates) >= set(EMPLOYEE_PREDICATES)

    def chain_pattern(chain_length: int, close_with_salary: bool) -> tuple[str, ...] | None:
        if not typed:
            return None
        cycle = ("EMP_DEPT", "DEPT_MGR")
        names = [cycle[i % 2] for i in range(chain_length)]
        if close_with_salary and chain_length >= 2 and chain_length % 2 == 0:
            names[-1] = "EMP_SAL"
        return tuple(names)

    workload: list[tuple[str, Query]] = []
    for index in range(chains):
        workload.append(
            (
                f"chain{index}",
                join_chain_query(
                    predicates,
                    length,
                    shuffle=True,
                    seed=rng.randrange(1 << 30),
                    pattern=chain_pattern(length, close_with_salary=index % 2 == 1),
                ),
            )
        )
        if constants:
            closing = constants[rng.randrange(len(constants))]
            workload.append(
                (
                    f"chain{index}_closed",
                    join_chain_query(
                        predicates,
                        length,
                        closing_constant=closing,
                        shuffle=True,
                        seed=rng.randrange(1 << 30),
                        pattern=chain_pattern(length, close_with_salary=False),
                    ),
                )
            )
    # Co-occurrence (self-join): pairs sharing a right-hand neighbour.  On
    # the employee schema, join the large membership relation and filter on
    # salary band; generically, fall back to the first binary predicates.
    first = "EMP_DEPT" if typed else binary[0]
    filter_predicate = "EMP_SAL" if typed else binary[min(1, len(binary) - 1)]
    x, y, z = V("x"), V("y"), V("z")
    workload.append(
        ("co_occurrence", Query((x, y), Exists((z,), And((Atom(first, (x, z)), Atom(first, (y, z)))))))
    )
    if constants:
        # Filtered co-occurrence: the selective constant atom appears last in
        # the written order, first in a good join order.
        anchor = constants[rng.randrange(len(constants))]
        workload.append(
            (
                "co_occurrence_filtered",
                Query(
                    (x, y),
                    Exists(
                        (z,),
                        And(
                            (
                                Atom(first, (x, z)),
                                Atom(first, (y, z)),
                                Atom(filter_predicate, (x, Constant(anchor))),
                            )
                        ),
                    ),
                ),
            )
        )
    # Equality link: naively an active-domain product filtered by x = y.
    workload.append(
        (
            "equality_link",
            Query((x, y), And((Exists((z,), Atom(first, (x, z))), Equals(x, y)))),
        )
    )
    return workload


#: Schema of the skewed star workload: two fact relations linked through a
#: shared key, plus an event log carrying a rare selective tag.
SKEWED_PREDICATES: dict[str, int] = {"FACT_A": 2, "FACT_B": 2, "EVENT": 2}


def skewed_star_database(
    n_entities: int = 260,
    n_links: int = 80,
    n_hubs: int = 6,
    n_targets: int = 15,
    facts_per_entity: int = 8,
    n_tags: int = 8,
    n_hot: int = 4,
    hub_fraction: float = 0.3,
    seed: int | None = None,
) -> CWDatabase:
    """A skewed join-heavy instance where uniformity assumptions mislead.

    ``FACT_A(x, z)`` links entities to link values, of which the first
    *n_hubs* are **hubs** carrying ``hub_fraction`` of all links;
    ``FACT_B(z, y)`` fans every hub out to *every* target but gives tail
    links a single target each.  ``EVENT(x, tag)`` is an event log: every
    entity carries every one of the ``n_tags - 1`` dense tags, and only
    *n_hot* entities additionally carry ``'hot'`` — so the uniform
    per-column model estimates a ``tag='hot'`` selection at roughly
    ``n_entities * (n_tags - 1) / n_tags`` rows (~*n_entities*, badly wrong)
    and, as long as ``FACT_B`` stays smaller than that, a static cost-based
    optimizer misorders queries anchored on the hot tag: it joins the fact
    relations first and streams a hub-blown intermediate.  Hot entities link
    only to tail values, keeping the true answers small.  This is the
    workload shape adaptive execution (feedback-driven re-optimization +
    semi-join reduction) is designed to repair.

    The database is fully specified (every pair of constants distinct), so
    the Section 5 approximation is exact on it and every engine must agree.
    """
    rng = random.Random(seed)
    entities = [f"x{i}" for i in range(n_entities)]
    links = [f"z{i}" for i in range(n_links)]
    hubs = links[:n_hubs]
    tails = links[n_hubs:]
    targets = [f"y{i}" for i in range(n_targets)]
    tags = ["hot"] + [f"tag{i}" for i in range(max(n_tags - 1, 1))]
    hot = entities[:n_hot]

    facts: dict[str, set[tuple[str, ...]]] = {"FACT_A": set(), "FACT_B": set(), "EVENT": set()}
    for entity in entities:
        is_hot = entity in hot
        for __ in range(facts_per_entity):
            if not is_hot and rng.random() < hub_fraction:
                facts["FACT_A"].add((entity, rng.choice(hubs)))
            else:
                facts["FACT_A"].add((entity, rng.choice(tails)))
        if is_hot:
            facts["EVENT"].add((entity, "hot"))
        for tag in tags[1:]:
            facts["EVENT"].add((entity, tag))
    for hub in hubs:
        for target in targets:
            facts["FACT_B"].add((hub, target))
    for index, tail in enumerate(tails):
        facts["FACT_B"].add((tail, targets[index % n_targets]))

    constants = tuple(entities + links + targets + tags)
    return CWDatabase(constants, dict(SKEWED_PREDICATES), facts, ()).fully_specified()


def skewed_adaptive_workload() -> list[tuple[str, Query]]:
    """Queries over :func:`skewed_star_database` that reward adaptivity.

    Every query anchors on the rare ``'hot'`` tag whose selectivity the
    uniform model overestimates ~100-fold, so the static optimizer either
    misorders the joins (the chains) or skips semi-join reduction it should
    have applied (the self-joins).  All queries are positive, hence complete
    for the approximation (Theorem 13), and small-answered, so correctness
    checks against ground truth stay cheap.
    """
    x, w, y, z, z2 = V("x"), V("w"), V("y"), V("z"), V("z2")
    hot = Constant("hot")
    workload: list[tuple[str, Query]] = [
        (
            "hot_chain",
            Query(
                (x, y),
                Exists(
                    (z,),
                    And((Atom("FACT_A", (x, z)), Atom("FACT_B", (z, y)), Atom("EVENT", (x, hot)))),
                ),
            ),
        ),
        (
            "hot_chain_shuffled",
            Query(
                (y,),
                Exists(
                    (x, z),
                    And((Atom("FACT_B", (z, y)), Atom("EVENT", (x, hot)), Atom("FACT_A", (x, z)))),
                ),
            ),
        ),
        (
            "hot_co_links",
            Query(
                (x, w),
                Exists(
                    (z,),
                    And((Atom("FACT_A", (x, z)), Atom("FACT_A", (w, z)), Atom("EVENT", (x, hot)))),
                ),
            ),
        ),
        (
            "hot_targets_shared",
            Query(
                (x, y),
                Exists(
                    (z, z2),
                    And(
                        (
                            Atom("EVENT", (x, hot)),
                            Atom("FACT_A", (x, z)),
                            Atom("FACT_B", (z, y)),
                            Atom("FACT_B", (z2, y)),
                        )
                    ),
                ),
            ),
        ),
        (
            "hot_link_targets",
            Query(
                (z, y),
                Exists(
                    (x,),
                    And((Atom("EVENT", (x, hot)), Atom("FACT_A", (x, z)), Atom("FACT_B", (z, y)))),
                ),
            ),
        ),
    ]
    return workload


#: Schema of the employee scenario from the paper's introduction.
EMPLOYEE_PREDICATES: dict[str, int] = {"EMP_DEPT": 2, "DEPT_MGR": 2, "EMP_SAL": 2}

_SALARY_BANDS = ("low", "mid", "high")


def employee_database(
    n_employees: int,
    n_departments: int | None = None,
    unknown_manager_fraction: float = 0.25,
    seed: int | None = None,
) -> CWDatabase:
    """The employee/department/manager workload of the paper's introduction.

    Every employee belongs to a department (``EMP_DEPT``) and has a salary
    band (``EMP_SAL``); every department has a manager (``DEPT_MGR``).  A
    fraction of the managers are *null values*: fresh constants whose
    identity is unknown (no uniqueness axioms link them to the named
    employees), which is exactly the incomplete-information situation the
    paper's logical databases are designed to model.
    """
    rng = random.Random(seed)
    if n_departments is None:
        n_departments = max(1, n_employees // 5)
    employees = [f"emp{i}" for i in range(n_employees)]
    departments = [f"dept{i}" for i in range(n_departments)]

    facts: dict[str, set[tuple[str, ...]]] = {"EMP_DEPT": set(), "DEPT_MGR": set(), "EMP_SAL": set()}
    null_managers: list[str] = []
    known_constants = employees + departments + list(_SALARY_BANDS)

    for index, employee in enumerate(employees):
        department = departments[index % n_departments]
        facts["EMP_DEPT"].add((employee, department))
        facts["EMP_SAL"].add((employee, rng.choice(_SALARY_BANDS)))

    for index, department in enumerate(departments):
        if employees and rng.random() >= unknown_manager_fraction:
            manager = rng.choice(employees)
        else:
            manager = f"mgr_null{index}"
            null_managers.append(manager)
        facts["DEPT_MGR"].add((department, manager))

    constants = tuple(known_constants + null_managers)

    # Known constants are pairwise distinct; null managers have no uniqueness
    # axioms at all (their identity could coincide with any employee or with
    # each other).
    unequal = []
    for i, left in enumerate(known_constants):
        for right in known_constants[i + 1:]:
            unequal.append((left, right))

    return CWDatabase(constants, dict(EMPLOYEE_PREDICATES), facts, unequal)

"""Synthetic workloads and named scenarios for experiments and examples."""

from repro.workloads.generators import (
    EMPLOYEE_PREDICATES,
    employee_database,
    random_cw_database,
    random_positive_query,
    random_query,
)
from repro.workloads.scenarios import (
    Scenario,
    employee_intro_scenario,
    intro_query,
    jack_the_ripper_database,
    socrates_database,
)
from repro.workloads.traffic import (
    TrafficProfile,
    batch_bursts,
    default_scenarios,
    register_scenarios,
    traffic_stream,
)

__all__ = [
    "random_cw_database",
    "random_query",
    "random_positive_query",
    "employee_database",
    "EMPLOYEE_PREDICATES",
    "Scenario",
    "socrates_database",
    "jack_the_ripper_database",
    "employee_intro_scenario",
    "intro_query",
    "TrafficProfile",
    "default_scenarios",
    "traffic_stream",
    "batch_bursts",
    "register_scenarios",
]

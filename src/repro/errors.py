"""Exception hierarchy for the ``repro`` library.

All exceptions raised deliberately by the library derive from
:class:`ReproError`, so callers can catch a single base class.  The
sub-classes mirror the main subsystems: the logic substrate, physical
databases, closed-world logical databases, and the evaluation engines.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class FormulaError(ReproError):
    """A formula is structurally invalid (bad arity, wrong node types...)."""


class ParseError(ReproError):
    """The query-language parser rejected its input.

    Attributes
    ----------
    position:
        Zero-based character offset at which the error was detected, or
        ``None`` when the offset is not meaningful (e.g. unexpected end of
        input is reported at ``len(text)``).
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message if position is None else f"{message} (at position {position})")
        self.position = position


class VocabularyError(ReproError):
    """A formula, query or database does not match its relational vocabulary."""


class DatabaseError(ReproError):
    """A physical or logical database is malformed."""


class EvaluationError(ReproError):
    """Query evaluation could not proceed (unbound variable, unknown symbol...)."""


class UnsupportedFormulaError(EvaluationError):
    """An evaluator met a formula kind it cannot handle.

    Raised for instance when the plain first-order evaluator encounters a
    second-order quantifier, or when the algebra compiler meets an unsafe
    (non range-restricted) sub-formula.
    """


class CapacityError(EvaluationError):
    """A combinatorial enumeration would exceed the configured safety bound.

    Exact certain-answer evaluation and second-order evaluation are
    exponential by nature (that intractability is the point of the paper);
    the evaluators refuse to silently launch astronomically large
    enumerations and raise this exception instead.
    """


class UnboundParameterError(EvaluationError):
    """A query template reached evaluation with unbound ``$name`` parameters.

    Parameters type as constants for every *syntactic* purpose, but they
    denote no value until a prepared-query binding substitutes one; an
    engine asked to evaluate an unbound template refuses rather than guess.
    """


class ReductionError(ReproError):
    """A complexity reduction received an input outside its expected shape."""


class ServiceError(ReproError):
    """The query service rejected a request (unknown database, bad option...)."""


class UnknownDatabaseError(ServiceError):
    """A request named a database snapshot that is not registered.

    Distinguished from plain :class:`ServiceError` so the HTTP front-end can
    map it to 404 without inspecting error messages.
    """


class ServiceClosedError(ServiceError):
    """An operation was attempted on a :class:`QueryService` after ``close()``.

    Closing a service is terminal: the shared batch thread pool is shut down
    and must not be silently recreated (that used to leak a fresh pool on
    every post-close batch).  Both a repeated ``close()`` and a post-close
    ``batch()`` raise this error.
    """


class ServiceUnavailableError(ServiceError):
    """The remote service could not be reached at the transport level.

    Raised by the HTTP client for connection refusals, DNS failures and
    timeouts — situations where no protocol-level answer exists at all.
    Distinguished from plain :class:`ServiceError` so the cluster router can
    tell "this worker is down, fail over to a replica" apart from "the worker
    answered with an application error".

    Attributes
    ----------
    sent_request:
        Whether the request had been handed to the transport before the
        failure.  ``False`` means the server provably never saw the request
        (connect refused, DNS failure, send-side framing error) — always
        safe to retry anywhere.  ``True`` means the failure is *ambiguous*
        (reset or timeout while awaiting the response): the server may have
        executed the request, so a retry policy must only replay requests
        that are idempotent.
    """

    def __init__(self, message: str, *, sent_request: bool = True) -> None:
        super().__init__(message)
        self.sent_request = sent_request


class DeadlineExceededError(ServiceError):
    """A request overran its propagated deadline and was abandoned.

    Raised server-side at engine/executor checkpoints (so a doomed query
    stops burning CPU) and router-side when the remaining budget cannot
    cover another attempt.  Mapped to HTTP 504 and wire code
    ``deadline_exceeded``.  Deliberately *not* retried by the router: the
    budget is the client's to respend.
    """


class OverloadedError(ServiceError):
    """The server shed this request at admission rather than queue it.

    Signals transient backpressure, not failure: the request never reached
    the engine, so it is always safe to retry after a pause.  Mapped to
    HTTP 503 (with a ``Retry-After`` hint) and wire code ``overloaded``.

    Attributes
    ----------
    retry_after_seconds:
        The server's pacing hint, surfaced as the ``Retry-After`` response
        header; ``None`` when the server offered none.
    """

    def __init__(self, message: str, *, retry_after_seconds: float | None = None) -> None:
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class ProtocolError(ServiceError):
    """A wire payload does not conform to the JSON service protocol."""


class ClusterError(ServiceError):
    """The cluster layer cannot satisfy a request (no live replica, bad layout...)."""


class UnknownStatementError(ServiceError):
    """A request named a prepared-statement id the service does not hold.

    Statements live in server memory: a restarted server (or a failover to
    a different router) forgets them, and clients are expected to re-prepare
    on receiving this error.
    """


class UnknownCursorError(ServiceError):
    """A fetch named a streaming cursor that does not exist (or was evicted).

    Cursors are bounded server-side state; an evicted or unknown cursor
    means the client must re-execute the statement to stream again.
    """


class SnapshotStoreError(ReproError):
    """The persistent snapshot store is malformed or an operation on it failed."""


# Wire error codes --------------------------------------------------------------

#: Stable code → exception class, the contract between ``ErrorResponse.code``
#: and the typed exception a client raises.  Codes are part of the wire
#: protocol: never change an existing code, only add new ones.  Order is by
#: specificity — :func:`wire_code` walks an exception's MRO, so a subclass
#: maps to its own code and unknown subclasses fall back to their parent's.
WIRE_ERROR_CODES: dict[str, type] = {
    "formula": FormulaError,
    "parse": ParseError,
    "vocabulary": VocabularyError,
    "database": DatabaseError,
    "evaluation": EvaluationError,
    "unsupported_formula": UnsupportedFormulaError,
    "capacity": CapacityError,
    "unbound_parameter": UnboundParameterError,
    "reduction": ReductionError,
    "service": ServiceError,
    "unknown_database": UnknownDatabaseError,
    "service_closed": ServiceClosedError,
    "unavailable": ServiceUnavailableError,
    "deadline_exceeded": DeadlineExceededError,
    "overloaded": OverloadedError,
    "protocol": ProtocolError,
    "cluster": ClusterError,
    "unknown_statement": UnknownStatementError,
    "unknown_cursor": UnknownCursorError,
    "snapshot_store": SnapshotStoreError,
    "error": ReproError,
}

_CLASS_TO_CODE = {cls: code for code, cls in WIRE_ERROR_CODES.items()}


def wire_code(error: BaseException) -> str:
    """The stable wire code for *error* (nearest registered ancestor class)."""
    for cls in type(error).__mro__:
        code = _CLASS_TO_CODE.get(cls)
        if code is not None:
            return code
    return "error"


def error_for_code(code: str, message: str) -> ReproError:
    """Rebuild the typed exception a wire error code denotes.

    Unknown codes (a newer server) degrade to plain :class:`ServiceError`
    rather than failing: the message still carries the server's diagnosis.
    """
    cls = WIRE_ERROR_CODES.get(code, ServiceError)
    if cls is ParseError:
        # ParseError's constructor takes (message, position); the position
        # is already baked into the formatted message on the wire.
        return ParseError(message)
    return cls(message)

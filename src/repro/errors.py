"""Exception hierarchy for the ``repro`` library.

All exceptions raised deliberately by the library derive from
:class:`ReproError`, so callers can catch a single base class.  The
sub-classes mirror the main subsystems: the logic substrate, physical
databases, closed-world logical databases, and the evaluation engines.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class FormulaError(ReproError):
    """A formula is structurally invalid (bad arity, wrong node types...)."""


class ParseError(ReproError):
    """The query-language parser rejected its input.

    Attributes
    ----------
    position:
        Zero-based character offset at which the error was detected, or
        ``None`` when the offset is not meaningful (e.g. unexpected end of
        input is reported at ``len(text)``).
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message if position is None else f"{message} (at position {position})")
        self.position = position


class VocabularyError(ReproError):
    """A formula, query or database does not match its relational vocabulary."""


class DatabaseError(ReproError):
    """A physical or logical database is malformed."""


class EvaluationError(ReproError):
    """Query evaluation could not proceed (unbound variable, unknown symbol...)."""


class UnsupportedFormulaError(EvaluationError):
    """An evaluator met a formula kind it cannot handle.

    Raised for instance when the plain first-order evaluator encounters a
    second-order quantifier, or when the algebra compiler meets an unsafe
    (non range-restricted) sub-formula.
    """


class CapacityError(EvaluationError):
    """A combinatorial enumeration would exceed the configured safety bound.

    Exact certain-answer evaluation and second-order evaluation are
    exponential by nature (that intractability is the point of the paper);
    the evaluators refuse to silently launch astronomically large
    enumerations and raise this exception instead.
    """


class ReductionError(ReproError):
    """A complexity reduction received an input outside its expected shape."""


class ServiceError(ReproError):
    """The query service rejected a request (unknown database, bad option...)."""


class UnknownDatabaseError(ServiceError):
    """A request named a database snapshot that is not registered.

    Distinguished from plain :class:`ServiceError` so the HTTP front-end can
    map it to 404 without inspecting error messages.
    """


class ServiceClosedError(ServiceError):
    """An operation was attempted on a :class:`QueryService` after ``close()``.

    Closing a service is terminal: the shared batch thread pool is shut down
    and must not be silently recreated (that used to leak a fresh pool on
    every post-close batch).  Both a repeated ``close()`` and a post-close
    ``batch()`` raise this error.
    """


class ServiceUnavailableError(ServiceError):
    """The remote service could not be reached at the transport level.

    Raised by the urllib client for connection refusals, DNS failures and
    timeouts — situations where no protocol-level answer exists at all.
    Distinguished from plain :class:`ServiceError` so the cluster router can
    tell "this worker is down, fail over to a replica" apart from "the worker
    answered with an application error".
    """


class ProtocolError(ServiceError):
    """A wire payload does not conform to the JSON service protocol."""


class ClusterError(ServiceError):
    """The cluster layer cannot satisfy a request (no live replica, bad layout...)."""


class SnapshotStoreError(ReproError):
    """The persistent snapshot store is malformed or an operation on it failed."""

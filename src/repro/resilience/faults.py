"""Deterministic, seeded fault injection for transports and backends.

A :class:`FaultPlan` is a *script of outages*: each transport operation
asks the plan whether (and how) to misbehave via :meth:`FaultPlan.draw`,
and the plan answers from a global operation counter — so a given seed and
configuration always injects the same faults at the same operations, and a
test that failed under chaos replays bit-for-bit.

Three layers of scripting, highest priority first:

1. ``schedule`` — an exact mapping ``{operation_index: kind}``; "operation
   250 gets a garbled response" stays true no matter what the rates say.
2. ``windows`` — ``(start, stop, kind)`` half-open index ranges; the
   natural way to script a kill window ("worker refuses every connection
   for operations 100–200") or a flapping worker (alternating windows).
3. ``rates`` — per-kind probabilities drawn from a ``random.Random(seed)``
   stream advanced once per operation, for background noise.

The fault taxonomy (``FAULT_KINDS``):

- ``refuse`` — connection refused before anything is sent; the server
  provably never saw the request (``sent_request=False``).
- ``drop`` — the connection dies *after* the request went out; the server
  may have executed it (``sent_request=True`` — the ambiguous case retry
  policies must respect).
- ``delay`` — a latency spike before the response.
- ``trickle`` — a slow-trickle response: a longer stall, modeling a
  response that arrives at a few bytes per second.
- ``garble`` — the response payload arrives malformed/truncated and fails
  to parse (:class:`~repro.errors.ProtocolError`); the server did the
  work, the client just cannot read the answer.

Injection points: :class:`ServiceClient(fault_plan=...)
<repro.service.client.ServiceClient>` injects at the HTTP round trip (or
process-wide via the ``REPRO_FAULTS`` environment spec), and
:class:`FaultingBackend` wraps any router backend — the deterministic
in-process form the chaos property tests and ``bench_e18`` use.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from random import Random
from typing import Mapping, Sequence

from repro.errors import ProtocolError, ServiceError, ServiceUnavailableError

__all__ = ["FAULT_KINDS", "Fault", "FaultPlan", "FaultingBackend"]

FAULT_KINDS = ("refuse", "drop", "delay", "trickle", "garble")

#: Default latency-spike and trickle stall durations (milliseconds).  Small
#: enough that seeded background noise does not balloon test wall-clock,
#: large enough to dominate a local round trip.
DEFAULT_DELAY_MS = 25.0
DEFAULT_TRICKLE_MS = 120.0


@dataclass(frozen=True)
class Fault:
    """One injected fault: what kind, and how long to stall (if timed)."""

    kind: str
    stall_ms: float = 0.0

    @property
    def timed(self) -> bool:
        return self.stall_ms > 0.0


class FaultPlan:
    """A thread-safe, deterministic schedule of faults.

    One plan owns one operation counter; concurrent callers interleave
    nondeterministically, but any *serial* replay (the form the property
    tests use) is exact.  ``limit`` stops all injection after that many
    operations — handy for "chaos for the first N requests, then heal".
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        rates: Mapping[str, float] | None = None,
        delay_ms: float = DEFAULT_DELAY_MS,
        trickle_ms: float = DEFAULT_TRICKLE_MS,
        windows: Sequence[tuple[int, int, str]] = (),
        schedule: Mapping[int, str] | None = None,
        limit: int | None = None,
    ) -> None:
        self.seed = seed
        self.rates = {kind: float(rate) for kind, rate in (rates or {}).items()}
        self.delay_ms = float(delay_ms)
        self.trickle_ms = float(trickle_ms)
        self.windows = tuple((int(start), int(stop), kind) for start, stop, kind in windows)
        self.schedule = dict(schedule or {})
        self.limit = limit
        for kind in list(self.rates) + [kind for _, _, kind in self.windows] + list(self.schedule.values()):
            if kind not in FAULT_KINDS:
                raise ServiceError(f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}")
        self._lock = threading.Lock()
        self._rng = Random(seed)
        self._operations = 0
        self._injected: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    # Drawing -------------------------------------------------------------------

    def draw(self) -> Fault | None:
        """The fault (or ``None``) for the next transport operation."""
        with self._lock:
            index = self._operations
            self._operations += 1
            # One uniform draw per operation keeps the random stream aligned
            # with the operation counter regardless of schedule/window hits,
            # so adding a window never reshuffles the background noise.
            toss = self._rng.random()
            kind = self._decide(index, toss)
            if kind is None:
                return None
            self._injected[kind] += 1
        if kind == "delay":
            return Fault(kind, self.delay_ms)
        if kind == "trickle":
            return Fault(kind, self.trickle_ms)
        return Fault(kind)

    def _decide(self, index: int, toss: float) -> str | None:
        if self.limit is not None and index >= self.limit:
            return None
        exact = self.schedule.get(index)
        if exact is not None:
            return exact
        for start, stop, kind in self.windows:
            if start <= index < stop:
                return kind
        cumulative = 0.0
        for kind in FAULT_KINDS:
            cumulative += self.rates.get(kind, 0.0)
            if toss < cumulative:
                return kind
        return None

    def preview(self, draws: int) -> list[tuple[int, str]]:
        """The deterministic schedule of the first *draws* operations.

        A pure function of the configuration — computed on a fresh random
        stream, never advancing this plan's live counter.  Powers
        ``repro chaos plan``.
        """
        rng = Random(self.seed)
        return [
            (index, kind)
            for index in range(draws)
            for kind in [self._decide(index, rng.random())]
            if kind is not None
        ]

    # Introspection -------------------------------------------------------------

    @property
    def operations(self) -> int:
        with self._lock:
            return self._operations

    def injected(self) -> dict[str, int]:
        """Per-kind counts of faults injected so far (live counters)."""
        with self._lock:
            return {kind: count for kind, count in self._injected.items() if count}

    # Parsing -------------------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse the compact text form used by ``REPRO_FAULTS`` and the CLI.

        Whitespace/comma-separated tokens::

            seed=7 refuse=0.05 drop=0.02 delay=0.1 trickle=0.01 garble=0.01
            delay_ms=40 trickle_ms=200 limit=500
            refuse@100-200        # window: refuse operations [100, 200)
            garble@250            # exact: operation 250 gets a garbled reply

        Example: ``REPRO_FAULTS="seed=3 drop=0.05 delay=0.2"``.
        """
        seed = 0
        rates: dict[str, float] = {}
        delay_ms = DEFAULT_DELAY_MS
        trickle_ms = DEFAULT_TRICKLE_MS
        windows: list[tuple[int, int, str]] = []
        schedule: dict[int, str] = {}
        limit: int | None = None
        for token in spec.replace(",", " ").split():
            try:
                if "@" in token:
                    kind, _, where = token.partition("@")
                    if kind not in FAULT_KINDS:
                        raise ValueError(f"unknown fault kind {kind!r}")
                    if "-" in where:
                        start, _, stop = where.partition("-")
                        windows.append((int(start), int(stop), kind))
                    else:
                        schedule[int(where)] = kind
                    continue
                key, _, value = token.partition("=")
                if not value:
                    raise ValueError("expected key=value")
                if key == "seed":
                    seed = int(value)
                elif key == "limit":
                    limit = int(value)
                elif key == "delay_ms":
                    delay_ms = float(value)
                elif key == "trickle_ms":
                    trickle_ms = float(value)
                elif key in FAULT_KINDS:
                    rates[key] = float(value)
                else:
                    raise ValueError(f"unknown key {key!r}")
            except ValueError as error:
                raise ServiceError(
                    f"bad REPRO_FAULTS token {token!r}: {error}"
                ) from None
        return cls(
            seed=seed,
            rates=rates,
            delay_ms=delay_ms,
            trickle_ms=trickle_ms,
            windows=windows,
            schedule=schedule,
            limit=limit,
        )

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        parts.extend(f"{kind}={rate:g}" for kind, rate in sorted(self.rates.items()))
        parts.extend(f"{kind}@{start}-{stop}" for start, stop, kind in self.windows)
        parts.extend(f"{kind}@{index}" for index, kind in sorted(self.schedule.items()))
        if self.limit is not None:
            parts.append(f"limit={self.limit}")
        return " ".join(parts)


class FaultingBackend:
    """Wrap a router backend so its query path misbehaves per a plan.

    The faults are injected around the *underlying* backend's ``execute``,
    reproducing each kind's true semantics: a ``refuse`` never reaches the
    backend (``sent_request=False``), while ``drop`` and ``garble`` let the
    backend do the work and then destroy the reply — exactly the ambiguous
    cases the router's retry policy must survive without changing answers.

    Health probes and metadata calls pass through unfaulted: chaos targets
    the query path, and an unreachable ``ping`` would just fight the
    router's revival logic nondeterministically.
    """

    def __init__(self, backend, plan: FaultPlan, *, sleeper=time.sleep) -> None:
        self._backend = backend
        self.plan = plan
        self._sleep = sleeper

    def execute(self, request):
        fault = self.plan.draw()
        if fault is None:
            return self._backend.execute(request)
        if fault.kind == "refuse":
            raise ServiceUnavailableError(
                f"injected fault: connection refused by {self.describe()}",
                sent_request=False,
            )
        if fault.kind == "drop":
            self._backend.execute(request)
            raise ServiceUnavailableError(
                f"injected fault: connection dropped mid-request by {self.describe()}",
                sent_request=True,
            )
        if fault.kind == "garble":
            self._backend.execute(request)
            raise ProtocolError(
                f"injected fault: truncated response payload from {self.describe()}"
            )
        # delay / trickle: stall, then answer correctly.
        self._sleep(fault.stall_ms / 1000.0)
        return self._backend.execute(request)

    # Pass-throughs --------------------------------------------------------------

    def describe(self) -> str:
        describe = getattr(self._backend, "describe", None)
        if callable(describe):
            return f"faulting({describe()})"
        return f"faulting({self._backend!r})"

    def __getattr__(self, name: str):
        return getattr(self._backend, name)

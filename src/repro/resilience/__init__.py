"""Resilience primitives for the serving stack (stdlib-only).

The package collects everything the service uses to stay *correct first,
available second* when parts of it misbehave:

- :mod:`repro.resilience.faults` — deterministic, seeded fault injection
  that wraps a client transport or a router backend, so tests and
  benchmarks script outages (refusals, drops, latency, trickle, garbled
  payloads) without killing processes.
- :mod:`repro.resilience.deadlines` — per-request deadline propagation
  through the wire envelope, mirrored on the tracing design: a
  thread-local active deadline, explicit pool-thread handoff, and zero
  cost (one thread-local read) when no deadline is set.
- :mod:`repro.resilience.retry` — capped exponential backoff with
  deterministic jitter, and per-backend circuit breakers
  (closed / open / half-open).
- :mod:`repro.resilience.admission` — a bounded in-flight semaphore with
  a queue watermark that sheds load as typed ``OverloadedError`` (503 +
  Retry-After) before server threads exhaust, plus the drain hook worker
  shutdown uses.

Every feature honors one kill switch: with ``REPRO_NO_RESILIENCE=1`` in
the environment the serving stack behaves byte-identically to the
pre-resilience code — no admission control, no deadline stamping or
enforcement, no retry/breaker logic in the router.  The flag is read at
construction/dispatch sites (not import time) so tests can flip it per
process.
"""

from __future__ import annotations

import os

RESILIENCE_ENV_FLAG = "REPRO_NO_RESILIENCE"
FAULTS_ENV = "REPRO_FAULTS"


def resilience_disabled() -> bool:
    """True when the ``REPRO_NO_RESILIENCE`` kill switch is set.

    Read per call (not cached at import) so a test or benchmark can flip
    the environment between phases of one process.
    """
    return os.environ.get(RESILIENCE_ENV_FLAG, "") not in ("", "0")


from repro.resilience.admission import AdmissionController  # noqa: E402
from repro.resilience.deadlines import (  # noqa: E402
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.resilience.faults import Fault, FaultPlan, FaultingBackend  # noqa: E402
from repro.resilience.retry import BackoffPolicy, CircuitBreaker  # noqa: E402

__all__ = [
    "AdmissionController",
    "BackoffPolicy",
    "CircuitBreaker",
    "Deadline",
    "FAULTS_ENV",
    "Fault",
    "FaultPlan",
    "FaultingBackend",
    "RESILIENCE_ENV_FLAG",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "resilience_disabled",
]

"""Bounded-admission control for the HTTP servers.

The stdlib ``ThreadingHTTPServer`` spawns a thread per connection; under a
traffic spike that means unbounded threads all contending for the engine,
latency collapsing for *everyone*, and no signal to clients that they
should back off.  :class:`AdmissionController` puts a watermark in front
of dispatch:

- up to ``max_in_flight`` requests execute concurrently;
- up to ``max_queue_depth`` more wait (briefly, bounded by
  ``queue_timeout_seconds`` *and* the request's own deadline — a request
  that would expire in the queue is shed immediately);
- everything beyond that is **shed** with the typed
  :class:`~repro.errors.OverloadedError` → HTTP 503 plus a ``Retry-After``
  pacing hint, long before thread exhaustion.

Shedding early is the graceful-degradation contract: a bounded subset of
requests fails *fast and retryably* instead of every request timing out.
The controller also provides :meth:`drain` — "wait until in-flight work
finishes" — which worker shutdown uses so a rolling restart under load
does not surface spurious transport errors to the router.

Counters go through the PR 6 metrics registry when one is attached:
``admission.admitted``, ``admission.queued``, ``admission.sheds`` and the
``admission.in_flight`` gauge, all visible in ``GET /metrics``.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Iterator

from repro.errors import OverloadedError
from repro.observability import events
from repro.observability.accounting import current_account
from repro.resilience.deadlines import current_deadline

__all__ = ["AdmissionController", "DEFAULT_MAX_IN_FLIGHT", "DEFAULT_MAX_QUEUE_DEPTH"]

#: Generous defaults: far above the serving benchmarks' concurrency, far
#: below thread-exhaustion territory for a stdlib threading server.
DEFAULT_MAX_IN_FLIGHT = 64
DEFAULT_MAX_QUEUE_DEPTH = 128
DEFAULT_QUEUE_TIMEOUT_SECONDS = 0.5
DEFAULT_RETRY_AFTER_SECONDS = 0.05


class AdmissionController:
    """A watermarked in-flight bound with queue-and-shed semantics."""

    def __init__(
        self,
        *,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        queue_timeout_seconds: float = DEFAULT_QUEUE_TIMEOUT_SECONDS,
        retry_after_seconds: float = DEFAULT_RETRY_AFTER_SECONDS,
        metrics=None,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        self.max_in_flight = max_in_flight
        self.max_queue_depth = max_queue_depth
        self.queue_timeout_seconds = queue_timeout_seconds
        self.retry_after_seconds = retry_after_seconds
        self.metrics = metrics
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self._in_flight = 0
        self._queued = 0
        self._sheds = 0

    # Admission ------------------------------------------------------------------

    @contextlib.contextmanager
    def admit(self) -> Iterator[None]:
        """Hold one in-flight slot for the block (queue, or shed with 503)."""
        self.acquire()
        try:
            yield
        finally:
            self.release()

    def acquire(self) -> None:
        deadline = current_deadline()
        account = current_account()
        entered = time.monotonic() if account is not None else 0.0
        with self._lock:
            if self._in_flight < self.max_in_flight:
                self._in_flight += 1
                self._note_admitted()
                return
            if self._queued >= self.max_queue_depth:
                self._shed("queue full")
            # Wait bounded by the queue timeout and, when the request
            # carries a deadline, by its remaining budget — a request that
            # would die waiting is shed now, while a retry elsewhere can
            # still make its deadline.
            budget = self.queue_timeout_seconds
            if deadline is not None:
                budget = min(budget, deadline.remaining_seconds())
            if budget <= 0.0:
                self._shed("no budget to queue")
            self._queued += 1
            if self.metrics is not None:
                self.metrics.increment("admission.queued")
            expires = time.monotonic() + budget
            try:
                while self._in_flight >= self.max_in_flight:
                    remaining = expires - time.monotonic()
                    if remaining <= 0.0:
                        self._shed("queued past the watermark timeout")
                    self._slot_freed.wait(remaining)
            finally:
                self._queued -= 1
            self._in_flight += 1
            self._note_admitted()
            if account is not None:
                account.add_queue_wait(time.monotonic() - entered)

    def release(self) -> None:
        with self._lock:
            self._in_flight -= 1
            if self.metrics is not None:
                self.metrics.set_gauge("admission.in_flight", float(self._in_flight))
            self._slot_freed.notify_all()

    def _note_admitted(self) -> None:
        """Caller holds the lock."""
        if self.metrics is not None:
            self.metrics.increment("admission.admitted")
            self.metrics.set_gauge("admission.in_flight", float(self._in_flight))

    def _shed(self, why: str) -> None:
        """Caller holds the lock; raises the typed 503."""
        self._sheds += 1
        if self.metrics is not None:
            self.metrics.increment("admission.sheds")
        events.emit(
            "admission.shed",
            level="warning",
            why=why,
            in_flight=self._in_flight,
            queued=self._queued,
        )
        raise OverloadedError(
            f"overloaded: {why} ({self._in_flight} in flight, {self._queued} queued); retry later",
            retry_after_seconds=self.retry_after_seconds,
        )

    # Introspection / shutdown ---------------------------------------------------

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def sheds(self) -> int:
        with self._lock:
            return self._sheds

    def drain(self, timeout_seconds: float = 5.0) -> bool:
        """Wait until no request is in flight; ``False`` on timeout.

        The graceful-shutdown hook: the server stops accepting, then drains
        before closing the listening socket, so requests already admitted
        finish cleanly instead of surfacing as transport errors upstream.
        """
        expires = time.monotonic() + timeout_seconds
        with self._lock:
            while self._in_flight > 0:
                remaining = expires - time.monotonic()
                if remaining <= 0.0:
                    return False
                self._slot_freed.wait(remaining)
            return True

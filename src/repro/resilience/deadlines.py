"""Per-request deadline propagation, mirrored on the tracing design.

A **deadline** is an absolute point on this process's monotonic clock by
which a request must finish.  It travels between processes as a *relative*
budget — a ``"deadline_ms"`` field on the request envelope — because
monotonic clocks are not comparable across processes: the client stamps
its *remaining* milliseconds at send time, the server re-anchors them on
its own clock.  Each hop therefore decrements the budget by exactly the
time already burned, with no clock synchronization anywhere.

Design rules (same priority order as :mod:`repro.observability.tracing`):

1. **Zero cost when off.**  :func:`check_deadline` is a single
   thread-local read when no deadline is active; the engine and executor
   call it unconditionally on hot paths.
2. **Wire-envelope propagation.**  ``deadline_ms`` rides next to the
   ``trace`` key on the request envelope; ``parse_wire`` filters unknown
   keys, so a pre-resilience peer ignores it harmlessly — no protocol
   version bump, and a v1 envelope simply never carries one.
3. **Explicit thread handoff.**  The router captures
   :func:`current_deadline` before fanning out and re-activates it inside
   pool threads with :func:`activate` (a no-op when handed ``None``).

Enforcement sits at **pipeline-breaker materialization points** in the
streaming executor (where a doomed query would otherwise burn unbounded
CPU) and at the engine's evaluation entry points; exceeding raises the
typed :class:`~repro.errors.DeadlineExceededError`, wire code
``deadline_exceeded``, HTTP 504.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Iterator

from repro.errors import DeadlineExceededError

__all__ = [
    "Deadline",
    "activate",
    "adopt",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
]

_ACTIVE = threading.local()

#: Floor stamped on the wire: a positive budget that has not *yet* expired
#: locally is never rounded down to "no deadline" or to an expired one.
_MIN_WIRE_BUDGET_MS = 1

#: Ceiling accepted off the wire (one week) — a corrupt or hostile budget
#: must not pin a Deadline object arbitrarily far in the future.
_MAX_WIRE_BUDGET_MS = 7 * 24 * 3600 * 1000


class Deadline:
    """An absolute monotonic-clock expiry, checked cheaply and often."""

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float) -> None:
        self.expires_at = expires_at

    @classmethod
    def after_ms(cls, budget_ms: float) -> "Deadline":
        """A deadline *budget_ms* milliseconds from now."""
        return cls(time.monotonic() + budget_ms / 1000.0)

    def remaining_seconds(self) -> float:
        """Seconds left before expiry; negative once past it."""
        return self.expires_at - time.monotonic()

    def remaining_ms(self) -> float:
        return self.remaining_seconds() * 1000.0

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` if the deadline has passed."""
        overrun = time.monotonic() - self.expires_at
        if overrun >= 0.0:
            # Imported here, not at module top: the expiry path is cold by
            # definition, and the lazy import keeps this hot-path module
            # free of any observability dependency.
            from repro.observability import events

            events.emit(
                "deadline.expired",
                level="warning",
                what=what,
                overrun_ms=overrun * 1000.0,
            )
            raise DeadlineExceededError(
                f"deadline exceeded during {what} (over budget by {overrun * 1000.0:.1f}ms)"
            )

    def wire_budget_ms(self) -> int:
        """The remaining budget as stamped on a request envelope.

        Raises if already expired — a hop must not forward a dead request —
        and floors at 1ms so an almost-exhausted budget still travels as a
        deadline rather than silently vanishing.
        """
        self.check("request send")
        return max(_MIN_WIRE_BUDGET_MS, int(self.remaining_ms()))

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"Deadline(remaining={self.remaining_ms():.1f}ms)"


def current_deadline() -> Deadline | None:
    """The deadline active on this thread, if any (the disabled-path check)."""
    return getattr(_ACTIVE, "deadline", None)


def check_deadline(what: str = "request") -> None:
    """Enforce the active deadline; a single thread-local read when none is set."""
    active = getattr(_ACTIVE, "deadline", None)
    if active is not None:
        active.check(what)


@contextlib.contextmanager
def activate(deadline: Deadline | None) -> Iterator[Deadline | None]:
    """Make *deadline* the current thread's deadline for the block.

    ``activate(None)`` is an inert pass-through, so pool-thread handoff
    code can call it unconditionally.  The previous deadline is restored
    on exit, so nesting — a server thread with a request deadline driving
    an in-process router — unwinds correctly.  (A forwarded budget is
    always ≤ the enclosing one, so "replace" and "tighten" coincide.)
    """
    if deadline is None:
        yield None
        return
    previous = getattr(_ACTIVE, "deadline", None)
    _ACTIVE.deadline = deadline
    try:
        yield deadline
    finally:
        _ACTIVE.deadline = previous


@contextlib.contextmanager
def deadline_scope(budget_ms: float | None) -> Iterator[Deadline | None]:
    """Edge entry point: run the block under a fresh *budget_ms* deadline.

    ``deadline_scope(None)`` runs the block with no deadline — convenient
    for call sites with an optional timeout parameter.
    """
    if budget_ms is None:
        yield None
        return
    with activate(Deadline.after_ms(budget_ms)) as active:
        yield active


def adopt(value: object) -> Deadline | None:
    """Server-side: a :class:`Deadline` for an envelope's ``deadline_ms``.

    Tolerant by design — ``None``, absent, malformed, non-positive or
    absurdly large budgets all mean "no deadline" rather than a failed
    request; only a positive finite number anchors a deadline on the local
    clock.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    if not (0 < value <= _MAX_WIRE_BUDGET_MS):
        return None
    return Deadline.after_ms(float(value))

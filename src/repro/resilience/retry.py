"""Retry backoff and per-backend circuit breakers for the router.

Two small, independently testable pieces:

- :class:`BackoffPolicy` — capped exponential backoff with deterministic
  (seeded) jitter.  Pure arithmetic over an injected ``random.Random`` so
  retry schedules replay exactly in tests.
- :class:`CircuitBreaker` — the classic closed / open / half-open state
  machine, one per worker backend.  A run of consecutive transport
  failures *opens* the breaker: the router stops offering that worker
  traffic (each skipped offer is a fast local check, not a
  ``worker_timeout_seconds`` stall).  After a reset interval one
  *half-open* probe is allowed through; success closes the breaker,
  failure re-opens it.  The clock is injectable so the state machine is
  tested without sleeping.

Retry *policy* (what is safe to replay) lives in the router, which knows
request semantics; this module only supplies mechanism.  The contract the
router relies on: every replayed request is either provably unsent
(``sent_request=False``) or an idempotent read — the answer cache and
explicit cursor page indexes make ``POST /query`` and ``/fetch`` replays
answer-identical.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from random import Random

__all__ = ["BackoffPolicy", "CircuitBreaker"]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: Gauge encoding of breaker states for ``/metrics`` (sortable by badness).
BREAKER_STATE_GAUGE = {BREAKER_CLOSED: 0.0, BREAKER_HALF_OPEN: 0.5, BREAKER_OPEN: 1.0}


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff: ``min(cap, base * 2**round) * jitter``.

    ``rounds`` is how many passes over the replica set the router makes
    before giving up (1 = no retry).  Jitter multiplies each delay by a
    uniform draw from ``[1 - jitter, 1]`` — subtractive, so the cap is a
    true upper bound on any single sleep.
    """

    rounds: int = 3
    base_ms: float = 5.0
    cap_ms: float = 100.0
    jitter: float = 0.5
    seed: int = 0

    def rng(self) -> Random:
        """A fresh deterministic jitter stream (one per request)."""
        return Random(self.seed)

    def delay_seconds(self, retry_round: int, rng: Random) -> float:
        """The sleep before retry round *retry_round* (1-based)."""
        raw = min(self.cap_ms, self.base_ms * (2 ** max(0, retry_round - 1)))
        scale = 1.0 - self.jitter * rng.random() if self.jitter > 0.0 else 1.0
        return (raw * scale) / 1000.0


class CircuitBreaker:
    """Closed / open / half-open breaker guarding one worker backend.

    Thread-safe; all transitions happen under one lock.  ``allow()`` is the
    router's gate: ``True`` means "you may offer this worker a request".
    In the half-open state exactly one probe is admitted at a time —
    concurrent callers are turned away until the probe reports back, so a
    thundering herd cannot stampede a barely-recovered worker.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_after_seconds: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_after_seconds = reset_after_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._peek_state()

    @property
    def trips(self) -> int:
        """How many times the breaker has opened (closed/half-open → open)."""
        with self._lock:
            return self._trips

    def allow(self) -> bool:
        """May the caller offer the guarded worker a request right now?"""
        # Lock-free fast path for the steady state.  A stale CLOSED read
        # racing a concurrent trip admits at most one extra request — the
        # same exposure as a request already in flight when the breaker
        # trips — so the router's gate stays cheap on the fault-free path.
        if self._state == BREAKER_CLOSED:
            return True
        with self._lock:
            state = self._peek_state()
            if state == BREAKER_CLOSED:
                return True
            if state == BREAKER_HALF_OPEN and not self._probing:
                self._state = BREAKER_HALF_OPEN
                self._probing = True
                return True
            return False

    def record_success(self) -> bool:
        """Reset on success; returns ``True`` if this call *healed* an open
        or half-open breaker (so the caller can emit the heal event)."""
        # Same benign race as allow(): skipping the reset when there is
        # nothing to reset is equivalent to this success having happened
        # just before any concurrent failure.
        if self._state == BREAKER_CLOSED and self._consecutive_failures == 0:
            return False
        with self._lock:
            healed = self._state != BREAKER_CLOSED
            self._state = BREAKER_CLOSED
            self._consecutive_failures = 0
            self._probing = False
            return healed

    def record_failure(self) -> bool:
        """Count one transport failure; returns ``True`` if this call tripped
        the breaker open (so the caller can bump a metrics counter)."""
        with self._lock:
            state = self._peek_state()
            if state == BREAKER_OPEN:
                # Failures reported while already open (e.g. a request that
                # was in flight when the breaker tripped) don't re-trip.
                return False
            if state == BREAKER_HALF_OPEN:
                self._open()
                return True
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._open()
                return True
            return False

    def _open(self) -> None:
        self._state = BREAKER_OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probing = False
        self._trips += 1

    def _peek_state(self) -> str:
        """Current state, promoting open → half-open once the reset elapses.

        Caller holds the lock.
        """
        if self._state == BREAKER_OPEN and self._clock() - self._opened_at >= self.reset_after_seconds:
            self._state = BREAKER_HALF_OPEN
            self._probing = False
        return self._state

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"CircuitBreaker(state={self.state!r}, trips={self.trips})"

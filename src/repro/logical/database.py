"""Closed-world logical databases (Reiter's extended relational theories).

A :class:`CWDatabase` is the pair ``(L, T)`` of Section 2.2: a relational
vocabulary together with a theory consisting of atomic facts, uniqueness
axioms, the (implicit) domain closure axiom and the (implicit) completion
axioms.  Only the facts and the uniqueness axioms are stored — the other two
components are determined by them — exactly as the paper notes
("in practice it suffices to specify the atomic fact axioms and the
uniqueness axioms").

Unknown values are modelled by *missing* uniqueness axioms: when no axiom
``~(c_i = c_j)`` is present the database does not know whether ``c_i`` and
``c_j`` denote the same object.  A database with a uniqueness axiom for every
pair of distinct constants is *fully specified* and behaves exactly like a
physical database (Corollary 2).

**Immutability contract.**  A :class:`CWDatabase` is deeply immutable: the
vocabulary, the fact sets and the uniqueness axioms are all frozen at
construction time and every "update" (:meth:`CWDatabase.with_fact`, ...)
returns a fresh instance.  :meth:`CWDatabase.fingerprint` therefore
identifies the database *content* for its whole lifetime, which is what lets
the serving layer (:mod:`repro.service`) precompute ``Ph2(LB)`` once per
registered snapshot and key result caches on the fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.errors import DatabaseError, VocabularyError
from repro.logic.formulas import Formula
from repro.logic.vocabulary import NE_PREDICATE, Vocabulary
from repro.logical.axioms import AtomicFact, UniquenessAxiom, theory_formulas

__all__ = ["CWDatabase"]


@dataclass(frozen=True)
class CWDatabase:
    """A closed-world logical database ``LB = (L, T)``.

    Parameters
    ----------
    constants:
        The constant symbols of ``L`` (order preserved, duplicates rejected).
    predicates:
        Mapping from predicate name to arity.
    facts:
        For each predicate, the set of stored atomic facts, each a tuple of
        constant names of the right arity.
    unequal:
        The uniqueness axioms, as pairs of distinct constant names.  Order
        inside a pair does not matter.
    """

    vocabulary: Vocabulary
    facts: Mapping[str, frozenset[tuple[str, ...]]]
    unequal: frozenset[frozenset[str]]

    def __init__(
        self,
        constants: Sequence[str],
        predicates: Mapping[str, int],
        facts: Mapping[str, Iterable[Sequence[str]]] | None = None,
        unequal: Iterable[tuple[str, str]] | None = None,
    ) -> None:
        vocabulary = Vocabulary(tuple(constants), dict(predicates))
        if not vocabulary.constants:
            raise DatabaseError("a CW logical database needs at least one constant symbol")
        if NE_PREDICATE in vocabulary.predicates:
            raise VocabularyError(
                f"{NE_PREDICATE!r} is reserved for the inequality relation of Ph2(LB) and cannot be a base predicate"
            )
        constant_set = vocabulary.constant_set

        fact_map: dict[str, frozenset[tuple[str, ...]]] = {}
        for predicate, rows in (facts or {}).items():
            if not vocabulary.has_predicate(predicate):
                raise VocabularyError(f"facts given for undeclared predicate {predicate!r}")
            arity = vocabulary.arity(predicate)
            normalized = set()
            for row in rows:
                values = tuple(row)
                if len(values) != arity:
                    raise DatabaseError(
                        f"fact {values!r} for predicate {predicate!r} does not match arity {arity}"
                    )
                for value in values:
                    if value not in constant_set:
                        raise DatabaseError(
                            f"fact {values!r} for predicate {predicate!r} mentions unknown constant {value!r}"
                        )
                normalized.add(values)
            fact_map[predicate] = frozenset(normalized)
        for predicate in vocabulary.predicates:
            fact_map.setdefault(predicate, frozenset())

        unequal_set: set[frozenset[str]] = set()
        for pair in unequal or ():
            left, right = pair
            if left not in constant_set or right not in constant_set:
                raise DatabaseError(f"uniqueness axiom mentions unknown constants: {pair!r}")
            axiom = UniquenessAxiom(left, right)
            unequal_set.add(axiom.pair)

        object.__setattr__(self, "vocabulary", vocabulary)
        object.__setattr__(self, "facts", fact_map)
        object.__setattr__(self, "unequal", frozenset(unequal_set))

    def __hash__(self) -> int:
        return hash((self.vocabulary, tuple(sorted((k, v) for k, v in self.facts.items())), self.unequal))

    def fingerprint(self) -> str:
        """A stable hex digest of the database content.

        Two databases have the same fingerprint exactly when they have the
        same constants (in order), predicates, facts and uniqueness axioms.
        Because instances are immutable the digest is computed once and
        cached; the service layer uses it as the database component of its
        cache keys.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            payload = json.dumps(
                {
                    "constants": list(self.constants),
                    "predicates": {name: arity for name, arity in sorted(self.predicates.items())},
                    "facts": {name: sorted(self.facts[name]) for name in sorted(self.facts)},
                    "unequal": sorted(sorted(pair) for pair in self.unequal),
                },
                separators=(",", ":"),
            )
            cached = hashlib.sha256(payload.encode()).hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    # Accessors ----------------------------------------------------------------

    @property
    def constants(self) -> tuple[str, ...]:
        """The constant symbols ``C`` of the vocabulary, in declaration order."""
        return self.vocabulary.constants

    @property
    def predicates(self) -> Mapping[str, int]:
        return self.vocabulary.predicates

    def facts_for(self, predicate: str) -> frozenset[tuple[str, ...]]:
        """The stored atomic facts for *predicate* (empty set if none)."""
        if not self.vocabulary.has_predicate(predicate):
            raise VocabularyError(f"unknown predicate {predicate!r}")
        return self.facts[predicate]

    def atomic_facts(self) -> list[AtomicFact]:
        """Every stored fact as an :class:`AtomicFact`, deterministically ordered."""
        result = []
        for predicate in sorted(self.facts):
            for row in sorted(self.facts[predicate]):
                result.append(AtomicFact(predicate, row))
        return result

    def uniqueness_axioms(self) -> list[UniquenessAxiom]:
        """Every uniqueness axiom, deterministically ordered."""
        return [UniquenessAxiom(*sorted(pair)) for pair in sorted(self.unequal, key=sorted)]

    def unequal_pairs(self) -> frozenset[tuple[str, str]]:
        """Uniqueness axioms as sorted 2-tuples (handy for CSV export and display)."""
        return frozenset(tuple(sorted(pair)) for pair in self.unequal)

    def are_known_distinct(self, left: str, right: str) -> bool:
        """True when the theory contains the axiom ``~(left = right)``."""
        if left == right:
            return False
        return frozenset((left, right)) in self.unequal

    # Structure ------------------------------------------------------------------

    @property
    def is_fully_specified(self) -> bool:
        """True when every pair of distinct constants has a uniqueness axiom.

        Fully specified databases represent no unknown values; by
        Corollary 2 their certain answers coincide with the answers of
        ``Ph1(LB)``.
        """
        n = len(self.constants)
        return len(self.unequal) == n * (n - 1) // 2

    def unknown_constants(self) -> frozenset[str]:
        """Constants whose identity is not fully known.

        A constant is *unknown* when some other constant is not declared
        distinct from it — this is the set ``U`` of the virtual-``NE``
        encoding at the end of Section 5.  Derived once and cached on the
        instance (the ``_fingerprint`` immutability idiom): the serving
        layer's info endpoint and the virtual-``NE`` encoding both ask
        repeatedly, and the derivation is quadratic in the constants.
        """
        cached = self.__dict__.get("_unknown_constants")
        if cached is None:
            cached = frozenset(
                constant for pair in self.missing_uniqueness_pairs() for constant in pair
            )
            object.__setattr__(self, "_unknown_constants", cached)
        return cached

    def missing_uniqueness_pairs(self) -> frozenset[tuple[str, str]]:
        """Pairs of distinct constants with no uniqueness axiom (the unknowns).

        Cached on the instance like :meth:`unknown_constants`.
        """
        cached = self.__dict__.get("_missing_uniqueness_pairs")
        if cached is None:
            constants = self.constants
            missing = set()
            for index, left in enumerate(constants):
                for right in constants[index + 1:]:
                    if not self.are_known_distinct(left, right):
                        missing.add(tuple(sorted((left, right))))
            cached = frozenset(missing)
            object.__setattr__(self, "_missing_uniqueness_pairs", cached)
        return cached

    def size(self) -> int:
        """A simple size measure: number of facts plus uniqueness axioms plus constants."""
        return sum(len(rows) for rows in self.facts.values()) + len(self.unequal) + len(self.constants)

    # Theory -----------------------------------------------------------------------

    def theory(self) -> list[Formula]:
        """The full theory ``T`` (facts, uniqueness, domain closure, completion)."""
        return theory_formulas(self.constants, self.predicates, self.facts, self.unequal_pairs())

    # Functional updates -------------------------------------------------------------

    def with_fact(self, predicate: str, row: Sequence[str]) -> "CWDatabase":
        """Return a copy with one more atomic fact."""
        facts = {name: set(rows) for name, rows in self.facts.items()}
        facts.setdefault(predicate, set()).add(tuple(row))
        return CWDatabase(self.constants, dict(self.predicates), facts, self.unequal_pairs())

    def with_unequal(self, left: str, right: str) -> "CWDatabase":
        """Return a copy with one more uniqueness axiom."""
        pairs = set(self.unequal_pairs())
        pairs.add(tuple(sorted((left, right))))
        return CWDatabase(self.constants, dict(self.predicates), self.facts, pairs)

    def fully_specified(self) -> "CWDatabase":
        """Return the fully specified version: a uniqueness axiom for every pair."""
        constants = self.constants
        pairs = {
            (left, right)
            for index, left in enumerate(constants)
            for right in constants[index + 1:]
        }
        normalized = {tuple(sorted(pair)) for pair in pairs}
        return CWDatabase(self.constants, dict(self.predicates), self.facts, normalized)

    def without_uniqueness(self) -> "CWDatabase":
        """Return the copy with no uniqueness axioms at all (every identity unknown)."""
        return CWDatabase(self.constants, dict(self.predicates), self.facts, ())

    def describe(self) -> str:
        """Short human-readable summary used by examples and the harness."""
        n_facts = sum(len(rows) for rows in self.facts.values())
        status = "fully specified" if self.is_fully_specified else f"{len(self.unknown_constants())} unknown constants"
        return (
            f"{len(self.constants)} constants, {n_facts} facts, "
            f"{len(self.unequal)} uniqueness axioms ({status})"
        )

"""Models of a CW logical database.

A physical database ``PB`` is a model of ``LB = (L, T)`` when it satisfies
every sentence of ``T``.  Because the theory contains the domain closure
axiom, every model is finite, and — as the proof of Theorem 1 shows — every
model is (isomorphic to) an image ``h(Ph1(LB))`` for some respecting
mapping ``h``.  This module provides:

* :func:`is_model` — direct model checking against the full theory;
* :func:`enumerate_models` — the models ``h(Ph1(LB))`` for canonical ``h``,
  i.e. one representative per isomorphism class;
* :func:`certain_answers_by_model_checking` — the definitional (and very
  slow) certain-answer computation used by tests as an independent oracle
  for Theorem 1.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

from repro.logic.analysis import is_first_order
from repro.logic.queries import Query
from repro.logic.terms import Constant
from repro.logic.transform import substitute
from repro.logical.database import CWDatabase
from repro.logical.mappings import DEFAULT_MAX_MAPPINGS, enumerate_canonical_mappings
from repro.logical.ph import ph1
from repro.physical.database import PhysicalDatabase
from repro.physical.evaluator import evaluate_sentence, satisfies
from repro.physical.second_order import satisfies_so

__all__ = ["is_model", "enumerate_models", "certain_answers_by_model_checking"]


def is_model(physical: PhysicalDatabase, logical: CWDatabase) -> bool:
    """Check whether *physical* satisfies every sentence of the theory of *logical*.

    The physical database must interpret (at least) the vocabulary of the
    logical database; extra predicates are ignored.
    """
    for sentence in logical.theory():
        if not evaluate_sentence(physical, sentence):
            return False
    return True


def enumerate_models(
    database: CWDatabase, max_mappings: int = DEFAULT_MAX_MAPPINGS
) -> Iterator[PhysicalDatabase]:
    """Yield one model per isomorphism class: ``h(Ph1(LB))`` for canonical ``h``."""
    base = ph1(database)
    for mapping in enumerate_canonical_mappings(database, max_mappings):
        yield base.map_domain(mapping)


def certain_answers_by_model_checking(
    database: CWDatabase,
    query: Query,
    max_mappings: int = DEFAULT_MAX_MAPPINGS,
) -> frozenset[tuple[str, ...]]:
    """Certain answers computed straight from the definition.

    For every candidate tuple of constants ``c`` and every model ``PB`` of the
    theory, check that ``PB`` satisfies ``phi(c)`` — note that the tuple is
    substituted *as constant symbols* and each model interprets those symbols
    with its own constant assignment, exactly as in the definition
    ``Q(LB) = { c : T |=_f phi(c) }``.  Exponentially slower than
    :func:`repro.logical.exact.certain_answers`; used only as a test oracle.
    """
    constants = database.constants
    first_order = is_first_order(query.formula)
    models = list(enumerate_models(database, max_mappings))
    answers = set()
    for candidate in product(constants, repeat=query.arity):
        grounding = {variable: Constant(value) for variable, value in zip(query.head, candidate)}
        grounded = substitute(query.formula, grounding)
        if all(
            (satisfies(model, grounded, {}) if first_order else satisfies_so(model, grounded, {}))
            for model in models
        ):
            answers.add(candidate)
    return frozenset(answers)

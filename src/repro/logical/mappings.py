"""Constant mappings ``h : C -> C`` and their enumeration (Section 3.1).

Theorem 1 characterizes the certain answers of a CW logical database in
terms of *all* mappings ``h : C -> C`` that respect the theory ``T`` — i.e.
that never identify two constants declared distinct by a uniqueness axiom.
This module provides:

* :func:`respects` — the respect test;
* :func:`apply_to_ph1` — the image database ``h(Ph1(LB))``;
* :func:`enumerate_respecting_mappings` — the naive enumeration of all
  ``|C|^|C|`` candidate functions, filtered by the respect test (kept as the
  literal reading of Theorem 1 and as the baseline of ablation E11);
* :func:`enumerate_canonical_mappings` — the optimized enumeration.

The optimization rests on an isomorphism argument: first- and second-order
satisfaction is invariant under isomorphism, and if two respecting mappings
``h`` and ``h'`` have the same *kernel* (they identify the same constants)
then the map ``h(c) -> h'(c)`` is an isomorphism from ``h(Ph1(LB))`` to
``h'(Ph1(LB))`` carrying ``h(c)`` to ``h'(c)`` for every tuple ``c`` of
constants.  Hence, for deciding ``h(c) ∈ Q(h(Ph1(LB)))`` for all respecting
``h``, it suffices to consider one representative mapping per kernel.  The
kernels of respecting mappings are exactly the partitions of ``C`` in which
no block contains two constants declared unequal, so the canonical
enumeration walks set partitions (Bell-number many) instead of all functions
(``|C|^|C|`` many).  Tests verify that both enumerations produce the same
certain answers; benchmark E11 measures the speedup.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Iterator, Mapping

from repro.errors import CapacityError
from repro.logical.database import CWDatabase
from repro.logical.ph import ph1
from repro.physical.database import PhysicalDatabase

__all__ = [
    "respects",
    "apply_mapping",
    "apply_to_ph1",
    "enumerate_respecting_mappings",
    "enumerate_canonical_mappings",
    "count_all_mappings",
    "count_respecting_mappings",
    "count_canonical_mappings",
    "DEFAULT_MAX_MAPPINGS",
]

#: Safety cap on how many candidate mappings an enumeration may visit.
DEFAULT_MAX_MAPPINGS = 2_000_000


def respects(mapping: Mapping[str, str], database: CWDatabase) -> bool:
    """True when *mapping* never identifies two constants declared distinct.

    This is the paper's "h respects T": whenever ``~(c_i = c_j)`` is in the
    theory, ``h(c_i) != h(c_j)``.
    """
    for pair in database.unequal:
        left, right = tuple(pair)
        if mapping[left] == mapping[right]:
            return False
    return True


def apply_mapping(mapping: Mapping[str, str], database: PhysicalDatabase) -> PhysicalDatabase:
    """Return the image database ``h(PB)`` (domain, constants and relations mapped)."""
    return database.map_domain(mapping)


def apply_to_ph1(mapping: Mapping[str, str], database: CWDatabase) -> PhysicalDatabase:
    """Return ``h(Ph1(LB))`` for a CW logical database."""
    return apply_mapping(mapping, ph1(database))


def count_all_mappings(database: CWDatabase) -> int:
    """``|C| ** |C|`` — the number of candidate functions Theorem 1 quantifies over."""
    n = len(database.constants)
    return n**n


def enumerate_respecting_mappings(
    database: CWDatabase, max_mappings: int = DEFAULT_MAX_MAPPINGS
) -> Iterator[dict[str, str]]:
    """Yield every mapping ``h : C -> C`` that respects the theory.

    This is the literal quantification of Theorem 1.  The number of candidate
    functions is ``|C|^|C|``; the enumeration refuses to start when that
    exceeds *max_mappings* and raises :class:`CapacityError` instead.
    """
    constants = database.constants
    total = count_all_mappings(database)
    if total > max_mappings:
        raise CapacityError(
            f"enumerating all {total} functions over {len(constants)} constants exceeds the cap "
            f"of {max_mappings}; use enumerate_canonical_mappings or raise max_mappings"
        )
    for values in product(constants, repeat=len(constants)):
        mapping = dict(zip(constants, values))
        if respects(mapping, database):
            yield mapping


def enumerate_canonical_mappings(
    database: CWDatabase, max_mappings: int = DEFAULT_MAX_MAPPINGS
) -> Iterator[dict[str, str]]:
    """Yield one respecting mapping per kernel (one per admissible partition).

    Each partition of the constants whose blocks contain no pair declared
    unequal yields the mapping sending every constant to the first-declared
    constant of its block.  By the isomorphism argument in the module
    docstring, restricting Theorem 1's quantification to these canonical
    mappings does not change the certain answers.
    """
    constants = database.constants
    emitted = 0
    for partition in _admissible_partitions(database):
        representative: dict[str, str] = {}
        for block in partition:
            head = block[0]
            for member in block:
                representative[member] = head
        emitted += 1
        if emitted > max_mappings:
            raise CapacityError(
                f"more than {max_mappings} admissible partitions for {len(constants)} constants"
            )
        yield representative


def _admissible_partitions(database: CWDatabase) -> Iterator[list[list[str]]]:
    """Enumerate partitions of the constants with no unequal pair inside a block.

    Standard restricted-growth enumeration: constants are processed in
    declaration order and each either joins an existing compatible block or
    opens a new one.  Compatibility is checked incrementally, so subtrees
    that would violate a uniqueness axiom are pruned immediately.
    """
    constants = database.constants

    def extend(index: int, blocks: list[list[str]]) -> Iterator[list[list[str]]]:
        if index == len(constants):
            yield [list(block) for block in blocks]
            return
        constant = constants[index]
        for block in blocks:
            if all(not database.are_known_distinct(constant, member) for member in block):
                block.append(constant)
                yield from extend(index + 1, blocks)
                block.pop()
        blocks.append([constant])
        yield from extend(index + 1, blocks)
        blocks.pop()

    if not constants:
        yield []
        return
    yield from extend(0, [])


def count_respecting_mappings(database: CWDatabase, max_mappings: int = DEFAULT_MAX_MAPPINGS) -> int:
    """Number of respecting mappings (exhaustive count, capped)."""
    return sum(1 for __ in enumerate_respecting_mappings(database, max_mappings))


def count_canonical_mappings(database: CWDatabase, max_mappings: int = DEFAULT_MAX_MAPPINGS) -> int:
    """Number of admissible partitions (canonical mappings), capped."""
    return sum(1 for __ in enumerate_canonical_mappings(database, max_mappings))


def mappings(
    database: CWDatabase,
    strategy: str = "canonical",
    max_mappings: int = DEFAULT_MAX_MAPPINGS,
) -> Iterable[dict[str, str]]:
    """Dispatch between the two enumeration strategies by name.

    ``strategy`` is ``"canonical"`` (default, partition-based) or ``"all"``
    (every respecting function, the literal Theorem 1 quantification).
    """
    if strategy == "canonical":
        return enumerate_canonical_mappings(database, max_mappings)
    if strategy == "all":
        return enumerate_respecting_mappings(database, max_mappings)
    raise ValueError(f"unknown mapping enumeration strategy {strategy!r}; use 'canonical' or 'all'")

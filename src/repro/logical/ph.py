"""The physical databases ``Ph1(LB)`` and ``Ph2(LB)`` (Sections 3.1, 3.2, 5).

* ``Ph1(LB)`` interprets the vocabulary ``L`` over the domain ``C`` of
  constant symbols: every constant denotes itself, and each predicate holds
  exactly the stored facts.  It is the "minimal" model of the theory and the
  anchor of the combinatorial characterization (Theorem 1).
* ``Ph2(LB)`` is ``Ph1(LB)`` over the extended vocabulary ``L'`` which adds
  the binary predicate ``NE`` holding exactly the pairs with a uniqueness
  axiom.  It is the stored representation used by both the precise
  (second-order) simulation of Theorem 3 and the approximation algorithm of
  Section 5.

``ph2`` can materialize ``NE`` explicitly (quadratic in the worst case) or
store it as a *virtual* relation backed by the compact ``U``/``NE'``
encoding the paper recommends at the end of Section 5.
"""

from __future__ import annotations

from repro.logic.vocabulary import NE_PREDICATE
from repro.physical.database import PhysicalDatabase
from repro.logical.database import CWDatabase
from repro.logical.unknowns import VirtualNERelation, compact_ne_encoding

__all__ = ["ph1", "ph2", "NE_PREDICATE"]


def ph1(database: CWDatabase) -> PhysicalDatabase:
    """Construct ``Ph1(LB)``: domain ``C``, identity constants, stored facts."""
    constants = database.constants
    return PhysicalDatabase(
        vocabulary=database.vocabulary,
        domain=constants,
        constants={name: name for name in constants},
        relations={predicate: rows for predicate, rows in database.facts.items()},
    )


def ph2(database: CWDatabase, virtual_ne: bool = False) -> PhysicalDatabase:
    """Construct ``Ph2(LB)``: ``Ph1(LB)`` plus the inequality relation ``NE``.

    With ``virtual_ne=True`` the ``NE`` relation is not materialized; instead
    a :class:`~repro.logical.unknowns.VirtualNERelation` answers membership
    queries from the compact ``U``/``NE'`` encoding (Section 5, final
    paragraph).  Both representations yield identical query answers —
    experiment E10 checks that and compares their sizes.
    """
    constants = database.constants
    vocabulary = database.vocabulary.with_ne()
    relations: dict[str, object] = {predicate: rows for predicate, rows in database.facts.items()}
    if virtual_ne:
        relations[NE_PREDICATE] = VirtualNERelation(compact_ne_encoding(database))
    else:
        ne_tuples = set()
        for pair in database.unequal:
            left, right = sorted(pair)
            ne_tuples.add((left, right))
            ne_tuples.add((right, left))
        relations[NE_PREDICATE] = ne_tuples
    return PhysicalDatabase(
        vocabulary=vocabulary,
        domain=constants,
        constants={name: name for name in constants},
        relations=relations,
    )

"""Explanations for certain-answer decisions.

Theorem 1 does more than give an algorithm: it says *why* a tuple fails to
be a certain answer — there is a respecting mapping ``h`` (equivalently, a
model ``h(Ph1(LB))`` of the theory) in which the query does not hold of the
tuple's image.  This module surfaces that witness:

* :func:`explain_non_answer` returns the counterexample mapping and model
  for a tuple outside ``Q(LB)`` (or ``None`` if the tuple is in fact a
  certain answer);
* :func:`explain_answer` returns the *per-model* evidence for a certain
  answer: every canonical model together with the image of the tuple in it
  (all of which satisfy the query);
* :func:`why_unknown` specializes the first function to the common question
  "why is this negative fact not certain?", reporting which constants the
  counterexample collapses.

These helpers are aimed at interactive use (the CLI and the examples); the
evaluators themselves do not pay for explanation bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import FormulaError
from repro.logic.analysis import is_first_order
from repro.logic.queries import Query
from repro.logical.database import CWDatabase
from repro.logical.mappings import DEFAULT_MAX_MAPPINGS, enumerate_canonical_mappings
from repro.logical.ph import ph1
from repro.physical.database import PhysicalDatabase
from repro.physical.evaluator import evaluate_query
from repro.physical.second_order import evaluate_query_so

__all__ = ["CounterExample", "explain_non_answer", "explain_answer", "why_unknown"]


@dataclass(frozen=True)
class CounterExample:
    """A witness that a tuple is not a certain answer.

    Attributes
    ----------
    candidate:
        The tuple of constants that was tested.
    mapping:
        A respecting mapping ``h`` under which the query fails.
    image:
        The tuple's image ``h(candidate)``.
    model:
        The model ``h(Ph1(LB))`` in which ``image`` does not satisfy the query.
    collapsed:
        The groups of constants the mapping identifies (only groups of two or
        more constants are listed) — usually the most readable part of the
        explanation.
    """

    candidate: tuple[str, ...]
    mapping: dict[str, str]
    image: tuple[str, ...]
    model: PhysicalDatabase
    collapsed: tuple[tuple[str, ...], ...]

    def describe(self) -> str:
        """One-paragraph human-readable explanation."""
        if self.collapsed:
            groups = "; ".join("{" + ", ".join(group) + "}" for group in self.collapsed)
            reason = f"in the possible world where {groups} denote the same object"
        else:
            reason = "already in the minimal possible world (no constants identified)"
        head = ", ".join(self.candidate) if self.candidate else "<the sentence>"
        return f"({head}) is not a certain answer: {reason}, the query does not hold of its image."

    def __hash__(self) -> int:
        return hash((self.candidate, self.image, tuple(sorted(self.mapping.items()))))


def _evaluate(model: PhysicalDatabase, query: Query) -> frozenset[tuple]:
    if is_first_order(query.formula):
        return evaluate_query(model, query)
    return evaluate_query_so(model, query)


def _collapsed_groups(mapping: dict[str, str]) -> tuple[tuple[str, ...], ...]:
    groups: dict[str, list[str]] = {}
    for source in mapping:
        groups.setdefault(mapping[source], []).append(source)
    nontrivial = [tuple(sorted(members)) for members in groups.values() if len(members) > 1]
    return tuple(sorted(nontrivial))


def explain_non_answer(
    database: CWDatabase,
    query: Query,
    candidate: tuple[str, ...],
    max_mappings: int = DEFAULT_MAX_MAPPINGS,
) -> CounterExample | None:
    """Find a counterexample model for *candidate*, or ``None`` if it is certain.

    The search walks the canonical respecting mappings (one per kernel); by
    Theorem 1 the candidate is a certain answer exactly when no mapping
    produces a counterexample, so ``None`` means membership in ``Q(LB)``.
    """
    if len(candidate) != query.arity:
        raise FormulaError(
            f"candidate has {len(candidate)} components but the query has arity {query.arity}"
        )
    unknown = set(candidate) - set(database.constants)
    if unknown:
        raise FormulaError(f"candidate mentions unknown constants: {sorted(unknown)}")

    base = ph1(database)
    for mapping in enumerate_canonical_mappings(database, max_mappings):
        model = base.map_domain(mapping)
        image = tuple(mapping[value] for value in candidate)
        if image not in _evaluate(model, query):
            return CounterExample(
                candidate=tuple(candidate),
                mapping=dict(mapping),
                image=image,
                model=model,
                collapsed=_collapsed_groups(mapping),
            )
    return None


def explain_answer(
    database: CWDatabase,
    query: Query,
    candidate: tuple[str, ...],
    max_mappings: int = DEFAULT_MAX_MAPPINGS,
) -> Iterator[tuple[dict[str, str], PhysicalDatabase]]:
    """Yield every canonical (mapping, model) pair as evidence for a certain answer.

    Raises ``FormulaError`` if the candidate turns out not to be certain —
    use :func:`explain_non_answer` first when unsure.
    """
    base = ph1(database)
    for mapping in enumerate_canonical_mappings(database, max_mappings):
        model = base.map_domain(mapping)
        image = tuple(mapping[value] for value in candidate)
        if image not in _evaluate(model, query):
            raise FormulaError(
                f"{candidate!r} is not a certain answer; the mapping {mapping!r} is a counterexample"
            )
        yield dict(mapping), model


def why_unknown(
    database: CWDatabase,
    query: Query,
    candidate: tuple[str, ...],
) -> str:
    """Human-readable answer to "why is this not certain?" (or confirmation that it is)."""
    witness = explain_non_answer(database, query, candidate)
    if witness is None:
        head = ", ".join(candidate) if candidate else "<the sentence>"
        return f"({head}) IS a certain answer: it holds in every model of the theory."
    return witness.describe()

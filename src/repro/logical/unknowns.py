"""Compact representation of the inequality relation ``NE`` (Section 5, end).

Materializing ``NE`` explicitly needs up to ``|C|^2`` pairs, which the paper
points out is impractical: "in practice most values in the database are
known values".  The recommended encoding keeps

* ``U`` — the unary relation of *unknown* values (constants whose identity
  is not fully pinned down by uniqueness axioms), and
* ``NE'`` — the inequalities explicitly known about values in ``U``,

and treats ``NE`` as the virtual relation

    NE(x, y)  ≡  NE'(x, y)  ∨  (¬U(x) ∧ ¬U(y) ∧ ¬(x = y)).

For a fully specified database ``U`` and ``NE'`` are empty and ``NE`` is just
inequality.  :class:`VirtualNERelation` exposes this virtual relation through
the ordinary relation interface (membership, iteration, length) so the rest
of the library — the Tarskian evaluator, the algebra engine, the
approximation algorithm — can use it as a drop-in replacement for the
materialized relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, TYPE_CHECKING

from repro.logic.vocabulary import NE_PREDICATE

if TYPE_CHECKING:  # pragma: no cover
    from repro.logical.database import CWDatabase

__all__ = ["CompactNEEncoding", "VirtualNERelation", "compact_ne_encoding"]


@dataclass(frozen=True)
class CompactNEEncoding:
    """The ``U`` / ``NE'`` encoding of the inequality relation.

    Attributes
    ----------
    constants:
        All constant symbols (the domain of the relation).
    unknown:
        The unary relation ``U`` of unknown values.
    explicit:
        The binary relation ``NE'``: explicitly known inequalities that
        involve at least one unknown value, stored as ordered pairs in both
        orientations.
    """

    constants: tuple[str, ...]
    unknown: frozenset[str]
    explicit: frozenset[tuple[str, str]]

    @property
    def stored_size(self) -> int:
        """Number of stored entries: ``|U| + |NE'|`` (what a DBMS would keep)."""
        return len(self.unknown) + len(self.explicit)

    @property
    def materialized_size(self) -> int:
        """Number of pairs an explicit ``NE`` relation would store."""
        return sum(1 for __ in self.pairs())

    def holds(self, left: str, right: str) -> bool:
        """Membership test for the virtual ``NE`` relation."""
        if left == right:
            return False
        if (left, right) in self.explicit:
            return True
        return left not in self.unknown and right not in self.unknown

    def pairs(self) -> Iterator[tuple[str, str]]:
        """Iterate over the pairs of the virtual relation (both orientations)."""
        known = [name for name in self.constants if name not in self.unknown]
        for index, left in enumerate(known):
            for right in known[index + 1:]:
                yield (left, right)
                yield (right, left)
        for pair in sorted(self.explicit):
            yield pair


def compact_ne_encoding(database: "CWDatabase") -> CompactNEEncoding:
    """Build the compact encoding from a CW logical database.

    Correctness requires only that every pair of constants *not* declared
    unequal has at least one member in ``U`` (then the implicit
    "two known values are unequal" branch can never fire wrongly).  In other
    words ``U`` must be a vertex cover of the graph of *missing* uniqueness
    pairs.  The paper's intended reading — "let ``U`` contain all the unknown
    values" — corresponds to the typical case where the missing pairs all
    touch a handful of null constants; a greedy vertex cover recovers exactly
    that set there, and stays small in general, whereas taking every endpoint
    of a missing pair would balloon to the whole constant set as soon as one
    null exists.

    ``NE'`` then stores the declared inequalities with at least one endpoint
    in ``U``; inequalities between two known values are implied.
    """
    unknown = _greedy_vertex_cover(database.missing_uniqueness_pairs())
    explicit = set()
    for pair in database.unequal:
        left, right = sorted(pair)
        if left in unknown or right in unknown:
            explicit.add((left, right))
            explicit.add((right, left))
    return CompactNEEncoding(
        constants=database.constants,
        unknown=frozenset(unknown),
        explicit=frozenset(explicit),
    )


def _greedy_vertex_cover(pairs: frozenset[tuple[str, str]]) -> set[str]:
    """Greedy vertex cover of an undirected graph given as a set of edges.

    Repeatedly picks the vertex covering the most still-uncovered edges.
    Not minimum (that is NP-hard) but at most twice... in practice tiny, and
    any cover is sound for the encoding.
    """
    remaining = {frozenset(pair) for pair in pairs}
    cover: set[str] = set()
    while remaining:
        degree: dict[str, int] = {}
        for edge in remaining:
            for vertex in edge:
                degree[vertex] = degree.get(vertex, 0) + 1
        best = max(sorted(degree), key=lambda vertex: degree[vertex])
        cover.add(best)
        remaining = {edge for edge in remaining if best not in edge}
    return cover


class VirtualNERelation:
    """A relation-like view of the virtual ``NE`` relation.

    Satisfies the :class:`~repro.physical.relation.RelationLike` protocol:
    membership is answered from the compact encoding without materializing
    the quadratic set of pairs; iteration and length enumerate the pairs
    lazily (only tests and the algebra engine's scans do that).
    """

    def __init__(self, encoding: CompactNEEncoding) -> None:
        self.encoding = encoding
        self.name = NE_PREDICATE
        self.arity = 2

    def __contains__(self, item: object) -> bool:
        if not isinstance(item, tuple) or len(item) != 2:
            return False
        left, right = item
        return self.encoding.holds(left, right)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return self.encoding.pairs()

    def __len__(self) -> int:
        return self.encoding.materialized_size

    @property
    def stored_size(self) -> int:
        """Entries actually stored (``|U| + |NE'|``), the paper's saving."""
        return self.encoding.stored_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VirtualNERelation(stored={self.encoding.stored_size}, "
            f"materialized={self.encoding.materialized_size})"
        )

"""The five axiom components of a closed-world logical database (Section 2.2).

A CW logical database ``LB = (L, T)`` has a first-order theory ``T`` made of

1. *atomic fact axioms* — ground atoms such as ``TEACHES(Socrates, Plato)``;
2. *uniqueness axioms* — ``~(c_i = c_j)`` for pairs of constants known to
   denote distinct objects;
3. the *domain closure axiom* — ``forall x. x = c_1 | ... | x = c_n``;
4. *completion axioms* — for each predicate ``P`` with stored facts
   ``P(c^1), ..., P(c^m)``, the axiom
   ``forall x. P(x) -> x = c^1 | ... | x = c^m`` (or ``forall x. ~P(x)``
   when there are no facts);
5. (equality axioms are omitted, as in the paper, because we use the
   semantic rather than the proof-theoretic route).

In practice only the atomic facts and the uniqueness axioms are specified;
the closure and completion axioms are determined by them.  This module
provides the value classes for the explicit components and builders for the
generated axioms, so a :class:`~repro.logical.database.CWDatabase` can
produce its full theory as a list of formulas — useful for model checking
and for tests that verify the theory/semantics correspondence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.errors import DatabaseError
from repro.logic.formulas import (
    Atom,
    Equals,
    Forall,
    Formula,
    Implies,
    Not,
    conjoin,
    disjoin,
)
from repro.logic.terms import Constant, Variable

__all__ = [
    "AtomicFact",
    "UniquenessAxiom",
    "fact_formula",
    "uniqueness_formula",
    "domain_closure_axiom",
    "completion_axiom",
    "completion_axioms",
    "theory_formulas",
]


@dataclass(frozen=True, slots=True)
class AtomicFact:
    """A ground atomic fact ``P(c_1, ..., c_k)`` stored in the theory."""

    predicate: str
    constants: tuple[str, ...]

    def __init__(self, predicate: str, constants: Iterable[str]) -> None:
        values = tuple(constants)
        if not predicate:
            raise DatabaseError("atomic fact needs a predicate name")
        if not values:
            raise DatabaseError("atomic fact needs at least one argument")
        for value in values:
            if not isinstance(value, str) or not value:
                raise DatabaseError(f"atomic fact arguments must be constant names, got {value!r}")
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "constants", values)

    @property
    def arity(self) -> int:
        return len(self.constants)

    def to_formula(self) -> Atom:
        return fact_formula(self.predicate, self.constants)


@dataclass(frozen=True, slots=True)
class UniquenessAxiom:
    """An axiom ``~(c_i = c_j)`` asserting two constants denote distinct objects.

    The pair is stored in sorted order so ``UniquenessAxiom('a', 'b')`` and
    ``UniquenessAxiom('b', 'a')`` compare equal, matching the paper's
    identification of ``~(c_i = c_j)`` with ``~(c_j = c_i)``.
    """

    left: str
    right: str

    def __init__(self, left: str, right: str) -> None:
        if not left or not right:
            raise DatabaseError("uniqueness axiom needs two constant names")
        if left == right:
            raise DatabaseError(f"uniqueness axiom between a constant and itself: {left!r}")
        first, second = sorted((left, right))
        object.__setattr__(self, "left", first)
        object.__setattr__(self, "right", second)

    @property
    def pair(self) -> frozenset[str]:
        return frozenset((self.left, self.right))

    def to_formula(self) -> Formula:
        return uniqueness_formula(self.left, self.right)


def fact_formula(predicate: str, constants: Sequence[str]) -> Atom:
    """The ground atom for a stored fact."""
    return Atom(predicate, tuple(Constant(name) for name in constants))


def uniqueness_formula(left: str, right: str) -> Formula:
    """The sentence ``~(left = right)``."""
    return Not(Equals(Constant(left), Constant(right)))


def domain_closure_axiom(constants: Sequence[str]) -> Formula:
    """The domain closure axiom ``forall x. x = c_1 | ... | x = c_n``.

    The paper's closed-world reading: objects we do not know of do not exist.
    The constant list must be nonempty (a CW database always has at least one
    constant, otherwise it has no models with a nonempty domain).
    """
    if not constants:
        raise DatabaseError("domain closure axiom needs at least one constant")
    x = Variable("x")
    return Forall((x,), disjoin([Equals(x, Constant(name)) for name in constants]))


def completion_axiom(predicate: str, arity: int, facts: Iterable[Sequence[str]]) -> Formula:
    """The completion axiom for one predicate.

    With stored facts ``P(c^1), ..., P(c^m)`` the axiom is
    ``forall x1..xk. P(x) -> (x = c^1 | ... | x = c^m)`` where ``x = c^i``
    abbreviates the componentwise conjunction of equalities; with no stored
    facts it degenerates to ``forall x1..xk. ~P(x)``.
    """
    variables = tuple(Variable(f"x{i + 1}") for i in range(arity))
    head = Atom(predicate, variables)
    rows = [tuple(row) for row in facts]
    for row in rows:
        if len(row) != arity:
            raise DatabaseError(
                f"fact {row!r} for predicate {predicate!r} does not match arity {arity}"
            )
    if not rows:
        return Forall(variables, Not(head))
    matches = [
        conjoin([Equals(variable, Constant(value)) for variable, value in zip(variables, row)])
        for row in sorted(rows)
    ]
    return Forall(variables, Implies(head, disjoin(matches)))


def completion_axioms(
    predicates: Mapping[str, int], facts: Mapping[str, Iterable[Sequence[str]]]
) -> list[Formula]:
    """Completion axioms for every declared predicate (even fact-less ones)."""
    axioms = []
    for predicate in sorted(predicates):
        axioms.append(completion_axiom(predicate, predicates[predicate], facts.get(predicate, ())))
    return axioms


def theory_formulas(
    constants: Sequence[str],
    predicates: Mapping[str, int],
    facts: Mapping[str, Iterable[Sequence[str]]],
    unequal: Iterable[tuple[str, str]],
) -> list[Formula]:
    """The full theory ``T`` as a list of sentences, in the paper's order.

    Atomic facts first, then uniqueness axioms, then the domain closure
    axiom, then the completion axioms.
    """
    formulas: list[Formula] = []
    for predicate in sorted(facts):
        for row in sorted(facts[predicate]):
            formulas.append(fact_formula(predicate, row))
    for left, right in sorted(frozenset(tuple(sorted(pair)) for pair in unequal)):
        formulas.append(uniqueness_formula(left, right))
    formulas.append(domain_closure_axiom(constants))
    formulas.extend(completion_axioms(predicates, facts))
    return formulas

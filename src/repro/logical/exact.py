"""Exact certain-answer evaluation over CW logical databases (Theorem 1).

The answer to a query ``Q = (x) . phi(x)`` over a logical database
``LB = (L, T)`` is the set of constant tuples ``c`` with ``T |=_f phi(c)``
(finite implication).  Theorem 1 turns this into something executable:

    c ∈ Q(LB)   iff   h(c) ∈ Q(h(Ph1(LB)))  for every h : C -> C respecting T.

The evaluator below iterates over respecting mappings (by default one per
kernel, see :mod:`repro.logical.mappings`), evaluates the query over each
image database, and intersects.  Candidate answers are pruned as soon as a
mapping eliminates them, and the enumeration stops early once no candidate
survives.  The cost is exponential in the number of constants — that is the
co-NP-hardness of Theorem 5 showing up in practice, and it is precisely what
the approximation algorithm of Section 5 avoids.
"""

from __future__ import annotations

from itertools import product

from repro.errors import CapacityError
from repro.logic.analysis import is_first_order
from repro.logic.formulas import Formula
from repro.logic.queries import Query, TRUE_ANSWER, boolean_query
from repro.logical.database import CWDatabase
from repro.logical.mappings import DEFAULT_MAX_MAPPINGS, mappings
from repro.logical.ph import ph1
from repro.physical.evaluator import evaluate_query
from repro.physical.second_order import DEFAULT_MAX_RELATIONS, evaluate_query_so

__all__ = ["certain_answers", "certainly_holds", "possible_answers", "CertainAnswerEvaluator"]


class CertainAnswerEvaluator:
    """Reusable exact evaluator with a fixed enumeration strategy.

    Parameters
    ----------
    strategy:
        ``"canonical"`` (default) enumerates one mapping per admissible
        partition; ``"all"`` enumerates every respecting function, which is
        the literal statement of Theorem 1 (used for cross-checks and the
        E11 ablation).
    max_mappings:
        Safety cap on the enumeration size.
    max_relations:
        Cap per second-order quantifier when the query is second order.
    """

    def __init__(
        self,
        strategy: str = "canonical",
        max_mappings: int = DEFAULT_MAX_MAPPINGS,
        max_relations: int = DEFAULT_MAX_RELATIONS,
    ) -> None:
        if strategy not in ("canonical", "all"):
            raise ValueError(f"unknown strategy {strategy!r}; use 'canonical' or 'all'")
        self.strategy = strategy
        self.max_mappings = max_mappings
        self.max_relations = max_relations

    # Public API ---------------------------------------------------------------

    def certain_answers(self, database: CWDatabase, query: Query) -> frozenset[tuple[str, ...]]:
        """Return ``Q(LB)``: the tuples of constants finitely implied to satisfy ``Q``."""
        from repro.logic.template import check_bound

        check_bound(query)
        constants = database.constants
        arity = query.arity
        candidate_count = len(constants) ** arity
        if candidate_count > self.max_mappings:
            raise CapacityError(
                f"query arity {arity} over {len(constants)} constants yields {candidate_count} candidate tuples"
            )
        surviving: set[tuple[str, ...]] = set(product(constants, repeat=arity))
        evaluate = self._evaluator_for(query.formula)
        base = ph1(database)
        for mapping in mappings(database, self.strategy, self.max_mappings):
            if not surviving:
                break
            image = base.map_domain(mapping)
            answers = evaluate(image, query)
            surviving = {
                candidate
                for candidate in surviving
                if tuple(mapping[value] for value in candidate) in answers
            }
        return frozenset(surviving)

    def certainly_holds(self, database: CWDatabase, sentence: Formula) -> bool:
        """Decide ``T |=_f sentence`` for a sentence (Boolean certain answer)."""
        return self.certain_answers(database, boolean_query(sentence)) == TRUE_ANSWER

    def possible_answers(self, database: CWDatabase, query: Query) -> frozenset[tuple[str, ...]]:
        """Tuples true in *some* model: the dual notion (not studied in the paper,
        but useful as a sanity bound — certain answers are always a subset)."""
        constants = database.constants
        arity = query.arity
        possible: set[tuple[str, ...]] = set()
        evaluate = self._evaluator_for(query.formula)
        base = ph1(database)
        all_candidates = list(product(constants, repeat=arity))
        for mapping in mappings(database, self.strategy, self.max_mappings):
            image = base.map_domain(mapping)
            answers = evaluate(image, query)
            for candidate in all_candidates:
                if tuple(mapping[value] for value in candidate) in answers:
                    possible.add(candidate)
        return frozenset(possible)

    # Internals ---------------------------------------------------------------

    def _evaluator_for(self, formula: Formula):
        if is_first_order(formula):
            return evaluate_query
        max_relations = self.max_relations

        def evaluate_so(database, query):
            return evaluate_query_so(database, query, max_relations)

        return evaluate_so


def certain_answers(
    database: CWDatabase,
    query: Query,
    strategy: str = "canonical",
    max_mappings: int = DEFAULT_MAX_MAPPINGS,
) -> frozenset[tuple[str, ...]]:
    """Module-level convenience wrapper around :class:`CertainAnswerEvaluator`."""
    return CertainAnswerEvaluator(strategy, max_mappings).certain_answers(database, query)


def certainly_holds(
    database: CWDatabase,
    sentence: Formula,
    strategy: str = "canonical",
    max_mappings: int = DEFAULT_MAX_MAPPINGS,
) -> bool:
    """Decide whether a sentence is finitely implied by the database's theory."""
    return CertainAnswerEvaluator(strategy, max_mappings).certainly_holds(database, sentence)


def possible_answers(
    database: CWDatabase,
    query: Query,
    strategy: str = "canonical",
    max_mappings: int = DEFAULT_MAX_MAPPINGS,
) -> frozenset[tuple[str, ...]]:
    """Tuples satisfied in at least one model of the database."""
    return CertainAnswerEvaluator(strategy, max_mappings).possible_answers(database, query)

"""Closed-world logical databases and exact certain-answer evaluation.

This package is the paper's primary object of study: Reiter-style
closed-world databases with unknown values (Section 2.2), the combinatorial
characterization of their certain answers (Theorem 1), and the associated
physical databases ``Ph1(LB)`` / ``Ph2(LB)`` on which the simulation and
the approximation algorithm operate.
"""

from repro.logical.axioms import (
    AtomicFact,
    UniquenessAxiom,
    completion_axiom,
    completion_axioms,
    domain_closure_axiom,
    fact_formula,
    theory_formulas,
    uniqueness_formula,
)
from repro.logical.database import CWDatabase
from repro.logical.exact import (
    CertainAnswerEvaluator,
    certain_answers,
    certainly_holds,
    possible_answers,
)
from repro.logical.explain import (
    CounterExample,
    explain_answer,
    explain_non_answer,
    why_unknown,
)
from repro.logical.mappings import (
    DEFAULT_MAX_MAPPINGS,
    apply_mapping,
    apply_to_ph1,
    count_all_mappings,
    count_canonical_mappings,
    count_respecting_mappings,
    enumerate_canonical_mappings,
    enumerate_respecting_mappings,
    mappings,
    respects,
)
from repro.logical.models import (
    certain_answers_by_model_checking,
    enumerate_models,
    is_model,
)
from repro.logical.ph import NE_PREDICATE, ph1, ph2
from repro.logical.unknowns import CompactNEEncoding, VirtualNERelation, compact_ne_encoding

__all__ = [
    "CWDatabase",
    "AtomicFact",
    "UniquenessAxiom",
    "fact_formula",
    "uniqueness_formula",
    "domain_closure_axiom",
    "completion_axiom",
    "completion_axioms",
    "theory_formulas",
    "ph1",
    "ph2",
    "NE_PREDICATE",
    "respects",
    "apply_mapping",
    "apply_to_ph1",
    "mappings",
    "enumerate_respecting_mappings",
    "enumerate_canonical_mappings",
    "count_all_mappings",
    "count_respecting_mappings",
    "count_canonical_mappings",
    "DEFAULT_MAX_MAPPINGS",
    "certain_answers",
    "certainly_holds",
    "possible_answers",
    "CertainAnswerEvaluator",
    "CounterExample",
    "explain_non_answer",
    "explain_answer",
    "why_unknown",
    "is_model",
    "enumerate_models",
    "certain_answers_by_model_checking",
    "CompactNEEncoding",
    "VirtualNERelation",
    "compact_ne_encoding",
]

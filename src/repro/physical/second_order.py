"""Second-order query evaluation by relation enumeration.

The precise simulation of Section 3.2 produces queries with universal
second-order quantifiers (``forall H``, ``forall P'_i``), and Theorems 8/9
study the Sigma^k_2 classes of second-order queries.  Over a *finite*
physical database a second-order quantifier ranges over all relations of the
given arity on the domain, of which there are ``2^(|D|^arity)`` — evaluation
is therefore only feasible for tiny instances, which is exactly the point
the paper makes about the cost of unknown values.

To keep accidental blow-ups from hanging a test run, the evaluator refuses
to enumerate more than ``max_relations`` candidate relations per quantifier
(default ``2**16``) and raises :class:`~repro.errors.CapacityError` instead.
"""

from __future__ import annotations

from itertools import chain, combinations, product
from typing import Iterable, Iterator, Mapping

from repro.errors import CapacityError, EvaluationError
from repro.logic.formulas import (
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ExtensionAtom,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    SecondOrderExists,
    SecondOrderForall,
    Top,
    walk,
)
from repro.logic.queries import Query
from repro.logic.terms import Variable
from repro.physical.database import PhysicalDatabase
from repro.physical.evaluator import _sorted_domain, candidate_values, evaluate_term
from repro.physical.relation import Relation

__all__ = ["satisfies_so", "evaluate_query_so", "enumerate_relations", "DEFAULT_MAX_RELATIONS"]

#: Default cap on the number of candidate relations per second-order quantifier.
DEFAULT_MAX_RELATIONS = 2**16


def enumerate_relations(domain: Iterable, arity: int, max_relations: int = DEFAULT_MAX_RELATIONS) -> Iterator[frozenset[tuple]]:
    """Yield every relation of the given arity over *domain*.

    Relations are produced in increasing cardinality (the empty relation
    first), which lets existential searches succeed quickly on sparse
    witnesses.  Raises :class:`CapacityError` when there are more than
    *max_relations* candidate relations.
    """
    elements = sorted(domain, key=repr)
    all_tuples = list(product(elements, repeat=arity))
    count = 2 ** len(all_tuples)
    if count > max_relations:
        raise CapacityError(
            f"enumerating relations of arity {arity} over a domain of size {len(elements)} "
            f"needs {count} candidates, above the cap of {max_relations}"
        )
    subsets = chain.from_iterable(combinations(all_tuples, size) for size in range(len(all_tuples) + 1))
    for subset in subsets:
        yield frozenset(subset)


def satisfies_so(
    database: PhysicalDatabase,
    formula: Formula,
    assignment: Mapping[Variable, object] | None = None,
    relation_assignment: Mapping[str, frozenset[tuple]] | None = None,
    max_relations: int = DEFAULT_MAX_RELATIONS,
) -> bool:
    """Satisfaction for formulas that may contain second-order quantifiers.

    ``relation_assignment`` interprets second-order variables (predicate
    names bound by an enclosing second-order quantifier).  Free predicate
    names fall back to the database's stored relations.
    """
    return _satisfies(
        database,
        formula,
        dict(assignment or {}),
        dict(relation_assignment or {}),
        max_relations,
        {},
    )


def _satisfies(
    database: PhysicalDatabase,
    formula: Formula,
    assignment: dict[Variable, object],
    relations: dict[str, frozenset[tuple]],
    max_relations: int,
    cache: dict,
) -> bool:
    if isinstance(formula, Top):
        return True
    if isinstance(formula, Bottom):
        return False
    if isinstance(formula, ExtensionAtom):
        values = tuple(evaluate_term(database, term, assignment) for term in formula.args)
        return formula.holds_with(database, values, relations)
    if isinstance(formula, Atom):
        values = tuple(evaluate_term(database, term, assignment) for term in formula.args)
        if formula.predicate in relations:
            return values in relations[formula.predicate]
        return values in database.relation(formula.predicate)
    if isinstance(formula, Equals):
        return evaluate_term(database, formula.left, assignment) == evaluate_term(
            database, formula.right, assignment
        )
    if isinstance(formula, Not):
        return not _satisfies(database, formula.operand, assignment, relations, max_relations, cache)
    if isinstance(formula, And):
        return all(
            _satisfies(database, op, assignment, relations, max_relations, cache)
            for op in formula.operands
        )
    if isinstance(formula, Or):
        return any(
            _satisfies(database, op, assignment, relations, max_relations, cache)
            for op in formula.operands
        )
    if isinstance(formula, Implies):
        if not _satisfies(database, formula.antecedent, assignment, relations, max_relations, cache):
            return True
        return _satisfies(database, formula.consequent, assignment, relations, max_relations, cache)
    if isinstance(formula, Iff):
        left = _satisfies(database, formula.left, assignment, relations, max_relations, cache)
        right = _satisfies(database, formula.right, assignment, relations, max_relations, cache)
        return left == right
    if isinstance(formula, (Exists, Forall)):
        want = isinstance(formula, Exists)
        value_lists = []
        for variable in formula.variables:
            candidates = _first_order_candidates(database, formula.body, variable, relations, cache)
            if candidates is None:
                value_lists.append(_sorted_domain(database))
            elif want and not candidates:
                return False  # no value can satisfy the body's atoms
            elif not want and database.domain - candidates:
                return False  # some domain value falsifies the body: Forall fails
            else:
                value_lists.append(sorted(candidates, key=repr))
        for values in product(*value_lists):
            extended = dict(assignment)
            extended.update(zip(formula.variables, values))
            result = _satisfies(database, formula.body, extended, relations, max_relations, cache)
            if result == want:
                return want
        return not want
    if isinstance(formula, (SecondOrderExists, SecondOrderForall)):
        want = isinstance(formula, SecondOrderExists)
        for candidate in enumerate_relations(database.domain, formula.arity, max_relations):
            extended = dict(relations)
            extended[formula.predicate] = candidate
            result = _satisfies(database, formula.body, assignment, extended, max_relations, cache)
            if result == want:
                return want
        return not want
    raise EvaluationError(f"unknown formula node: {formula!r}")


def _first_order_candidates(
    database: PhysicalDatabase,
    body,
    variable: Variable,
    relations: Mapping[str, frozenset[tuple]],
    cache: dict,
) -> frozenset | None:
    """Sound value restriction for a first-order variable (see the evaluator).

    Unlike the first-order evaluator, atoms may be interpreted by an
    enclosing second-order quantifier (``relations``) or *re*-bound by one
    nested inside the body — the latter make the stored relation useless as
    a bound, so those predicates contribute nothing.

    The second-order search revisits the same quantifier under many relation
    assignments, so results are memoized per ``(body, variable)`` — but only
    when no second-order-bound relation contributed to the answer, since
    those change between visits; the rebound-predicate walk is memoized
    unconditionally (it is purely syntactic).
    """
    candidates_key = ("candidates", id(body), variable)
    if candidates_key in cache:
        return cache[candidates_key]
    rebound_key = ("rebound", id(body))
    rebound = cache.get(rebound_key)
    if rebound is None:
        rebound = {
            node.predicate
            for node in walk(body)
            if isinstance(node, (SecondOrderExists, SecondOrderForall))
        }
        cache[rebound_key] = rebound

    consulted_bound = False

    def atom_values(predicate: str, position: int) -> frozenset | None:
        nonlocal consulted_bound
        if predicate in rebound:
            return None
        if predicate in relations:
            consulted_bound = True
            return frozenset(row[position] for row in relations[predicate])
        if not database.has_relation(predicate):
            return None
        stored = database.relation(predicate)
        if isinstance(stored, Relation):
            return stored.column_values(position)
        return None  # lazy relation: enumerating it may be quadratic

    result = candidate_values(body, variable, atom_values, database.constant_value)
    if not consulted_bound:
        cache[candidates_key] = result
    return result


def evaluate_query_so(
    database: PhysicalDatabase,
    query: Query,
    max_relations: int = DEFAULT_MAX_RELATIONS,
) -> frozenset[tuple]:
    """Evaluate a (possibly second-order) query over a physical database."""
    cache: dict = {}
    value_lists = []
    for variable in query.head:
        candidates = _first_order_candidates(database, query.formula, variable, {}, cache)
        if candidates is None:
            value_lists.append(_sorted_domain(database))
        else:
            value_lists.append(sorted(candidates, key=repr))
    answers = set()
    for values in product(*value_lists):
        assignment = dict(zip(query.head, values))
        if _satisfies(database, query.formula, assignment, {}, max_relations, cache):
            answers.add(tuple(values))
    return frozenset(answers)

"""Vectorized column-batch execution of relational-algebra plans.

The tuple-at-a-time executor of :mod:`repro.physical.algebra` pays Python
interpreter overhead — a generator frame switch, a tuple build, a handful of
attribute lookups — **once per tuple per operator**.  With the optimizer
(PR 2), sideways information passing (PR 4) and prepared plans (PR 5) in
place, that per-tuple overhead is the dominant remaining hot-path cost.
This module removes it by processing **column batches**: stdlib-only
per-column sequences of up to ``REPRO_BATCH_SIZE`` rows (default
:data:`DEFAULT_BATCH_SIZE`) that flow through the same operator tree.

* **Batch scans** slice stored relations columnwise from a per-database
  columnar cache (built once per relation, cached on the immutable database
  instance exactly like the hash indexes of :mod:`repro.physical.indexes`).
* **Selections** evaluate structured bindings/equalities as vectorized mask
  passes with *selection-vector* semantics: the batch keeps its columns and
  carries a list of surviving row indices, so consecutive selections refine
  one mask over the same columns without copying a single value.  This is
  the executor's fusion rule — adjacent Selection/Projection/Rename
  operators collapse into column re-wiring plus one mask on the producing
  batch.  It is safe exactly because the compiler/optimizer only emit
  *structured* conditions (conjunctive, side-effect-free); an opaque
  ``condition`` callable falls back to row-at-a-time evaluation inside the
  batch.
* **Projections** and renames are pure column re-wiring with no per-tuple
  work.
* **Joins** (equi/natural/semi/anti) build hash tables per batch with
  C-speed ``zip`` key extraction and probe with one dict lookup per row;
  a build side that is a bare relation scan still reuses the stored prefix
  index, and semi-joins over indexed scans still probe per key.
* **Pipeline breakers** (the final table, memoized shared subplans, join
  build sides, difference/anti-join filters) materialize batches directly
  into row sets via ``zip(*columns)``.

Every observable side channel is kept **bit-identical** to the tuple
executor: answers (set semantics make emission deterministic),
:class:`~repro.physical.statistics.CardinalityRecorder` observations,
:class:`~repro.observability.explain.PlanProfiler` per-node row counts
(streamed rows, duplicates included, now counted once per batch), resource
``account`` totals (charged once per batch, one ``is None`` check per
batch) and index-vs-scan access decisions.  ``REPRO_NO_VECTOR=1`` (or the
``--no-vector`` CLI flag, or ``execute(..., vectorize=False)``) restores
the tuple executor byte-for-byte.
"""

from __future__ import annotations

import os

from itertools import chain, islice
from time import perf_counter
from typing import Iterator, Mapping, Sequence

from repro.errors import EvaluationError
from repro.physical.algebra import _ExecutionContext
from repro.physical.database import PhysicalDatabase
from repro.physical.indexes import indexes_for
from repro.physical.plan import (
    ActiveDomain,
    AntiJoin,
    CrossProduct,
    Difference,
    EquiJoin,
    IndexScan,
    LiteralTable,
    NaturalJoin,
    PlanNode,
    Projection,
    RenameColumns,
    ScanRelation,
    Selection,
    SemiJoin,
    Table,
    UnionAll,
)
from repro.physical.relation import Relation

__all__ = [
    "BATCH_SIZE_ENV",
    "DEFAULT_BATCH_SIZE",
    "ColumnBatch",
    "columnar_relation",
    "configured_batch_size",
    "execute_batched",
]

#: Environment variable tuning how many rows a scan packs into one batch.
#: The default was picked by the operator-level sweep in
#: :mod:`repro.harness.batchsweep` (scan/filter/join microbenchmarks keep
#: improving up to a few thousand rows as per-batch overhead amortizes, then
#: flatten; 4096 is the smallest size within noise of the fastest measured,
#: and smaller batches only bound peak memory these workloads never stress).
BATCH_SIZE_ENV = "REPRO_BATCH_SIZE"

#: Default rows per scan batch (see :data:`BATCH_SIZE_ENV`).
DEFAULT_BATCH_SIZE = 4096


def configured_batch_size() -> int:
    """The scan batch size: ``$REPRO_BATCH_SIZE`` when valid, else the default."""
    raw = os.environ.get(BATCH_SIZE_ENV, "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            return DEFAULT_BATCH_SIZE
        if value >= 1:
            return value
    return DEFAULT_BATCH_SIZE


class ColumnBatch:
    """One batch of rows in columnar form, with selection-vector semantics.

    ``columns`` holds one sequence per output column, all of physical length
    ``length``.  ``sel`` is ``None`` (every physical row is live) or a list
    of physical row indices, in order — the *selection vector*.  Operators
    that only filter (selections, semi/anti-joins, difference probes) refine
    ``sel`` and share the column sequences untouched; operators that need
    dense data (joins, pipeline breakers) gather once via :meth:`compact`.

    Column sequences are treated as immutable once a batch is built —
    batches may alias each other's columns (projection is re-wiring, rename
    is a pass-through), so nothing may mutate them in place.
    """

    __slots__ = ("columns", "length", "sel")

    def __init__(self, columns: tuple[Sequence, ...], length: int, sel: list[int] | None = None) -> None:
        self.columns = columns
        self.length = length
        self.sel = sel

    @property
    def count(self) -> int:
        """Number of *live* rows (what the profiler and charges count)."""
        sel = self.sel
        return self.length if sel is None else len(sel)

    def compact(self) -> tuple[Sequence, ...]:
        """The live rows' columns, gathered through the selection vector."""
        sel = self.sel
        if sel is None:
            return self.columns
        return tuple([column[i] for i in sel] for column in self.columns)

    def physical_indices(self) -> Sequence[int]:
        """Physical index of each live row, in live-row order."""
        sel = self.sel
        return range(self.length) if sel is None else sel

    def row_tuples(self) -> list[tuple]:
        """The live rows as tuples (used at pipeline breakers); C-speed zip."""
        columns = self.compact()
        if not columns:
            return [()] * self.count
        return list(zip(*columns))

    def key_tuples(self, positions: Sequence[int]) -> list[tuple]:
        """The live rows' key tuples over the given column positions."""
        sel = self.sel
        if sel is None:
            keys = [self.columns[p] for p in positions]
        else:
            keys = [[column[i] for i in sel] for column in (self.columns[p] for p in positions)]
        if not keys:
            return [()] * self.count
        return list(zip(*keys))


def columnar_relation(database: PhysicalDatabase, name: str) -> tuple[tuple[tuple, ...], int]:
    """``(columns, row_count)`` of a stored relation, cached on the instance.

    Columns are tuples in the relation's deterministic iteration order
    (sorted by repr, matching ``Relation.__iter__``).  Cached with the same
    ``object.__setattr__`` idiom as the hash indexes — databases are
    immutable, so the columnar image can never go stale.  Only materialized
    :class:`~repro.physical.relation.Relation` instances are cached; lazy
    relations are scanned in chunks instead (see ``_BatchContext``) because
    materializing them defeats their purpose.
    """
    cache = database.__dict__.get("_columnar")
    if cache is None:
        cache = {}
        object.__setattr__(database, "_columnar", cache)
    entry = cache.get(name)
    if entry is None:
        relation = database.relation(name)
        if not isinstance(relation, Relation):
            raise EvaluationError(f"relation {name!r} is lazy and has no columnar image")
        ordered = sorted(relation.tuples, key=repr)
        columns = tuple(zip(*ordered)) if ordered else ()
        # Concurrent builders compute the same value; last write wins.
        entry = cache[name] = (columns, len(ordered))
    return entry


def execute_batched(
    plan: PlanNode,
    database: PhysicalDatabase,
    *,
    use_indexes: bool = True,
    recorder=None,
    profiler=None,
    batch_rows: int | None = None,
) -> Table:
    """Execute *plan* on column batches; the vectorized twin of ``execute``.

    Same contract as :func:`repro.physical.algebra.execute` — same answers,
    same recorder/profiler/account observations, same access-path decisions.
    *batch_rows* overrides the scan batch size (tests and the batch-size
    sweep use it; everyone else follows ``$REPRO_BATCH_SIZE``).
    """
    context = _BatchContext(database, use_indexes, recorder, profiler, batch_rows)
    context.mark_shared_subplans(plan)
    if profiler is not None:
        profiler.set_root(plan)
    return context.table(plan)


_NO_ROWS: tuple[tuple, ...] = ()


class _BatchContext(_ExecutionContext):
    """Batch-granular execution state; column resolution and the shared-subplan
    memo are inherited from the tuple executor's context unchanged."""

    def __init__(
        self,
        database: PhysicalDatabase,
        use_indexes: bool,
        recorder=None,
        profiler=None,
        batch_rows: int | None = None,
    ) -> None:
        super().__init__(database, use_indexes, recorder, profiler)
        self.batch_rows = batch_rows if batch_rows and batch_rows >= 1 else configured_batch_size()
        #: Shared subplans memoized directly as one columnar batch (only
        #: used when no profiler/recorder observes the materialization).
        self._batch_memo: dict[PlanNode, ColumnBatch] = {}

    # Materialization ----------------------------------------------------------

    def table(self, plan: PlanNode) -> Table:
        """Materialize *plan* (through the memo for shared subplans)."""
        cached = self._memo.get(plan)
        if cached is None:
            if self.deadline is not None:
                self.deadline.check("plan materialization")
            # Resolve (and thereby validate) the whole tree's columns before
            # pulling a single batch, exactly like the tuple executor — a
            # malformed plan must raise EvaluationError, never produce rows.
            columns = self.columns(plan)
            # One C-driven pass: frozenset consumes the chained batch rows
            # directly (no intermediate set + copy).
            cached = Table.trusted(
                columns,
                frozenset(
                    chain.from_iterable(
                        batch.row_tuples() for batch in self._maybe_observed(plan)
                    )
                ),
            )
            if plan in self._shared:
                self._memo[plan] = cached
            if self.recorder is not None:
                self.recorder.record(plan, len(cached.rows))
        elif self.profiler is not None:
            self.profiler.memo_hit(plan)
        return cached

    def batches(self, plan: PlanNode) -> Iterator[ColumnBatch]:
        """Stream *plan*'s batches; shared subplans are served from the memo."""
        if plan in self._shared:
            if self.profiler is None and self.recorder is None:
                # Unobserved executions memoize shared subplans in columnar
                # form directly: same set-semantics dedup, but no Table ->
                # rows -> columns round trip per consumer.  A profiler needs
                # the Table memo (memo hits are part of EXPLAIN); a recorder
                # observes the materialized cardinality there.
                batch = self._batch_memo.get(plan)
                if batch is None:
                    if self.deadline is not None:
                        self.deadline.check("plan materialization")
                    columns = self.columns(plan)
                    rows = set(
                        chain.from_iterable(b.row_tuples() for b in self._batches(plan))
                    )
                    # Width-preserving even when empty: consumers index
                    # columns by position regardless of row count.
                    packed = tuple(zip(*rows)) if rows else tuple(() for __ in columns)
                    batch = ColumnBatch(packed, len(rows))
                    self._batch_memo[plan] = batch
                if batch.length or not batch.columns:
                    yield batch
                return
            table = self.table(plan)
            rows = list(table.rows)
            if rows or not table.columns:
                columns = tuple(zip(*rows)) if rows and table.columns else ()
                yield ColumnBatch(columns, len(rows))
        else:
            yield from self._maybe_observed(plan)

    def _maybe_observed(self, plan: PlanNode) -> Iterator[ColumnBatch]:
        if self.profiler is None:
            return self._batches(plan)
        return self._observed(plan, self._batches(plan))

    def _observed(self, plan: PlanNode, source: Iterator[ColumnBatch]) -> Iterator[ColumnBatch]:
        """Meter a node's batches: exact row count, batch count, wall time.

        The hook granularity is the whole point of batching the profiler:
        one ``observe_batch`` call per batch replaces two clock reads per
        row.  ``observe_start`` fires on the first pull so a node that
        produces no batches still reports ``rows=0`` (like the tuple
        executor's ``wrap``), and never-pulled nodes keep reporting ``None``.
        """
        profiler = self.profiler
        profiler.observe_start(plan)
        while True:
            started = perf_counter()
            try:
                batch = next(source)
            except StopIteration:
                profiler.observe_tail(plan, perf_counter() - started)
                return
            profiler.observe_batch(plan, batch.count, perf_counter() - started)
            yield batch

    # Operators ----------------------------------------------------------------

    def _batches(self, plan: PlanNode) -> Iterator[ColumnBatch]:
        if isinstance(plan, ScanRelation):
            yield from self._scan_batches(plan.relation, charge=True)
            return
        if isinstance(plan, IndexScan):
            yield from self._index_scan_batches(plan)
            return
        if isinstance(plan, ActiveDomain):
            values = list(self.database.active_domain())
            size = self.batch_rows
            for start in range(0, len(values), size):
                chunk = values[start : start + size]
                yield ColumnBatch((chunk,), len(chunk))
            return
        if isinstance(plan, LiteralTable):
            width = len(plan.columns)
            for row in plan.rows:
                if len(row) != width:
                    raise EvaluationError(f"row {row!r} does not match columns {plan.columns!r}")
            rows = list(plan.rows)
            if rows:
                columns = tuple(zip(*rows)) if width else ()
                yield ColumnBatch(columns, len(rows))
            return
        if isinstance(plan, Selection):
            yield from self._selection_batches(plan)
            return
        if isinstance(plan, Projection):
            source_columns = self.columns(plan.source)
            indexes = [source_columns.index(column) for column in plan.columns]
            source = plan.source
            if self.profiler is None and source not in self._shared:
                # Fuse the projection into the join's probe gather so dropped
                # columns are never materialized.  Profiled executions keep
                # the unfused path: EXPLAIN ANALYZE meters each node's own
                # batch stream, which fusion would collapse.  (Shared joins
                # must materialize their full width for the memo.)
                if isinstance(source, NaturalJoin):
                    if any(c in self.columns(source.right) for c in self.columns(source.left)):
                        yield from self._natural_join_batches(source, keep=indexes)
                        return
                elif isinstance(source, EquiJoin) and source.pairs:
                    yield from self._equi_join_batches(source, keep=indexes)
                    return
            for batch in self.batches(source):
                yield ColumnBatch(tuple(batch.columns[i] for i in indexes), batch.length, batch.sel)
            return
        if isinstance(plan, RenameColumns):
            yield from self.batches(plan.source)
            return
        if isinstance(plan, NaturalJoin):
            yield from self._natural_join_batches(plan)
            return
        if isinstance(plan, EquiJoin):
            yield from self._equi_join_batches(plan)
            return
        if isinstance(plan, CrossProduct):
            yield from self._cross_batches(plan.left, plan.right)
            return
        if isinstance(plan, UnionAll):
            columns = self.columns(plan)
            yield from self.batches(plan.left)
            yield from self._aligned_batches(plan.right, columns)
            return
        if isinstance(plan, Difference):
            yield from self._difference_batches(plan)
            return
        if isinstance(plan, SemiJoin):
            yield from self._semi_join_batches(plan)
            return
        if isinstance(plan, AntiJoin):
            yield from self._anti_join_batches(plan)
            return
        raise EvaluationError(f"unknown plan node: {plan!r}")

    # Access paths -------------------------------------------------------------

    def _scan_batches(self, relation_name: str, charge: bool) -> Iterator[ColumnBatch]:
        """Columnar slices of a stored relation (chunked rows for lazy ones)."""
        relation = self.database.relation(relation_name)
        account = self.account if charge else None
        size = self.batch_rows
        if isinstance(relation, Relation):
            columns, total = columnar_relation(self.database, relation_name)
            for start in range(0, total, size):
                stop = min(start + size, total)
                if account is not None:
                    account.rows_scanned += stop - start
                yield ColumnBatch(tuple(column[start:stop] for column in columns), stop - start)
            return
        # Lazy relation (the virtual NE encoding): stream row chunks without
        # caching a columnar image whose materialized size is quadratic.
        iterator = iter(relation)
        while True:
            chunk = [tuple(row) for row in islice(iterator, size)]
            if not chunk:
                return
            if account is not None:
                account.rows_scanned += len(chunk)
            yield ColumnBatch(tuple(zip(*chunk)), len(chunk))

    def _rows_to_batches(self, rows: Sequence[tuple], width: int) -> Iterator[ColumnBatch]:
        """Chunk already-materialized row tuples (index buckets) into batches."""
        size = self.batch_rows
        for start in range(0, len(rows), size):
            chunk = rows[start : start + size]
            columns = tuple(zip(*chunk)) if width else ()
            yield ColumnBatch(columns, len(chunk))

    def _index_scan_batches(self, plan: IndexScan) -> Iterator[ColumnBatch]:
        positions = tuple(plan.columns.index(column) for column, __ in plan.bindings)
        key = tuple(value for __, value in plan.bindings)
        if self.use_indexes:
            rows = indexes_for(self.database).lookup(plan.relation, positions, key)
            if rows is not None:
                if self.profiler is not None:
                    self.profiler.note_access(plan, "index")
                if self.account is not None:
                    self.account.rows_scanned += len(rows)
                yield from self._rows_to_batches(rows, len(plan.columns))
                return
        # No index available (lazy relation) or indexing disabled: filter scan.
        if self.profiler is not None:
            self.profiler.note_access(plan, "scan")
        if self.account is not None:
            self.account.rows_scanned += len(self.database.relation(plan.relation))
        for batch in self._scan_batches(plan.relation, charge=False):
            sel = None
            for position, value in zip(positions, key):
                column = batch.columns[position]
                if sel is None:
                    sel = [i for i, v in enumerate(column) if v == value]
                else:
                    sel = [i for i in sel if column[i] == value]
            yield ColumnBatch(batch.columns, batch.length, sel)

    # Filters ------------------------------------------------------------------

    def _selection_batches(self, plan: Selection) -> Iterator[ColumnBatch]:
        source_columns = self.columns(plan.source)
        if plan.condition is not None:
            # Opaque predicate: row-at-a-time inside the batch (the tuple
            # executor's semantics; nothing vectorizable about a callable).
            condition = plan.condition
            for batch in self.batches(plan.source):
                rows = batch.row_tuples()
                sel = [
                    physical
                    for physical, row in zip(batch.physical_indices(), rows)
                    if condition(dict(zip(source_columns, row)))
                ]
                yield ColumnBatch(batch.columns, batch.length, sel)
            return
        bindings = [(source_columns.index(column), value) for column, value in plan.bindings]
        groups = [[source_columns.index(column) for column in group] for group in plan.equalities]
        for batch in self.batches(plan.source):
            sel = batch.sel
            columns = batch.columns
            for position, value in bindings:
                column = columns[position]
                if sel is None:
                    sel = [i for i, v in enumerate(column) if v == value]
                else:
                    sel = [i for i in sel if column[i] == value]
            for group in groups:
                first = columns[group[0]]
                rest = [columns[position] for position in group[1:]]
                if sel is None:
                    if len(rest) == 1:
                        other = rest[0]
                        sel = [i for i, (a, b) in enumerate(zip(first, other)) if a == b]
                    else:
                        sel = [
                            i
                            for i in range(batch.length)
                            if all(column[i] == first[i] for column in rest)
                        ]
                elif len(rest) == 1:
                    other = rest[0]
                    sel = [i for i in sel if first[i] == other[i]]
                else:
                    sel = [i for i in sel if all(column[i] == first[i] for column in rest)]
            yield ColumnBatch(columns, batch.length, sel)

    def _aligned_batches(self, plan: PlanNode, columns: tuple[str, ...]) -> Iterator[ColumnBatch]:
        """Stream *plan*'s batches with columns reordered to *columns* — pure
        re-wiring, where the tuple executor rebuilt every row."""
        own = self.columns(plan)
        if own == columns:
            yield from self.batches(plan)
            return
        indexes = [own.index(column) for column in columns]
        for batch in self.batches(plan):
            yield ColumnBatch(tuple(batch.columns[i] for i in indexes), batch.length, batch.sel)

    def _difference_batches(self, plan: Difference) -> Iterator[ColumnBatch]:
        columns = self.columns(plan)
        excluded: set[tuple] = set()
        for batch in self._aligned_batches(plan.right, columns):
            excluded.update(batch.row_tuples())
        if self.recorder is not None:
            self.recorder.record(plan.right, len(excluded))
        for batch in self.batches(plan.left):
            rows = batch.row_tuples()
            sel = [
                physical
                for physical, row in zip(batch.physical_indices(), rows)
                if row not in excluded
            ]
            yield ColumnBatch(batch.columns, batch.length, sel)

    # Joins --------------------------------------------------------------------

    def _join_buckets(self, build: PlanNode, key_positions: tuple[int, ...]):
        """``(buckets, build_cols, scalar, unique)`` hash table for a build side.

        Same contract as the tuple executor's ``_join_buckets`` — identical
        access decision, recorder observation and deadline check — in the
        one bucket layout the batch probe wants: ``build_cols`` holds the
        build side transposed (one sequence per column) and ``buckets``
        maps each key to **row indices** into those columns — a bare
        ``int`` while every key is distinct (``unique=True``, the common
        functional-build case, driven entirely by C-level
        ``dict(zip(...))``), lists of ints after the first duplicate.

        Stored-relation builds come from the cached
        :meth:`~repro.physical.indexes.DatabaseIndexes.columnar` image and
        cost nothing per execution; anything else is accumulated columnwise
        with C-speed extends (no row tuple is ever materialized).
        Single-column keys are bare values (``scalar=True``) so neither
        build nor probe ever constructs a key tuple.
        """
        scalar = len(key_positions) == 1
        if self.use_indexes:
            node = build
            if (
                not isinstance(node, ScanRelation)
                and self.profiler is None
                and self.recorder is None
                and self.account is None
            ):
                # With observability off nothing can distinguish a fresh
                # build over a pure rename from a stored-index lookup —
                # renames change column *names* only, never positions or
                # values — so look through them to the scan.  Any active
                # profiler/recorder/account keeps the fresh build so access
                # decisions, feedback and charges match the tuple executor.
                while isinstance(node, RenameColumns):
                    node = node.source
            if isinstance(node, ScanRelation):
                indexes = indexes_for(self.database)
                entry = indexes.columnar(node.relation, key_positions)
                if entry is not None:
                    if self.profiler is not None:
                        self.profiler.note_access(build, "index")
                    buckets, columns, unique = entry
                    if not unique and scalar:
                        # Duplicate-key scalar builds probe fastest from the
                        # pre-transposed per-key buckets (``build_cols is
                        # None`` signals parts mode to the probe): matching
                        # bucket columns concatenate with one C extend per
                        # key instead of an index gather per matched row.
                        parts = indexes.scalar_columns(node.relation, key_positions[0])
                        if parts is not None:
                            return parts, None, True, False
                    return buckets, columns, scalar, unique
        if self.deadline is not None:
            self.deadline.check("join build")
        build_cols = None
        growable = False
        buckets: dict = {}
        total = 0
        unique = True
        for batch in self.batches(build):
            # Keys come out of the compacted columns (already gathered once
            # through the selection vector) rather than re-gathering.
            compacted = batch.compact()
            if scalar:
                keys = compacted[key_positions[0]]
            else:
                keys = list(zip(*map(compacted.__getitem__, key_positions)))
            if build_cols is None:
                # Single-batch builds (the common case) keep the compacted
                # columns as-is; only a second batch pays for list copies.
                build_cols = compacted
            else:
                if not growable:
                    build_cols = [list(column) for column in build_cols]
                    growable = True
                for target, column in zip(build_cols, compacted):
                    target.extend(column)
            base = total
            total += batch.count
            if unique:
                flat = dict(zip(keys, range(base, total)))
                if len(flat) == total - base and buckets.keys().isdisjoint(flat):
                    buckets.update(flat)
                    continue
                # First duplicate key: regroup what we have into index lists
                # and fall through to the per-key loop for this batch onward.
                unique = False
                buckets = {key: [i] for key, i in buckets.items()}
            for offset, key in enumerate(keys, base):
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = [offset]
                else:
                    bucket.append(offset)
        if self.recorder is not None:
            self.recorder.record(build, total)
        if build_cols is None:
            # No batches at all (empty build side): keep the output width.
            build_cols = tuple(() for __ in self.columns(build))
        return buckets, tuple(build_cols) if growable else build_cols, scalar, unique

    def _probe_batches(
        self,
        probe: PlanNode,
        probe_key: Sequence[int],
        buckets: Mapping,
        build_cols: tuple | None,
        scalar: bool,
        unique: bool,
        out_spec: Sequence[tuple[str, int]],
    ) -> Iterator[ColumnBatch]:
        """Hash-probe *probe*'s batches.

        *out_spec* lists the output columns in order as ``("p", i)`` (probe
        column *i*) or ``("b", j)`` (build column *j*, an index into
        *build_cols*).  A fused projection passes only the columns it
        keeps, so dropped columns are never gathered at all.
        """
        if (
            not buckets
            and self.profiler is None
            and self.recorder is None
            and self.account is None
        ):
            # An empty hash table matches nothing: with observability off the
            # probe side never executes at all.  Any attached observer keeps
            # the scan so probe-side row counts, feedback observations and
            # scan charges match the tuple executor.
            return
        get = buckets.get
        for batch in self.batches(probe):
            sel = batch.sel
            columns = batch.columns
            if scalar:
                column = columns[probe_key[0]]
                keys = column if sel is None else map(column.__getitem__, sel)
            else:
                keys = batch.key_tuples(probe_key)
            # The gather list is built in *physical* index space (zipping the
            # live indices with the C-driven ``map(get, ...)`` lookups), so
            # output columns need one gather over the raw columns instead of
            # compact-then-gather.
            gather: list[int] = []
            append_gather = gather.append
            extend_gather = gather.extend
            live = range(batch.length) if sel is None else sel
            if build_cols is None:
                # Parts mode: buckets map each key to its matching rows
                # pre-transposed as column tuples; build output columns
                # concatenate with one C extend per key.
                build_acc: list = [[] if side == "b" else None for side, __ in out_spec]
                targets = [
                    (acc, pos)
                    for acc, (side, pos) in zip(build_acc, out_spec)
                    if side == "b"
                ]
                for i, part in zip(live, map(get, keys)):
                    if part is not None:
                        n = len(part[0])
                        if n == 1:
                            append_gather(i)
                        else:
                            extend_gather([i] * n)
                        for acc, pos in targets:
                            acc.extend(part[pos])
                out = [
                    acc if acc is not None else [columns[pos][i] for i in gather]
                    for acc, (__, pos) in zip(build_acc, out_spec)
                ]
                yield ColumnBatch(tuple(out), len(gather))
                continue
            # Buckets: key -> row index into build_cols (unique) or index list.
            bgather: list[int] = []
            if unique:
                append_b = bgather.append
                for i, j in zip(live, map(get, keys)):
                    if j is not None:
                        append_gather(i)
                        append_b(j)
            else:
                append_b = bgather.append
                extend_b = bgather.extend
                for i, indices in zip(live, map(get, keys)):
                    if indices:
                        if len(indices) == 1:
                            append_gather(i)
                            append_b(indices[0])
                        else:
                            extend_gather([i] * len(indices))
                            extend_b(indices)
            out = [
                [columns[pos][i] for i in gather]
                if side == "p"
                else [build_cols[pos][j] for j in bgather]
                for side, pos in out_spec
            ]
            yield ColumnBatch(tuple(out), len(gather))

    def _natural_join_batches(
        self, plan: NaturalJoin, keep: Sequence[int] | None = None
    ) -> Iterator[ColumnBatch]:
        left_columns = self.columns(plan.left)
        right_columns = self.columns(plan.right)
        shared = tuple(column for column in left_columns if column in right_columns)
        right_only = tuple(column for column in right_columns if column not in shared)
        if not shared:
            assert keep is None  # fusion never reaches the cross-product path
            yield from self._cross_batches(plan.left, plan.right)
            return
        left_key = [left_columns.index(column) for column in shared]
        right_key = tuple(right_columns.index(column) for column in shared)
        right_rest = [right_columns.index(column) for column in right_only]
        n_left = len(left_columns)
        if keep is None:
            out_spec = [("p", i) for i in range(n_left)] + [("b", i) for i in right_rest]
        else:
            out_spec = [
                ("p", p) if p < n_left else ("b", right_rest[p - n_left]) for p in keep
            ]
        buckets, build_cols, scalar, unique = self._join_buckets(plan.right, right_key)
        yield from self._probe_batches(
            plan.left, left_key, buckets, build_cols, scalar, unique, out_spec
        )

    def _equi_join_batches(
        self, plan: EquiJoin, keep: Sequence[int] | None = None
    ) -> Iterator[ColumnBatch]:
        if not plan.pairs:
            assert keep is None  # fusion never reaches the cross-product path
            yield from self._cross_batches(plan.left, plan.right)
            return
        left_columns = self.columns(plan.left)
        right_columns = self.columns(plan.right)
        left_key = [left_columns.index(left) for left, __ in plan.pairs]
        right_key = tuple(right_columns.index(right) for __, right in plan.pairs)
        n_left = len(left_columns)
        if keep is None:
            out_spec = [("p", i) for i in range(n_left)] + [
                ("b", i) for i in range(len(right_columns))
            ]
        else:
            out_spec = [("p", p) if p < n_left else ("b", p - n_left) for p in keep]
        buckets, build_cols, scalar, unique = self._join_buckets(plan.right, right_key)
        yield from self._probe_batches(
            plan.left, left_key, buckets, build_cols, scalar, unique, out_spec
        )

    def _cross_batches(self, left: PlanNode, right: PlanNode) -> Iterator[ColumnBatch]:
        right_rows: list[ColumnBatch] = [batch for batch in self.batches(right) if batch.count]
        right_cols: list[list] = [[] for __ in range(len(self.columns(right)))]
        for batch in right_rows:
            for target, column in zip(right_cols, batch.compact()):
                target.extend(column)
        k = len(right_cols[0]) if right_cols else sum(batch.count for batch in right_rows)
        for batch in self.batches(left):
            left_cols = batch.compact()
            m = batch.count
            out = [[value for value in column for __ in range(k)] for column in left_cols]
            out.extend(column * m for column in right_cols)
            yield ColumnBatch(tuple(out), m * k)

    # Semi/anti joins ----------------------------------------------------------

    def _filter_keys(self, plan: SemiJoin | AntiJoin) -> tuple[set, bool]:
        """``(keys, scalar)``: distinct keys of a semi/anti-join's filter side.

        Single-column keys are bare values (``scalar=True``), collected with
        a C-speed ``set.update`` over the key column; multi-column keys are
        tuples, exactly like the tuple executor's ``_filter_keys``.
        """
        if self.deadline is not None:
            self.deadline.check("filter build")
        filter_columns = self.columns(plan.filter)
        positions = [filter_columns.index(column) for __, column in plan.pairs]
        scalar = len(positions) == 1
        if (
            scalar
            and self.use_indexes
            and self.profiler is None
            and self.recorder is None
            and self.account is None
        ):
            # With observability off, a filter side that is a pure stored
            # column (through renames/projections, which re-wire but never
            # compute) is served from the cached distinct-values index.
            resolved = self._scan_column(plan.filter, positions[0])
            if resolved is not None:
                cached = indexes_for(self.database).distinct(*resolved)
                if cached is not None:
                    return cached, True
        keys: set = set()
        for batch in self.batches(plan.filter):
            if scalar:
                position = positions[0]
                sel = batch.sel
                column = batch.columns[position]
                keys.update(column if sel is None else map(column.__getitem__, sel))
            else:
                keys.update(batch.key_tuples(positions))
        if self.recorder is not None and {column for __, column in plan.pairs} == set(filter_columns):
            # Only when the pairs cover every filter column is the distinct
            # key count the node's true cardinality (same rule as the tuple
            # executor's _filter_keys).
            self.recorder.record(plan.filter, len(keys))
        return keys, scalar

    def _scan_column(self, plan: PlanNode, position: int) -> tuple[str, int] | None:
        """``(relation, position)`` when *plan*'s output column *position*
        is a stored-relation column reached only through renames and
        projections (pure column re-wiring), else ``None``."""
        node = plan
        while True:
            if isinstance(node, RenameColumns):
                node = node.source
            elif isinstance(node, Projection):
                source_columns = self.columns(node.source)
                position = source_columns.index(node.columns[position])
                node = node.source
            elif isinstance(node, ScanRelation):
                return node.relation, position
            else:
                return None

    def _key_filtered(
        self, source: PlanNode, positions: tuple[int, ...], keys: set, scalar: bool, keep: bool
    ) -> Iterator[ColumnBatch]:
        """Source batches masked by key-set membership (semi/anti probe)."""
        if scalar:
            position = positions[0]
            for batch in self.batches(source):
                column = batch.columns[position]
                sel = batch.sel
                if sel is None:
                    if keep:
                        sel = [i for i, v in enumerate(column) if v in keys]
                    else:
                        sel = [i for i, v in enumerate(column) if v not in keys]
                elif keep:
                    sel = [i for i in sel if column[i] in keys]
                else:
                    sel = [i for i in sel if column[i] not in keys]
                yield ColumnBatch(batch.columns, batch.length, sel)
            return
        for batch in self.batches(source):
            key_rows = batch.key_tuples(positions)
            sel = [
                physical
                for physical, key in zip(batch.physical_indices(), key_rows)
                if (key in keys) is keep
            ]
            yield ColumnBatch(batch.columns, batch.length, sel)

    def _semi_join_batches(self, plan: SemiJoin) -> Iterator[ColumnBatch]:
        source_columns = self.columns(plan.source)
        positions = tuple(source_columns.index(column) for column, __ in plan.pairs)
        keys, scalar = self._filter_keys(plan)
        if not keys:
            return
        if self.use_indexes and plan.pairs and isinstance(plan.source, ScanRelation):
            # The sideways payoff: probe the stored prefix index once per key
            # instead of scanning the whole relation.  Buckets are disjoint
            # per key, so no row is produced twice.
            indexes = indexes_for(self.database)
            if scalar:
                # Pre-transposed buckets: the probe concatenates column
                # tuples per matching key — no row tuple is built and nothing
                # is re-transposed.  Buckets are disjoint per key, so no row
                # is produced twice.
                columnar = indexes.scalar_columns(plan.source.relation, positions[0])
                if columnar is not None:
                    if self.profiler is not None:
                        self.profiler.note_access(plan, "index")
                    get = columnar.get
                    parts = [part for part in map(get, keys) if part is not None]
                    if parts:
                        # zip(*parts) regroups the per-key column tuples by
                        # output column entirely in C.
                        out = tuple(
                            list(chain.from_iterable(group)) for group in zip(*parts)
                        )
                        yield ColumnBatch(out, len(out[0]) if out else 0)
                    return
            else:
                index = indexes.prefix(plan.source.relation, positions)
                if index is not None:
                    if self.profiler is not None:
                        self.profiler.note_access(plan, "index")
                    width = len(source_columns)
                    collected: list[tuple] = []
                    size = self.batch_rows
                    for key in keys:
                        collected.extend(index.get(key, _NO_ROWS))
                        if len(collected) >= size:
                            yield from self._rows_to_batches(collected, width)
                            collected = []
                    if collected:
                        yield from self._rows_to_batches(collected, width)
                    return
        yield from self._key_filtered(plan.source, positions, keys, scalar, keep=True)

    def _anti_join_batches(self, plan: AntiJoin) -> Iterator[ColumnBatch]:
        source_columns = self.columns(plan.source)
        positions = tuple(source_columns.index(column) for column, __ in plan.pairs)
        keys, scalar = self._filter_keys(plan)
        yield from self._key_filtered(plan.source, positions, keys, scalar, keep=False)

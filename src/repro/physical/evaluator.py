"""Tarskian evaluation of queries over physical databases.

This is the classical semantic notion of truth the paper attributes to the
"database as interpretation" view (Section 1): the answer to a query
``(x) . phi(x)`` over a physical database ``PB = (L, I)`` is the set of
tuples ``d`` over the domain such that ``I`` satisfies ``phi(d)``
(Section 2.1).

The evaluator walks the formula with an explicit variable assignment.
Quantifiers range over the whole (finite) domain.  Second-order quantifiers
are *not* handled here — see :mod:`repro.physical.second_order` — so that
callers that expect first-order behaviour get a clear error instead of an
accidental exponential enumeration.
"""

from __future__ import annotations

from itertools import product
from typing import Mapping

from repro.errors import EvaluationError, UnsupportedFormulaError
from repro.logic.formulas import (
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ExtensionAtom,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    SecondOrderExists,
    SecondOrderForall,
    Top,
)
from repro.logic.queries import Query
from repro.logic.terms import Constant, Term, Variable
from repro.physical.database import PhysicalDatabase

__all__ = ["evaluate_term", "satisfies", "evaluate_query", "evaluate_sentence"]


def evaluate_term(database: PhysicalDatabase, term: Term, assignment: Mapping[Variable, object]) -> object:
    """Return the domain element denoted by *term* under *assignment*."""
    if isinstance(term, Constant):
        return database.constant_value(term.name)
    if isinstance(term, Variable):
        try:
            return assignment[term]
        except KeyError:
            raise EvaluationError(f"unbound variable {term.name!r}") from None
    raise EvaluationError(f"not a term: {term!r}")


def satisfies(
    database: PhysicalDatabase,
    formula: Formula,
    assignment: Mapping[Variable, object] | None = None,
) -> bool:
    """Return ``True`` when *database* satisfies *formula* under *assignment*."""
    return _satisfies(database, formula, dict(assignment or {}))


def _satisfies(database: PhysicalDatabase, formula: Formula, assignment: dict[Variable, object]) -> bool:
    if isinstance(formula, Top):
        return True
    if isinstance(formula, Bottom):
        return False
    if isinstance(formula, ExtensionAtom):
        values = tuple(evaluate_term(database, term, assignment) for term in formula.args)
        return formula.holds(database, values)
    if isinstance(formula, Atom):
        values = tuple(evaluate_term(database, term, assignment) for term in formula.args)
        return values in database.relation(formula.predicate)
    if isinstance(formula, Equals):
        return evaluate_term(database, formula.left, assignment) == evaluate_term(
            database, formula.right, assignment
        )
    if isinstance(formula, Not):
        return not _satisfies(database, formula.operand, assignment)
    if isinstance(formula, And):
        return all(_satisfies(database, operand, assignment) for operand in formula.operands)
    if isinstance(formula, Or):
        return any(_satisfies(database, operand, assignment) for operand in formula.operands)
    if isinstance(formula, Implies):
        if not _satisfies(database, formula.antecedent, assignment):
            return True
        return _satisfies(database, formula.consequent, assignment)
    if isinstance(formula, Iff):
        return _satisfies(database, formula.left, assignment) == _satisfies(database, formula.right, assignment)
    if isinstance(formula, Exists):
        return _satisfies_quantifier(database, formula, assignment, want=True)
    if isinstance(formula, Forall):
        return not _satisfies_quantifier(database, formula, assignment, want=False)
    if isinstance(formula, (SecondOrderExists, SecondOrderForall)):
        raise UnsupportedFormulaError(
            "second-order quantifier met by the first-order evaluator; "
            "use repro.physical.second_order.satisfies_so instead"
        )
    raise EvaluationError(f"unknown formula node: {formula!r}")


def _satisfies_quantifier(
    database: PhysicalDatabase,
    formula: Exists | Forall,
    assignment: dict[Variable, object],
    want: bool,
) -> bool:
    """Search for an assignment of the bound variables making the body == *want*.

    ``Exists`` asks whether some extension satisfies the body (``want=True``);
    ``Forall`` is evaluated as "no extension falsifies the body"
    (``want=False``), which is why the caller negates the result.
    """
    variables = formula.variables
    domain = sorted(database.domain, key=repr)
    for values in product(domain, repeat=len(variables)):
        extended = dict(assignment)
        extended.update(zip(variables, values))
        if _satisfies(database, formula.body, extended) == want:
            return True
    return False


def evaluate_query(database: PhysicalDatabase, query: Query) -> frozenset[tuple]:
    """Return ``Q(PB)``: all domain tuples satisfying the query condition.

    For a Boolean query the result is ``{()}`` (true) or ``frozenset()``
    (false), matching the paper's convention that the answer to a sentence is
    a 0-ary relation.
    """
    domain = sorted(database.domain, key=repr)
    answers = set()
    for values in product(domain, repeat=query.arity):
        assignment = dict(zip(query.head, values))
        if _satisfies(database, query.formula, assignment):
            answers.add(tuple(values))
    return frozenset(answers)


def evaluate_sentence(database: PhysicalDatabase, formula: Formula) -> bool:
    """Evaluate a sentence (no free variables) to a truth value."""
    return satisfies(database, formula, {})

"""Tarskian evaluation of queries over physical databases.

This is the classical semantic notion of truth the paper attributes to the
"database as interpretation" view (Section 1): the answer to a query
``(x) . phi(x)`` over a physical database ``PB = (L, I)`` is the set of
tuples ``d`` over the domain such that ``I`` satisfies ``phi(d)``
(Section 2.1).

The evaluator walks the formula with an explicit variable assignment.
Quantifiers conceptually range over the whole (finite) domain, but the
enumeration is **bounded** wherever that is provably lossless: a quantified
variable that must satisfy a positive atom (in a conjunctive position) can
only take values stored in the matching relation column, so only those are
tried — the classic semi-naive restriction.  The candidate sets are
*necessary* conditions derived per variable (atoms intersect across
conjunctions, union across disjunctions, nothing through negations), so the
bounded search returns exactly the unbounded answer; variables with no such
restriction still range over the full domain, which keeps e.g.
``(x) . ~P(x)`` ranging over elements mentioned nowhere.  Second-order
quantifiers are *not* handled here — see
:mod:`repro.physical.second_order` — so that callers that expect first-order
behaviour get a clear error instead of an accidental exponential
enumeration.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Mapping

from repro.errors import DatabaseError, EvaluationError, UnsupportedFormulaError
from repro.logic.formulas import (
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ExtensionAtom,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    SecondOrderExists,
    SecondOrderForall,
    Top,
)
from repro.logic.queries import Query
from repro.logic.terms import Constant, Term, Variable
from repro.physical.database import PhysicalDatabase
from repro.physical.relation import Relation

__all__ = [
    "evaluate_term",
    "satisfies",
    "evaluate_query",
    "evaluate_sentence",
    "candidate_values",
]


def evaluate_term(database: PhysicalDatabase, term: Term, assignment: Mapping[Variable, object]) -> object:
    """Return the domain element denoted by *term* under *assignment*."""
    if isinstance(term, Constant):
        return database.constant_value(term.name)
    if isinstance(term, Variable):
        try:
            return assignment[term]
        except KeyError:
            raise EvaluationError(f"unbound variable {term.name!r}") from None
    raise EvaluationError(f"not a term: {term!r}")


def satisfies(
    database: PhysicalDatabase,
    formula: Formula,
    assignment: Mapping[Variable, object] | None = None,
) -> bool:
    """Return ``True`` when *database* satisfies *formula* under *assignment*."""
    return _satisfies(database, formula, dict(assignment or {}), {})


def _satisfies(
    database: PhysicalDatabase,
    formula: Formula,
    assignment: dict[Variable, object],
    cache: dict,
) -> bool:
    if isinstance(formula, Top):
        return True
    if isinstance(formula, Bottom):
        return False
    if isinstance(formula, ExtensionAtom):
        values = tuple(evaluate_term(database, term, assignment) for term in formula.args)
        return formula.holds(database, values)
    if isinstance(formula, Atom):
        values = tuple(evaluate_term(database, term, assignment) for term in formula.args)
        return values in database.relation(formula.predicate)
    if isinstance(formula, Equals):
        return evaluate_term(database, formula.left, assignment) == evaluate_term(
            database, formula.right, assignment
        )
    if isinstance(formula, Not):
        return not _satisfies(database, formula.operand, assignment, cache)
    if isinstance(formula, And):
        return all(_satisfies(database, operand, assignment, cache) for operand in formula.operands)
    if isinstance(formula, Or):
        return any(_satisfies(database, operand, assignment, cache) for operand in formula.operands)
    if isinstance(formula, Implies):
        if not _satisfies(database, formula.antecedent, assignment, cache):
            return True
        return _satisfies(database, formula.consequent, assignment, cache)
    if isinstance(formula, Iff):
        return _satisfies(database, formula.left, assignment, cache) == _satisfies(
            database, formula.right, assignment, cache
        )
    if isinstance(formula, Exists):
        return _satisfies_quantifier(database, formula, assignment, want=True, cache=cache)
    if isinstance(formula, Forall):
        return not _satisfies_quantifier(database, formula, assignment, want=False, cache=cache)
    if isinstance(formula, (SecondOrderExists, SecondOrderForall)):
        raise UnsupportedFormulaError(
            "second-order quantifier met by the first-order evaluator; "
            "use repro.physical.second_order.satisfies_so instead"
        )
    raise EvaluationError(f"unknown formula node: {formula!r}")


def _satisfies_quantifier(
    database: PhysicalDatabase,
    formula: Exists | Forall,
    assignment: dict[Variable, object],
    want: bool,
    cache: dict,
) -> bool:
    """Search for an assignment of the bound variables making the body == *want*.

    ``Exists`` asks whether some extension satisfies the body (``want=True``);
    ``Forall`` is evaluated as "no extension falsifies the body"
    (``want=False``), which is why the caller negates the result.

    The existential search only tries each variable's candidate values (see
    :func:`candidate_values`); the universal counterexample search returns
    immediately when some domain value falls outside a variable's candidates,
    since such a value falsifies the body by construction.
    """
    variables = formula.variables
    if want:
        value_lists = []
        for variable in variables:
            candidates = _cached_candidates(database, formula.body, variable, cache)
            if candidates is None:
                value_lists.append(_sorted_domain(database))
            elif not candidates:
                return False
            else:
                value_lists.append(sorted(candidates, key=repr))
        for values in product(*value_lists):
            extended = dict(assignment)
            extended.update(zip(variables, values))
            if _satisfies(database, formula.body, extended, cache):
                return True
        return False
    for variable in variables:
        candidates = _cached_candidates(database, formula.body, variable, cache)
        if candidates is not None and database.domain - candidates:
            return True  # any value outside the necessary set falsifies the body
    domain = _sorted_domain(database)
    for values in product(domain, repeat=len(variables)):
        extended = dict(assignment)
        extended.update(zip(variables, values))
        if not _satisfies(database, formula.body, extended, cache):
            return True
    return False


def evaluate_query(database: PhysicalDatabase, query: Query) -> frozenset[tuple]:
    """Return ``Q(PB)``: all domain tuples satisfying the query condition.

    For a Boolean query the result is ``{()}`` (true) or ``frozenset()``
    (false), matching the paper's convention that the answer to a sentence is
    a 0-ary relation.  Head variables are enumerated over their candidate
    values when the formula provably confines them (and over the whole
    domain otherwise), which changes nothing about the answer set.
    """
    cache: dict = {}
    value_lists = []
    for variable in query.head:
        candidates = _cached_candidates(database, query.formula, variable, cache)
        if candidates is None:
            value_lists.append(_sorted_domain(database))
        else:
            value_lists.append(sorted(candidates, key=repr))
    answers = set()
    for values in product(*value_lists):
        assignment = dict(zip(query.head, values))
        if _satisfies(database, query.formula, assignment, cache):
            answers.add(tuple(values))
    return frozenset(answers)


def evaluate_sentence(database: PhysicalDatabase, formula: Formula) -> bool:
    """Evaluate a sentence (no free variables) to a truth value."""
    return satisfies(database, formula, {})


# Bounded quantifier enumeration ----------------------------------------------


def candidate_values(
    formula: Formula,
    variable: Variable,
    atom_values: Callable[[str, int], frozenset | None],
    constant_value: Callable[[str], object],
) -> frozenset | None:
    """Values *variable* can take in **any** assignment satisfying *formula*.

    Returns ``None`` when no sound restriction can be derived (the variable
    then ranges over the whole domain).  The analysis only trusts contexts
    where an atom *must* hold: positive atoms contribute their relation
    column's values, conjunctions intersect, disjunctions union (and give up
    if any branch is unrestricted), quantifiers pass through unless they
    shadow the variable, and anything under a negation/implication/extension
    atom contributes nothing.  ``atom_values(predicate, position)`` supplies
    the distinct values of one relation column, or ``None`` when that
    relation's interpretation is unknown or too expensive to enumerate
    (lazy relations, second-order bound predicates).
    """
    if isinstance(formula, Bottom):
        return frozenset()
    if isinstance(formula, ExtensionAtom):
        return None
    if isinstance(formula, Atom):
        result: frozenset | None = None
        for position, term in enumerate(formula.args):
            if isinstance(term, Variable) and term == variable:
                values = atom_values(formula.predicate, position)
                if values is None:
                    return None
                result = values if result is None else result & values
        return result
    if isinstance(formula, Equals):
        other = None
        if formula.left == variable and isinstance(formula.right, Constant):
            other = formula.right
        elif formula.right == variable and isinstance(formula.left, Constant):
            other = formula.left
        if other is None:
            return None
        try:
            return frozenset({constant_value(other.name)})
        except DatabaseError:
            return None
    if isinstance(formula, And):
        result = None
        for operand in formula.operands:
            values = candidate_values(operand, variable, atom_values, constant_value)
            if values is not None:
                result = values if result is None else result & values
        return result
    if isinstance(formula, Or):
        result = frozenset()
        for operand in formula.operands:
            values = candidate_values(operand, variable, atom_values, constant_value)
            if values is None:
                return None
            result = result | values
        return result
    if isinstance(formula, (Exists, Forall)):
        if variable in formula.variables:
            return None  # shadowed: inner occurrences are a different variable
        return candidate_values(formula.body, variable, atom_values, constant_value)
    return None


def _cached_candidates(
    database: PhysicalDatabase,
    formula: Formula,
    variable: Variable,
    cache: dict,
) -> frozenset | None:
    """Candidates for one (sub)formula/variable pair, memoized per evaluation."""
    key = (id(formula), variable)
    if key in cache:
        return cache[key]

    def atom_values(predicate: str, position: int) -> frozenset | None:
        try:
            relation = database.relation(predicate)
        except DatabaseError:
            return None  # let the satisfaction walk report the error instead
        if isinstance(relation, Relation):
            return relation.column_values(position)
        return None  # lazy relation: enumerating it may be quadratic

    result = candidate_values(formula, variable, atom_values, database.constant_value)
    cache[key] = result
    return result


def _sorted_domain(database: PhysicalDatabase) -> tuple:
    """The domain in deterministic order (cached on the immutable instance)."""
    cached = database.__dict__.get("_sorted_domain")
    if cached is None:
        cached = tuple(sorted(database.domain, key=repr))
        object.__setattr__(database, "_sorted_domain", cached)
    return cached

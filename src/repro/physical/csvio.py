"""CSV import/export for physical and logical databases.

The on-disk layout keeps a database human-editable:

* ``schema.json`` — constants and predicate arities;
* ``<predicate>.csv`` — one file per predicate, one tuple per row;
* for logical databases additionally ``unequal.csv`` — one uniqueness axiom
  (pair of distinct constants) per row.

Values are stored as strings; physical databases loaded from disk therefore
have string domains, which matches the ``Ph1``/``Ph2`` databases the library
constructs from logical databases.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.errors import DatabaseError
from repro.logic.vocabulary import Vocabulary
from repro.physical.database import PhysicalDatabase

__all__ = [
    "save_physical_database",
    "load_physical_database",
    "save_cw_database",
    "load_cw_database",
]

_SCHEMA_FILE = "schema.json"
_UNEQUAL_FILE = "unequal.csv"


def save_physical_database(database: PhysicalDatabase, directory: str | Path) -> Path:
    """Write *database* to *directory*; returns the directory path."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    schema = {
        "constants": {symbol: str(value) for symbol, value in database.constants.items()},
        "predicates": dict(database.vocabulary.predicates),
        "domain": sorted(str(value) for value in database.domain),
    }
    (path / _SCHEMA_FILE).write_text(json.dumps(schema, indent=2, sort_keys=True))
    for predicate in database.vocabulary.predicates:
        with (path / f"{predicate}.csv").open("w", newline="") as handle:
            writer = csv.writer(handle)
            for row in sorted(database.relation(predicate), key=repr):
                writer.writerow([str(value) for value in row])
    return path


def load_physical_database(directory: str | Path) -> PhysicalDatabase:
    """Load a physical database previously written by :func:`save_physical_database`."""
    path = Path(directory)
    schema_path = path / _SCHEMA_FILE
    if not schema_path.exists():
        raise DatabaseError(f"no {_SCHEMA_FILE} in {path}")
    schema = json.loads(schema_path.read_text())
    vocabulary = Vocabulary(tuple(schema["constants"]), {k: int(v) for k, v in schema["predicates"].items()})
    relations = {}
    for predicate in vocabulary.predicates:
        rows = _read_rows(path / f"{predicate}.csv")
        relations[predicate] = rows
    return PhysicalDatabase(
        vocabulary,
        frozenset(schema["domain"]),
        dict(schema["constants"]),
        relations,
    )


def save_cw_database(database, directory: str | Path) -> Path:
    """Write a :class:`~repro.logical.database.CWDatabase` to *directory*."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    schema = {
        "constants": list(database.vocabulary.constants),
        "predicates": dict(database.vocabulary.predicates),
    }
    (path / _SCHEMA_FILE).write_text(json.dumps(schema, indent=2, sort_keys=True))
    for predicate in database.vocabulary.predicates:
        with (path / f"{predicate}.csv").open("w", newline="") as handle:
            writer = csv.writer(handle)
            for row in sorted(database.facts_for(predicate)):
                writer.writerow(list(row))
    with (path / _UNEQUAL_FILE).open("w", newline="") as handle:
        writer = csv.writer(handle)
        for left, right in sorted(database.unequal_pairs()):
            writer.writerow([left, right])
    return path


def load_cw_database(directory: str | Path):
    """Load a CW logical database previously written by :func:`save_cw_database`."""
    from repro.logical.database import CWDatabase

    path = Path(directory)
    schema_path = path / _SCHEMA_FILE
    if not schema_path.exists():
        raise DatabaseError(f"no {_SCHEMA_FILE} in {path}")
    schema = json.loads(schema_path.read_text())
    predicates = {k: int(v) for k, v in schema["predicates"].items()}
    facts = {}
    for predicate in predicates:
        facts[predicate] = {tuple(row) for row in _read_rows(path / f"{predicate}.csv")}
    unequal = {tuple(row) for row in _read_rows(path / _UNEQUAL_FILE)}
    return CWDatabase(
        constants=tuple(schema["constants"]),
        predicates=predicates,
        facts=facts,
        unequal=unequal,
    )


def _read_rows(file_path: Path) -> list[tuple[str, ...]]:
    if not file_path.exists():
        return []
    with file_path.open(newline="") as handle:
        return [tuple(row) for row in csv.reader(handle) if row]

"""Relational-algebra plan nodes.

The approximation algorithm of Section 5 is meant to run "on the top of a
standard database management system": the rewritten query ``Q-hat`` is an
ordinary relational query over the stored database ``Ph2(LB)``.  To make
that concrete we provide a small relational-algebra engine.  This module
defines the operator tree; :mod:`repro.physical.algebra` executes it and
:mod:`repro.physical.compiler` translates first-order queries into it under
active-domain semantics.

Plans are immutable trees.  Every node produces a :class:`Table` — a bag of
rows with named columns — when executed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.errors import EvaluationError, UnboundParameterError
from repro.logic.terms import Parameter

__all__ = [
    "Table",
    "PlanNode",
    "ScanRelation",
    "IndexScan",
    "ActiveDomain",
    "LiteralTable",
    "Selection",
    "Projection",
    "RenameColumns",
    "NaturalJoin",
    "EquiJoin",
    "SemiJoin",
    "AntiJoin",
    "CrossProduct",
    "UnionAll",
    "Difference",
    "plan_fingerprint",
    "plan_parameters",
    "substitute_plan_parameters",
]


@dataclass(frozen=True)
class Table:
    """An executed intermediate result: named columns plus a set of rows.

    Rows are tuples aligned with ``columns``.  Duplicate rows are not kept
    (set semantics), which matches the paper's relations.
    """

    columns: tuple[str, ...]
    rows: frozenset[tuple]

    def __post_init__(self) -> None:
        # C-speed width check (map/len run without interpreter frames); the
        # executor builds a Table per materialization point, so this runs on
        # the hot path and must not cost a Python-level loop per row.
        width = len(self.columns)
        if not set(map(len, self.rows)) <= {width}:
            for row in self.rows:
                if len(row) != width:
                    raise EvaluationError(
                        f"row {row!r} does not match columns {self.columns!r}"
                    )

    @classmethod
    def trusted(cls, columns: tuple[str, ...], rows: frozenset) -> "Table":
        """Construct without the per-row width check.

        For executor internals only: every operator produces rows whose
        width matches its resolved columns by construction, and the check
        is a full extra pass over the result on the materialization hot
        path.  Anything accepting externally supplied rows must use the
        normal constructor.
        """
        table = object.__new__(cls)
        object.__setattr__(table, "columns", columns)
        object.__setattr__(table, "rows", rows)
        return table

    def __len__(self) -> int:
        return len(self.rows)

    def project(self, columns: Iterable[str]) -> "Table":
        wanted = tuple(columns)
        indexes = [self.columns.index(column) for column in wanted]
        return Table(wanted, frozenset(tuple(row[i] for i in indexes) for row in self.rows))

    def as_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries, ordered deterministically (for display/tests)."""
        return [dict(zip(self.columns, row)) for row in sorted(self.rows, key=repr)]


class PlanNode:
    """Base class of all plan operators."""

    __slots__ = ()

    def children(self) -> tuple["PlanNode", ...]:
        return ()


@dataclass(frozen=True)
class ScanRelation(PlanNode):
    """Scan a stored relation, producing the given column names."""

    relation: str
    columns: tuple[str, ...]


@dataclass(frozen=True)
class IndexScan(PlanNode):
    """Scan a stored relation restricted to rows matching constant bindings.

    Semantically identical to ``Selection(ScanRelation(relation, columns),
    bindings=bindings)`` but executable through a per-database hash index
    (:mod:`repro.physical.indexes`) instead of a full scan.  The optimizer
    produces these nodes; nothing forces an index to exist — execution falls
    back to a filtered scan when indexing is disabled or unavailable.
    """

    relation: str
    columns: tuple[str, ...]
    bindings: tuple[tuple[str, object], ...]


@dataclass(frozen=True)
class ActiveDomain(PlanNode):
    """Produce the active domain of the database as a single-column table.

    Used by the compiler to give range-unrestricted variables something to
    range over (active-domain semantics).
    """

    column: str


@dataclass(frozen=True)
class LiteralTable(PlanNode):
    """A constant table, e.g. the single empty row (the 0-ary TRUE relation)."""

    columns: tuple[str, ...]
    rows: frozenset[tuple]


@dataclass(frozen=True)
class Selection(PlanNode):
    """Keep the rows satisfying a predicate over the named columns.

    The predicate takes one of two forms:

    * an opaque ``condition`` callable over a ``{column: value}`` dict —
      always honoured when present, but invisible to the optimizer;
    * a *structured* condition: ``bindings`` (each named column must equal a
      constant) and ``equalities`` (each group of columns must share one
      value), combined conjunctively.  The compiler only emits structured
      selections, which is what lets the optimizer push them around, compare
      subplans for equality, and convert them into joins or index lookups.

    When ``condition`` is ``None`` the structured fields are authoritative;
    an empty structured condition keeps every row.
    """

    source: PlanNode
    condition: Callable[[dict[str, object]], bool] | None = None
    description: str = "<condition>"
    bindings: tuple[tuple[str, object], ...] = ()
    equalities: tuple[tuple[str, ...], ...] = ()

    def __post_init__(self) -> None:
        if self.condition is not None and (self.bindings or self.equalities):
            raise EvaluationError(
                "a Selection takes either an opaque condition or structured "
                "bindings/equalities, not both (the opaque form would silently "
                "win at execution)"
            )

    def children(self) -> tuple[PlanNode, ...]:
        return (self.source,)

    def referenced_columns(self) -> tuple[str, ...] | None:
        """Columns the condition reads, or ``None`` when unknowable (opaque)."""
        if self.condition is not None:
            return None
        seen: list[str] = []
        for column, __ in self.bindings:
            if column not in seen:
                seen.append(column)
        for group in self.equalities:
            for column in group:
                if column not in seen:
                    seen.append(column)
        return tuple(seen)


@dataclass(frozen=True)
class Projection(PlanNode):
    """Project onto the named columns (removing duplicates)."""

    source: PlanNode
    columns: tuple[str, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.source,)


@dataclass(frozen=True)
class RenameColumns(PlanNode):
    """Rename columns according to a mapping (missing columns keep their name)."""

    source: PlanNode
    renaming: tuple[tuple[str, str], ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.source,)


@dataclass(frozen=True)
class NaturalJoin(PlanNode):
    """Natural join on shared column names."""

    left: PlanNode
    right: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class EquiJoin(PlanNode):
    """Join on explicit column pairs; operand column sets must be disjoint.

    ``pairs`` holds ``(left_column, right_column)`` equalities.  The output
    keeps *all* columns of both operands (unlike :class:`NaturalJoin`, which
    merges shared names), so ``EquiJoin(l, r, pairs)`` is row-for-row equal
    to ``Selection(CrossProduct(l, r), equalities=pairs)`` — the optimizer
    rewrite that produces it — but executes as a hash join instead of a
    filtered product.
    """

    left: PlanNode
    right: PlanNode
    pairs: tuple[tuple[str, str], ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class SemiJoin(PlanNode):
    """Keep the source rows whose key appears in the filter's key projection.

    ``pairs`` holds ``(source_column, filter_column)`` equalities; the output
    has exactly the source's columns.  The optimizer's sideways-information-
    passing pass inserts these to pre-filter a large join input with the key
    set of a selective sibling — the filter subplan is typically structurally
    equal to that sibling, so the executor's memo computes it once.  When the
    source is a bare relation scan the executor probes the stored hash index
    per key instead of scanning, turning a full-relation pass into a handful
    of lookups.
    """

    source: PlanNode
    filter: PlanNode
    pairs: tuple[tuple[str, str], ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.source, self.filter)


@dataclass(frozen=True)
class AntiJoin(PlanNode):
    """Keep the source rows whose key does *not* appear in the filter.

    The complement of :class:`SemiJoin`; with every source column paired it
    is exactly a :class:`Difference` whose right side may have its columns in
    a different order.  The optimizer produces it when semi-join-reducing the
    right side of a set difference (only filter rows whose key occurs on the
    left can ever exclude anything).
    """

    source: PlanNode
    filter: PlanNode
    pairs: tuple[tuple[str, str], ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.source, self.filter)


@dataclass(frozen=True)
class CrossProduct(PlanNode):
    """Cartesian product; the operand column sets must be disjoint."""

    left: PlanNode
    right: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class UnionAll(PlanNode):
    """Set union of two tables over the same columns (order-normalized)."""

    left: PlanNode
    right: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Difference(PlanNode):
    """Set difference (left minus right) over the same columns."""

    left: PlanNode
    right: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


def _install_cached_hashes() -> None:
    """Replace each node class's generated ``__hash__`` with a caching wrapper.

    Plan nodes are immutable trees used as dict keys everywhere — the
    executor's memo and column cache, the optimizer's rewrites, the service
    plan cache, cardinality feedback.  The dataclass-generated ``__hash__``
    recursively re-hashes the whole subtree on *every* lookup, which makes
    per-node bookkeeping O(tree size); caching the value on first use (the
    ``object.__setattr__`` idiom used for ``PhysicalDatabase`` caches) makes
    every subsequent lookup O(1).  Safe because nodes are frozen: the hash
    can never go stale.  Equality is untouched.
    """
    for node_class in (
        ScanRelation,
        IndexScan,
        ActiveDomain,
        LiteralTable,
        Selection,
        Projection,
        RenameColumns,
        NaturalJoin,
        EquiJoin,
        SemiJoin,
        AntiJoin,
        CrossProduct,
        UnionAll,
        Difference,
    ):
        generated = node_class.__hash__

        def cached_hash(self, _generated=generated):
            value = self.__dict__.get("_cached_hash")
            if value is None:
                value = _generated(self)
                object.__setattr__(self, "_cached_hash", value)
            return value

        node_class.__hash__ = cached_hash


_install_cached_hashes()


def plan_fingerprint(plan: PlanNode) -> str | None:
    """A stable content key for a plan subtree, or ``None`` if it has none.

    Two structurally equal plans — in any process, at any time — get the same
    fingerprint, which is what lets observed cardinalities recorded by one
    execution (:mod:`repro.physical.statistics`) be found again by a later
    re-optimization, and survive a JSON round trip through the snapshot
    store.  Plans containing an opaque ``Selection.condition`` callable are
    unfingerprintable (``None``): a function cannot be keyed by content.
    """
    parts: list[str] = []
    if not _fingerprint_parts(plan, parts):
        return None
    return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()


def _fingerprint_parts(plan: PlanNode, parts: list[str]) -> bool:
    if isinstance(plan, ScanRelation):
        parts.append(f"Scan:{plan.relation}:{','.join(plan.columns)}")
        return True
    if isinstance(plan, IndexScan):
        probe = ";".join(f"{column}={value!r}" for column, value in plan.bindings)
        parts.append(f"IndexScan:{plan.relation}:{','.join(plan.columns)}:{probe}")
        return True
    if isinstance(plan, ActiveDomain):
        parts.append(f"ActiveDomain:{plan.column}")
        return True
    if isinstance(plan, LiteralTable):
        rows = ";".join(repr(row) for row in sorted(plan.rows, key=repr))
        parts.append(f"Literal:{','.join(plan.columns)}:{rows}")
        return True
    if isinstance(plan, Selection):
        if plan.condition is not None:
            return False
        bindings = ";".join(f"{column}={value!r}" for column, value in plan.bindings)
        equalities = ";".join(",".join(group) for group in plan.equalities)
        parts.append(f"Select:{bindings}:{equalities}")
        return _fingerprint_parts(plan.source, parts)
    if isinstance(plan, Projection):
        parts.append(f"Project:{','.join(plan.columns)}")
        return _fingerprint_parts(plan.source, parts)
    if isinstance(plan, RenameColumns):
        renames = ";".join(f"{old}>{new}" for old, new in plan.renaming)
        parts.append(f"Rename:{renames}")
        return _fingerprint_parts(plan.source, parts)
    if isinstance(plan, (EquiJoin, SemiJoin, AntiJoin)):
        pairs = ";".join(f"{left}={right}" for left, right in plan.pairs)
        parts.append(f"{type(plan).__name__}:{pairs}")
    elif isinstance(plan, (NaturalJoin, CrossProduct, UnionAll, Difference)):
        parts.append(type(plan).__name__)
    else:
        return False
    parts.append("(")
    for child in plan.children():
        if not _fingerprint_parts(child, parts):
            return False
    parts.append(")")
    return True


# Parameterized template plans --------------------------------------------------


def plan_parameters(plan: PlanNode) -> tuple[str, ...]:
    """Parameter names a plan still carries as placeholder values (sorted).

    A compiled template plan holds :class:`~repro.logic.terms.Parameter`
    objects wherever the bound constant's value will eventually sit:
    selection and index-scan bindings, and literal-table rows.
    """
    names: set[str] = set()
    pending = [plan]
    while pending:
        node = pending.pop()
        if isinstance(node, (Selection, IndexScan)):
            names.update(value.name for __, value in node.bindings if isinstance(value, Parameter))
        if isinstance(node, LiteralTable):
            names.update(
                value.name for row in node.rows for value in row if isinstance(value, Parameter)
            )
        pending.extend(node.children())
    return tuple(sorted(names))


def substitute_plan_parameters(plan: PlanNode, values: Mapping[str, object]) -> PlanNode:
    """Rebind a compiled template plan to concrete values — the prepared fast path.

    Structurally identical to re-compiling the bound query, but a pure tree
    rebuild: no parse, no rewrite, no optimization.  *values* maps parameter
    names to the already-resolved domain values (callers resolve through
    :meth:`~repro.physical.database.PhysicalDatabase.constant_value` so a
    binding to an unknown constant fails exactly like the ad-hoc path).
    Raises :class:`UnboundParameterError` when the plan mentions a parameter
    *values* does not cover; extra names are ignored (a template's plan may
    not mention every template parameter after optimization).
    """

    def value_of(value: object) -> object:
        if isinstance(value, Parameter):
            try:
                return values[value.name]
            except KeyError:
                raise UnboundParameterError(
                    f"plan mentions unbound parameter ${value.name}"
                ) from None
        return value

    def rebuild(node: PlanNode) -> PlanNode:
        if isinstance(node, Selection):
            return Selection(
                rebuild(node.source),
                node.condition,
                node.description,
                tuple((column, value_of(value)) for column, value in node.bindings),
                node.equalities,
            )
        if isinstance(node, IndexScan):
            return IndexScan(
                node.relation,
                node.columns,
                tuple((column, value_of(value)) for column, value in node.bindings),
            )
        if isinstance(node, LiteralTable):
            return LiteralTable(
                node.columns,
                frozenset(tuple(value_of(value) for value in row) for row in node.rows),
            )
        if isinstance(node, Projection):
            return Projection(rebuild(node.source), node.columns)
        if isinstance(node, RenameColumns):
            return RenameColumns(rebuild(node.source), node.renaming)
        if isinstance(node, (NaturalJoin, CrossProduct, UnionAll, Difference)):
            return type(node)(rebuild(node.left), rebuild(node.right))
        if isinstance(node, EquiJoin):
            return EquiJoin(rebuild(node.left), rebuild(node.right), node.pairs)
        if isinstance(node, (SemiJoin, AntiJoin)):
            return type(node)(rebuild(node.source), rebuild(node.filter), node.pairs)
        # Leaves without values (ScanRelation, ActiveDomain) pass through.
        return node

    return rebuild(plan)

"""Relational-algebra plan nodes.

The approximation algorithm of Section 5 is meant to run "on the top of a
standard database management system": the rewritten query ``Q-hat`` is an
ordinary relational query over the stored database ``Ph2(LB)``.  To make
that concrete we provide a small relational-algebra engine.  This module
defines the operator tree; :mod:`repro.physical.algebra` executes it and
:mod:`repro.physical.compiler` translates first-order queries into it under
active-domain semantics.

Plans are immutable trees.  Every node produces a :class:`Table` — a bag of
rows with named columns — when executed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import EvaluationError

__all__ = [
    "Table",
    "PlanNode",
    "ScanRelation",
    "IndexScan",
    "ActiveDomain",
    "LiteralTable",
    "Selection",
    "Projection",
    "RenameColumns",
    "NaturalJoin",
    "EquiJoin",
    "CrossProduct",
    "UnionAll",
    "Difference",
]


@dataclass(frozen=True)
class Table:
    """An executed intermediate result: named columns plus a set of rows.

    Rows are tuples aligned with ``columns``.  Duplicate rows are not kept
    (set semantics), which matches the paper's relations.
    """

    columns: tuple[str, ...]
    rows: frozenset[tuple]

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.columns):
                raise EvaluationError(
                    f"row {row!r} does not match columns {self.columns!r}"
                )

    def __len__(self) -> int:
        return len(self.rows)

    def project(self, columns: Iterable[str]) -> "Table":
        wanted = tuple(columns)
        indexes = [self.columns.index(column) for column in wanted]
        return Table(wanted, frozenset(tuple(row[i] for i in indexes) for row in self.rows))

    def as_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries, ordered deterministically (for display/tests)."""
        return [dict(zip(self.columns, row)) for row in sorted(self.rows, key=repr)]


class PlanNode:
    """Base class of all plan operators."""

    __slots__ = ()

    def children(self) -> tuple["PlanNode", ...]:
        return ()


@dataclass(frozen=True)
class ScanRelation(PlanNode):
    """Scan a stored relation, producing the given column names."""

    relation: str
    columns: tuple[str, ...]


@dataclass(frozen=True)
class IndexScan(PlanNode):
    """Scan a stored relation restricted to rows matching constant bindings.

    Semantically identical to ``Selection(ScanRelation(relation, columns),
    bindings=bindings)`` but executable through a per-database hash index
    (:mod:`repro.physical.indexes`) instead of a full scan.  The optimizer
    produces these nodes; nothing forces an index to exist — execution falls
    back to a filtered scan when indexing is disabled or unavailable.
    """

    relation: str
    columns: tuple[str, ...]
    bindings: tuple[tuple[str, object], ...]


@dataclass(frozen=True)
class ActiveDomain(PlanNode):
    """Produce the active domain of the database as a single-column table.

    Used by the compiler to give range-unrestricted variables something to
    range over (active-domain semantics).
    """

    column: str


@dataclass(frozen=True)
class LiteralTable(PlanNode):
    """A constant table, e.g. the single empty row (the 0-ary TRUE relation)."""

    columns: tuple[str, ...]
    rows: frozenset[tuple]


@dataclass(frozen=True)
class Selection(PlanNode):
    """Keep the rows satisfying a predicate over the named columns.

    The predicate takes one of two forms:

    * an opaque ``condition`` callable over a ``{column: value}`` dict —
      always honoured when present, but invisible to the optimizer;
    * a *structured* condition: ``bindings`` (each named column must equal a
      constant) and ``equalities`` (each group of columns must share one
      value), combined conjunctively.  The compiler only emits structured
      selections, which is what lets the optimizer push them around, compare
      subplans for equality, and convert them into joins or index lookups.

    When ``condition`` is ``None`` the structured fields are authoritative;
    an empty structured condition keeps every row.
    """

    source: PlanNode
    condition: Callable[[dict[str, object]], bool] | None = None
    description: str = "<condition>"
    bindings: tuple[tuple[str, object], ...] = ()
    equalities: tuple[tuple[str, ...], ...] = ()

    def __post_init__(self) -> None:
        if self.condition is not None and (self.bindings or self.equalities):
            raise EvaluationError(
                "a Selection takes either an opaque condition or structured "
                "bindings/equalities, not both (the opaque form would silently "
                "win at execution)"
            )

    def children(self) -> tuple[PlanNode, ...]:
        return (self.source,)

    def referenced_columns(self) -> tuple[str, ...] | None:
        """Columns the condition reads, or ``None`` when unknowable (opaque)."""
        if self.condition is not None:
            return None
        seen: list[str] = []
        for column, __ in self.bindings:
            if column not in seen:
                seen.append(column)
        for group in self.equalities:
            for column in group:
                if column not in seen:
                    seen.append(column)
        return tuple(seen)


@dataclass(frozen=True)
class Projection(PlanNode):
    """Project onto the named columns (removing duplicates)."""

    source: PlanNode
    columns: tuple[str, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.source,)


@dataclass(frozen=True)
class RenameColumns(PlanNode):
    """Rename columns according to a mapping (missing columns keep their name)."""

    source: PlanNode
    renaming: tuple[tuple[str, str], ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.source,)


@dataclass(frozen=True)
class NaturalJoin(PlanNode):
    """Natural join on shared column names."""

    left: PlanNode
    right: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class EquiJoin(PlanNode):
    """Join on explicit column pairs; operand column sets must be disjoint.

    ``pairs`` holds ``(left_column, right_column)`` equalities.  The output
    keeps *all* columns of both operands (unlike :class:`NaturalJoin`, which
    merges shared names), so ``EquiJoin(l, r, pairs)`` is row-for-row equal
    to ``Selection(CrossProduct(l, r), equalities=pairs)`` — the optimizer
    rewrite that produces it — but executes as a hash join instead of a
    filtered product.
    """

    left: PlanNode
    right: PlanNode
    pairs: tuple[tuple[str, str], ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class CrossProduct(PlanNode):
    """Cartesian product; the operand column sets must be disjoint."""

    left: PlanNode
    right: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class UnionAll(PlanNode):
    """Set union of two tables over the same columns (order-normalized)."""

    left: PlanNode
    right: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Difference(PlanNode):
    """Set difference (left minus right) over the same columns."""

    left: PlanNode
    right: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

"""Cost-based choice between the Tarskian evaluator and the algebra engine.

Both engines compute exactly the same answers (the property every ablation
re-checks), but their run times diverge: the algebra engine wins when joins
can be ordered, indexed and semi-join-reduced, while the direct Tarskian
evaluator wins when bounded quantifier enumeration touches only a handful of
candidate values — or when the query is second order, which the algebra
compiler cannot express at all.  This module estimates both costs for a
given (query, statistics) pair so callers asking for ``engine="auto"`` get
routed to whichever evaluator is expected to be cheaper.

The Tarskian model mirrors :func:`repro.physical.evaluator.candidate_values`:
each quantified (or head) variable multiplies the search space by its
candidate-set size — the full domain when no sound restriction exists — and
each connective adds the cost of its operands.  The algebra model is
:func:`repro.physical.optimizer.plan_cost` over the *optimized* plan, so
observed cardinalities recorded by the feedback loop sharpen the dispatch
decision exactly as they sharpen join ordering.
"""

from __future__ import annotations

from repro.errors import DatabaseError
from repro.logic.analysis import is_first_order
from repro.logic.formulas import (
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ExtensionAtom,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    SecondOrderExists,
    SecondOrderForall,
    Top,
)
from repro.logic.queries import Query
from repro.physical.database import PhysicalDatabase
from repro.physical.evaluator import candidate_values
from repro.physical.optimizer import plan_cost
from repro.physical.plan import PlanNode
from repro.physical.relation import Relation
from repro.physical.statistics import Statistics

__all__ = ["tarskian_cost", "prefer_tarskian", "choose_engine"]

#: The Tarskian route must look at least this much cheaper (cost below
#: ``plan_cost * margin``) before "auto" leaves the algebra engine — near-
#: ties stay with the default, so a feedback update that nudges one cost
#: model slightly cannot flap the dispatch decision back and forth.
_ALGEBRA_MARGIN = 0.75


def tarskian_cost(storage: PhysicalDatabase, query: Query) -> float:
    """Estimated work of the bounded-enumeration Tarskian route.

    Counts assignments tried: the product of candidate-set sizes over the
    head variables, times the (recursively estimated) cost of checking the
    body under each assignment.
    """

    def atom_values(predicate: str, position: int):
        try:
            relation = storage.relation(predicate)
        except DatabaseError:
            return None
        if isinstance(relation, Relation):
            return relation.column_values(position)
        return None

    domain_size = max(len(storage.domain), 1)

    def variable_width(formula: Formula, variable) -> float:
        candidates = candidate_values(formula, variable, atom_values, storage.constant_value)
        if candidates is None:
            return float(domain_size)
        return float(max(len(candidates), 1))

    def formula_cost(formula: Formula) -> float:
        if isinstance(formula, (Top, Bottom, Atom, Equals, ExtensionAtom)):
            return 1.0
        if isinstance(formula, Not):
            return formula_cost(formula.operand)
        if isinstance(formula, (And, Or)):
            return sum(formula_cost(operand) for operand in formula.operands)
        if isinstance(formula, Implies):
            return formula_cost(formula.antecedent) + formula_cost(formula.consequent)
        if isinstance(formula, Iff):
            return formula_cost(formula.left) + formula_cost(formula.right)
        if isinstance(formula, (Exists, Forall)):
            width = 1.0
            for variable in formula.variables:
                width *= variable_width(formula.body, variable)
            return width * formula_cost(formula.body)
        if isinstance(formula, (SecondOrderExists, SecondOrderForall)):
            # Exponential in the bound relation's extension; any finite
            # stand-in larger than every first-order estimate will do.
            return float(2 ** min(domain_size, 62))
        return float(domain_size)

    width = 1.0
    for variable in query.head:
        width *= variable_width(query.formula, variable)
    return width * formula_cost(query.formula)


def prefer_tarskian(
    storage: PhysicalDatabase,
    query: Query,
    plan: PlanNode,
    statistics: Statistics | None = None,
) -> bool:
    """Whether the Tarskian evaluator looks cheaper than executing *plan*.

    *query* must be the rewritten (``Q-hat``) first-order query the engines
    would actually evaluate, and *plan* its compiled, optimized algebra plan.
    """
    return tarskian_cost(storage, query) < plan_cost(plan, storage, statistics) * _ALGEBRA_MARGIN


def choose_engine(storage: PhysicalDatabase, query: Query, plan: PlanNode | None) -> str:
    """Resolve ``engine="auto"`` to a concrete engine name.

    Second-order rewrites (no algebra plan exists) always go to the Tarskian
    side; first-order queries go to whichever cost model says is cheaper.
    """
    if plan is None or not is_first_order(query.formula):
        return "tarski"
    return "tarski" if prefer_tarskian(storage, query, plan) else "algebra"

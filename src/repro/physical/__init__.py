"""Physical databases: relations, interpretations and query evaluation.

This is the "database as interpretation" half of the paper's dichotomy.  It
provides the storage and evaluation substrate the logical-database layer and
the approximation algorithm run on: materialized relations, Tarskian
first-order evaluation, second-order evaluation by relation enumeration, and
a small relational-algebra engine with a calculus-to-algebra compiler.
"""

from repro.physical.algebra import (
    VECTOR_ENV_FLAG,
    execute,
    plan_size,
    plan_to_text,
    vectorization_enabled,
)
from repro.physical.batch import (
    BATCH_SIZE_ENV,
    ColumnBatch,
    configured_batch_size,
    execute_batched,
)
from repro.physical.compiler import compile_formula, compile_query, evaluate_query_algebra
from repro.physical.csvio import (
    load_cw_database,
    load_physical_database,
    save_cw_database,
    save_physical_database,
)
from repro.physical.database import PhysicalDatabase
from repro.physical.evaluator import evaluate_query, evaluate_sentence, evaluate_term, satisfies
from repro.physical.relation import Relation, RelationLike, tuples_of
from repro.physical.second_order import (
    DEFAULT_MAX_RELATIONS,
    enumerate_relations,
    evaluate_query_so,
    satisfies_so,
)

__all__ = [
    "Relation",
    "RelationLike",
    "tuples_of",
    "PhysicalDatabase",
    "satisfies",
    "evaluate_query",
    "evaluate_sentence",
    "evaluate_term",
    "satisfies_so",
    "evaluate_query_so",
    "enumerate_relations",
    "DEFAULT_MAX_RELATIONS",
    "execute",
    "execute_batched",
    "ColumnBatch",
    "BATCH_SIZE_ENV",
    "VECTOR_ENV_FLAG",
    "configured_batch_size",
    "vectorization_enabled",
    "plan_size",
    "plan_to_text",
    "compile_query",
    "compile_formula",
    "evaluate_query_algebra",
    "save_physical_database",
    "load_physical_database",
    "save_cw_database",
    "load_cw_database",
]

"""Execution of relational-algebra plans over a physical database.

The executor is pull-based and *streaming*: every operator exposes its rows
as an iterator, and tuples flow straight through selections, projections,
renames and unions without intermediate materialization.  Rows are only
collected into concrete sets at **pipeline breakers** — the build side of a
hash join, the right side of a set difference, and the final result — plus
at any subplan that occurs more than once in the tree, which is materialized
a single time into a **memo table** and replayed for every occurrence (the
execution half of the optimizer's common-subplan deduplication; plan nodes
are frozen dataclasses, so structurally equal subtrees compare equal).

Two access paths consult the per-database hash indexes of
:mod:`repro.physical.indexes` instead of scanning:

* :class:`~repro.physical.plan.IndexScan` probes a key-prefix index with its
  constant bindings;
* a :class:`~repro.physical.plan.NaturalJoin` whose build side is a bare
  relation scan reuses the stored prefix index as its hash table.

Pass ``use_indexes=False`` to force the scan-and-filter paths (the
benchmarks' naive configuration); answers are identical either way.

Since PR 9 this tuple-at-a-time executor is the *fallback* path: by default
:func:`execute` dispatches to the vectorized column-batch executor of
:mod:`repro.physical.batch`, which mirrors every semantic detail of this
module (memo, recorder, profiler and account hook points, index access
paths) while moving data in column batches instead of one tuple at a time.
Set ``REPRO_NO_VECTOR=1`` (or pass ``vectorize=False``) to restore the
executor below byte-for-byte; answers are identical either way.
"""

from __future__ import annotations

import os

from typing import Iterator

from repro.errors import EvaluationError
from repro.observability.accounting import current_account
from repro.physical.database import PhysicalDatabase
from repro.physical.indexes import indexes_for
from repro.resilience.deadlines import current_deadline
from repro.physical.plan import (
    ActiveDomain,
    AntiJoin,
    CrossProduct,
    Difference,
    EquiJoin,
    IndexScan,
    LiteralTable,
    NaturalJoin,
    PlanNode,
    Projection,
    RenameColumns,
    ScanRelation,
    Selection,
    SemiJoin,
    Table,
    UnionAll,
)

__all__ = [
    "VECTOR_ENV_FLAG",
    "execute",
    "node_label",
    "output_columns",
    "plan_size",
    "plan_to_text",
    "vectorization_enabled",
]

#: Setting this environment variable to anything but ``0``/``false``/``no``
#: disables the vectorized column-batch executor everywhere and restores the
#: PR 2 tuple-at-a-time streaming executor byte-for-byte (the CLI's
#: ``--no-vector`` flag sets it for one process).  Same convention as
#: ``REPRO_NO_OPTIMIZER`` / ``REPRO_NO_SIP``.
VECTOR_ENV_FLAG = "REPRO_NO_VECTOR"


def vectorization_enabled() -> bool:
    """Whether plans execute on column batches by default (honours the env flag)."""
    value = os.environ.get(VECTOR_ENV_FLAG, "").strip().lower()
    return value in ("", "0", "false", "no")


def execute(
    plan: PlanNode,
    database: PhysicalDatabase,
    *,
    use_indexes: bool = True,
    recorder=None,
    profiler=None,
    vectorize: bool | None = None,
) -> Table:
    """Execute *plan* against *database* and return the result table.

    *recorder* (any object with ``record(node, rows)``, e.g. a
    :class:`~repro.physical.statistics.CardinalityRecorder`) receives the
    actual row counts of every materialization point — the root, memoized
    shared subplans, join build sides and difference/anti-join filters — the
    raw material of feedback-driven re-optimization.  Recording costs one
    call per *materialized* intermediate, so the streaming hot path is
    untouched.

    *profiler* (any object with the
    :class:`~repro.observability.explain.PlanProfiler` hooks: ``set_root``,
    ``wrap``, ``memo_hit``, ``note_access``) meters every node's row count
    and wall time for EXPLAIN ANALYZE.  Unlike the recorder it wraps the
    *streaming* iterators too, so profiled executions pay two clock reads
    per row — profiling is opt-in per request, and the disabled path costs
    one ``is None`` check per node.

    *vectorize* selects the executor: ``True``/``False`` force the
    column-batch / tuple-at-a-time path, ``None`` (the default) follows the
    ``REPRO_NO_VECTOR`` environment flag.  Answers, recorder observations,
    profiler row counts and account totals are identical either way — the
    batch executor exists purely to cut per-tuple interpreter overhead.
    """
    if vectorize is None:
        vectorize = vectorization_enabled()
    if vectorize:
        from repro.physical.batch import execute_batched

        return execute_batched(
            plan, database, use_indexes=use_indexes, recorder=recorder, profiler=profiler
        )
    context = _ExecutionContext(database, use_indexes, recorder, profiler)
    context.mark_shared_subplans(plan)
    if profiler is not None:
        profiler.set_root(plan)
    return context.table(plan)


def output_columns(plan: PlanNode, database: PhysicalDatabase) -> tuple[str, ...]:
    """The column tuple *plan* produces, validating operator wiring as it goes."""
    return _ExecutionContext(database, use_indexes=False).columns(plan)


class _ExecutionContext:
    """Per-execution state: column resolution, shared-subplan memo, indexes."""

    def __init__(self, database: PhysicalDatabase, use_indexes: bool, recorder=None, profiler=None) -> None:
        self.database = database
        self.use_indexes = use_indexes
        self.recorder = recorder
        self.profiler = profiler
        # Column resolution is structural per (database, plan) — the arity
        # checks depend on the database's vocabulary — so the cache lives on
        # the immutable database instance (the ``DatabaseIndexes`` idiom)
        # and cached plans resolve each subplan once, not per execution.
        # Failed resolutions are never stored, so wiring errors re-raise.
        cache = database.__dict__.get("_plan_columns")
        if cache is None:
            cache = {}
            object.__setattr__(database, "_plan_columns", cache)
        self._columns: dict[PlanNode, tuple[str, ...]] = cache
        self._memo: dict[PlanNode, Table] = {}
        self._shared: frozenset[PlanNode] = frozenset()
        # Captured once per execution (one thread-local read); enforced at
        # the pipeline-breaker materialization points below, so a query that
        # overran its propagated budget stops burning CPU between operators
        # instead of running to completion.  ``None`` (the common case)
        # costs one ``is None`` check per materialization, like the profiler.
        self.deadline = current_deadline()
        # Same capture discipline for the resource account: one read here,
        # then len-based charges at base-relation access points only —
        # never per row, so an account-free execution costs one ``is
        # None`` check per scan.
        self.account = current_account()

    def mark_shared_subplans(self, root: PlanNode) -> None:
        """Record which subplans occur more than once (by structural equality).

        Those nodes are materialized a single time into the memo and replayed
        at every occurrence; everything else streams.  Below a repeated node
        the walk does not descend twice — its children only ever execute once.

        Sharing is a structural property of the immutable plan tree, so the
        walk's result is cached on the root (the ``cached_hash`` idiom):
        cached plans pay for the analysis once, not per execution.
        """
        cached = root.__dict__.get("_cached_shared")
        if cached is not None:
            self._shared = cached
            return
        counts: dict[PlanNode, int] = {}
        pending = [root]
        while pending:
            node = pending.pop()
            seen = counts.get(node, 0)
            counts[node] = seen + 1
            if seen == 0:
                pending.extend(node.children())
        shared = frozenset(node for node, count in counts.items() if count > 1)
        object.__setattr__(root, "_cached_shared", shared)
        self._shared = shared

    # Column resolution --------------------------------------------------------

    def columns(self, plan: PlanNode) -> tuple[str, ...]:
        cached = self._columns.get(plan)
        if cached is None:
            cached = self._resolve_columns(plan)
            self._columns[plan] = cached
        return cached

    def _resolve_columns(self, plan: PlanNode) -> tuple[str, ...]:
        if isinstance(plan, (ScanRelation, IndexScan)):
            self.database.relation(plan.relation)  # raises on unknown predicates
            arity = self.database.vocabulary.arity(plan.relation)
            if len(plan.columns) != arity:
                raise EvaluationError(
                    f"scan of {plan.relation!r} names {len(plan.columns)} columns but the relation has arity {arity}"
                )
            if isinstance(plan, IndexScan):
                for column, __ in plan.bindings:
                    if column not in plan.columns:
                        raise EvaluationError(f"index scan binds unknown column {column!r}")
            return plan.columns
        if isinstance(plan, ActiveDomain):
            return (plan.column,)
        if isinstance(plan, LiteralTable):
            return plan.columns
        if isinstance(plan, Selection):
            columns = self.columns(plan.source)
            referenced = plan.referenced_columns()
            if referenced is not None:
                missing = [column for column in referenced if column not in columns]
                if missing:
                    raise EvaluationError(f"selection references missing columns: {missing}")
            return columns
        if isinstance(plan, Projection):
            self.columns(plan.source)
            return plan.columns
        if isinstance(plan, RenameColumns):
            mapping = dict(plan.renaming)
            columns = tuple(mapping.get(column, column) for column in self.columns(plan.source))
            if len(set(columns)) != len(columns):
                raise EvaluationError(f"renaming produces duplicate columns: {columns}")
            return columns
        if isinstance(plan, NaturalJoin):
            left = self.columns(plan.left)
            right = self.columns(plan.right)
            return left + tuple(column for column in right if column not in left)
        if isinstance(plan, (EquiJoin, CrossProduct)):
            left = self.columns(plan.left)
            right = self.columns(plan.right)
            overlap = set(left) & set(right)
            if overlap:
                kind = "equi-join" if isinstance(plan, EquiJoin) else "cross product"
                raise EvaluationError(f"{kind} operands share columns: {sorted(overlap)}")
            if isinstance(plan, EquiJoin):
                for left_column, right_column in plan.pairs:
                    if left_column not in left or right_column not in right:
                        raise EvaluationError(
                            f"equi-join pair ({left_column!r}, {right_column!r}) is not split across the operands"
                        )
            return left + right
        if isinstance(plan, (UnionAll, Difference)):
            left = self.columns(plan.left)
            right = self.columns(plan.right)
            if set(left) != set(right):
                raise EvaluationError(
                    f"set operation operands have different columns: {right} vs {left}"
                )
            return left
        if isinstance(plan, (SemiJoin, AntiJoin)):
            source = self.columns(plan.source)
            filter_columns = self.columns(plan.filter)
            kind = "semi-join" if isinstance(plan, SemiJoin) else "anti-join"
            for source_column, filter_column in plan.pairs:
                if source_column not in source:
                    raise EvaluationError(f"{kind} pairs unknown source column {source_column!r}")
                if filter_column not in filter_columns:
                    raise EvaluationError(f"{kind} pairs unknown filter column {filter_column!r}")
            return source
        raise EvaluationError(f"unknown plan node: {plan!r}")

    # Materialization ----------------------------------------------------------

    def table(self, plan: PlanNode) -> Table:
        """Materialize *plan* (through the memo for shared subplans)."""
        cached = self._memo.get(plan)
        if cached is None:
            if self.deadline is not None:
                self.deadline.check("plan materialization")
            iterator = self._iterate(plan)
            if self.profiler is not None:
                iterator = self.profiler.wrap(plan, iterator)
            cached = Table.trusted(self.columns(plan), frozenset(iterator))
            if plan in self._shared:
                self._memo[plan] = cached
            if self.recorder is not None:
                self.recorder.record(plan, len(cached.rows))
        elif self.profiler is not None:
            self.profiler.memo_hit(plan)
        return cached

    def rows(self, plan: PlanNode) -> Iterator[tuple]:
        """Stream *plan*'s rows; shared subplans are served from the memo."""
        if plan in self._shared:
            yield from self.table(plan).rows
        elif self.profiler is not None:
            yield from self.profiler.wrap(plan, self._iterate(plan))
        else:
            yield from self._iterate(plan)

    # Row iteration ------------------------------------------------------------

    def _iterate(self, plan: PlanNode) -> Iterator[tuple]:
        if isinstance(plan, ScanRelation):
            relation = self.database.relation(plan.relation)
            if self.account is not None:
                self.account.rows_scanned += len(relation)
            for row in relation:
                yield tuple(row)
            return
        if isinstance(plan, IndexScan):
            yield from self._iterate_index_scan(plan)
            return
        if isinstance(plan, ActiveDomain):
            for value in self.database.active_domain():
                yield (value,)
            return
        if isinstance(plan, LiteralTable):
            width = len(plan.columns)
            for row in plan.rows:
                if len(row) != width:
                    raise EvaluationError(f"row {row!r} does not match columns {plan.columns!r}")
                yield row
            return
        if isinstance(plan, Selection):
            yield from self._iterate_selection(plan)
            return
        if isinstance(plan, Projection):
            source_columns = self.columns(plan.source)
            indexes = [source_columns.index(column) for column in plan.columns]
            for row in self.rows(plan.source):
                yield tuple(row[i] for i in indexes)
            return
        if isinstance(plan, RenameColumns):
            yield from self.rows(plan.source)
            return
        if isinstance(plan, NaturalJoin):
            yield from self._iterate_natural_join(plan)
            return
        if isinstance(plan, EquiJoin):
            yield from self._iterate_equi_join(plan)
            return
        if isinstance(plan, CrossProduct):
            right_rows = list(self.rows(plan.right))
            for left_row in self.rows(plan.left):
                for right_row in right_rows:
                    yield left_row + right_row
            return
        if isinstance(plan, UnionAll):
            columns = self.columns(plan)
            yield from self.rows(plan.left)
            yield from self._aligned_rows(plan.right, columns)
            return
        if isinstance(plan, Difference):
            columns = self.columns(plan)
            excluded = set(self._aligned_rows(plan.right, columns))
            if self.recorder is not None:
                self.recorder.record(plan.right, len(excluded))
            for row in self.rows(plan.left):
                if row not in excluded:
                    yield row
            return
        if isinstance(plan, SemiJoin):
            yield from self._iterate_semi_join(plan)
            return
        if isinstance(plan, AntiJoin):
            yield from self._iterate_anti_join(plan)
            return
        raise EvaluationError(f"unknown plan node: {plan!r}")

    def _iterate_index_scan(self, plan: IndexScan) -> Iterator[tuple]:
        positions = tuple(plan.columns.index(column) for column, __ in plan.bindings)
        key = tuple(value for __, value in plan.bindings)
        if self.use_indexes:
            rows = indexes_for(self.database).lookup(plan.relation, positions, key)
            if rows is not None:
                if self.profiler is not None:
                    self.profiler.note_access(plan, "index")
                if self.account is not None:
                    self.account.rows_scanned += len(rows)
                yield from rows
                return
        # No index available (lazy relation) or indexing disabled: filter scan.
        if self.profiler is not None:
            self.profiler.note_access(plan, "scan")
        if self.account is not None:
            self.account.rows_scanned += len(self.database.relation(plan.relation))
        for row in self.database.relation(plan.relation):
            row = tuple(row)
            if all(row[position] == value for position, value in zip(positions, key)):
                yield row

    def _iterate_selection(self, plan: Selection) -> Iterator[tuple]:
        columns = self.columns(plan.source)
        if plan.condition is not None:
            for row in self.rows(plan.source):
                if plan.condition(dict(zip(columns, row))):
                    yield row
            return
        bindings = [(columns.index(column), value) for column, value in plan.bindings]
        groups = [[columns.index(column) for column in group] for group in plan.equalities]
        for row in self.rows(plan.source):
            if all(row[index] == value for index, value in bindings) and all(
                len({row[index] for index in group}) == 1 for group in groups
            ):
                yield row

    def _iterate_natural_join(self, plan: NaturalJoin) -> Iterator[tuple]:
        left_columns = self.columns(plan.left)
        right_columns = self.columns(plan.right)
        shared = tuple(column for column in left_columns if column in right_columns)
        right_only = tuple(column for column in right_columns if column not in shared)

        if not shared:
            right_rows = list(self.rows(plan.right))
            for left_row in self.rows(plan.left):
                for right_row in right_rows:
                    yield left_row + right_row
            return

        left_key = [left_columns.index(column) for column in shared]
        right_key = tuple(right_columns.index(column) for column in shared)
        right_rest = [right_columns.index(column) for column in right_only]

        buckets = self._join_buckets(plan.right, right_key)
        for left_row in self.rows(plan.left):
            key = tuple(left_row[i] for i in left_key)
            for right_row in buckets.get(key, _NO_ROWS):
                yield left_row + tuple(right_row[i] for i in right_rest)

    def _join_buckets(self, build: PlanNode, key_positions: tuple[int, ...]):
        """Hash table for a join build side, reusing a stored index when possible."""
        if self.use_indexes and isinstance(build, ScanRelation):
            index = indexes_for(self.database).prefix(build.relation, key_positions)
            if index is not None:
                if self.profiler is not None:
                    self.profiler.note_access(build, "index")
                return index
        if self.deadline is not None:
            self.deadline.check("join build")
        buckets: dict[tuple, list[tuple]] = {}
        total = 0
        for row in self.rows(build):
            buckets.setdefault(tuple(row[i] for i in key_positions), []).append(row)
            total += 1
        if self.recorder is not None:
            self.recorder.record(build, total)
        return buckets

    def _filter_keys(self, plan: SemiJoin | AntiJoin) -> set[tuple]:
        """The distinct key tuples of a semi/anti-join's filter side."""
        if self.deadline is not None:
            self.deadline.check("filter build")
        filter_columns = self.columns(plan.filter)
        positions = [filter_columns.index(column) for __, column in plan.pairs]
        keys = {tuple(row[i] for i in positions) for row in self.rows(plan.filter)}
        if self.recorder is not None and {column for __, column in plan.pairs} == set(filter_columns):
            # Only when the pairs cover every filter column is the distinct
            # key count the node's true cardinality; a partial key (pairs
            # split across join sides) would record a misleading undercount.
            self.recorder.record(plan.filter, len(keys))
        return keys

    def _iterate_semi_join(self, plan: SemiJoin) -> Iterator[tuple]:
        source_columns = self.columns(plan.source)
        positions = tuple(source_columns.index(column) for column, __ in plan.pairs)
        keys = self._filter_keys(plan)
        if not keys:
            return
        if self.use_indexes and plan.pairs and isinstance(plan.source, ScanRelation):
            # The sideways payoff: probe the stored prefix index once per key
            # instead of scanning the whole relation.  Buckets are disjoint
            # per key, so no row is produced twice.
            index = indexes_for(self.database).prefix(plan.source.relation, positions)
            if index is not None:
                if self.profiler is not None:
                    self.profiler.note_access(plan, "index")
                for key in keys:
                    yield from index.get(key, _NO_ROWS)
                return
        for row in self.rows(plan.source):
            if tuple(row[i] for i in positions) in keys:
                yield row

    def _iterate_anti_join(self, plan: AntiJoin) -> Iterator[tuple]:
        source_columns = self.columns(plan.source)
        positions = tuple(source_columns.index(column) for column, __ in plan.pairs)
        keys = self._filter_keys(plan)
        for row in self.rows(plan.source):
            if tuple(row[i] for i in positions) not in keys:
                yield row

    def _iterate_equi_join(self, plan: EquiJoin) -> Iterator[tuple]:
        left_columns = self.columns(plan.left)
        right_columns = self.columns(plan.right)
        left_key = [left_columns.index(left) for left, __ in plan.pairs]
        right_key = tuple(right_columns.index(right) for __, right in plan.pairs)

        if not plan.pairs:
            right_rows = list(self.rows(plan.right))
            for left_row in self.rows(plan.left):
                for right_row in right_rows:
                    yield left_row + right_row
            return

        buckets = self._join_buckets(plan.right, right_key)
        for left_row in self.rows(plan.left):
            key = tuple(left_row[i] for i in left_key)
            for right_row in buckets.get(key, _NO_ROWS):
                yield left_row + right_row

    def _aligned_rows(self, plan: PlanNode, columns: tuple[str, ...]) -> Iterator[tuple]:
        """Stream *plan*'s rows reordered to *columns* (same column set)."""
        own = self.columns(plan)
        if own == columns:
            yield from self.rows(plan)
            return
        indexes = [own.index(column) for column in columns]
        for row in self.rows(plan):
            yield tuple(row[i] for i in indexes)


_NO_ROWS: tuple[tuple, ...] = ()


def plan_size(plan: PlanNode) -> int:
    """Number of operator nodes in a plan (used by tests and reports)."""
    return 1 + sum(plan_size(child) for child in plan.children())


def node_label(plan: PlanNode) -> str:
    """One-line operator label for a plan node (plan texts, EXPLAIN trees)."""
    if isinstance(plan, ScanRelation):
        return f"Scan {plan.relation}({', '.join(plan.columns)})"
    if isinstance(plan, IndexScan):
        probe = " & ".join(f"{column}={value!r}" for column, value in plan.bindings)
        return f"IndexScan {plan.relation}({', '.join(plan.columns)}; {probe})"
    if isinstance(plan, ActiveDomain):
        return f"ActiveDomain({plan.column})"
    if isinstance(plan, LiteralTable):
        return f"Literal({', '.join(plan.columns)}; {len(plan.rows)} rows)"
    if isinstance(plan, Selection):
        return f"Select[{plan.description}]"
    if isinstance(plan, Projection):
        return f"Project({', '.join(plan.columns)})"
    if isinstance(plan, RenameColumns):
        renames = ", ".join(f"{old}->{new}" for old, new in plan.renaming)
        return f"Rename({renames})"
    if isinstance(plan, EquiJoin):
        pairs = ", ".join(f"{left}={right}" for left, right in plan.pairs)
        return f"EquiJoin({pairs})"
    if isinstance(plan, (SemiJoin, AntiJoin)):
        pairs = ", ".join(f"{source}={filtered}" for source, filtered in plan.pairs)
        return f"{type(plan).__name__}({pairs})"
    return type(plan).__name__


def plan_to_text(plan: PlanNode, indent: int = 0) -> str:
    """Indented textual rendering of a plan tree (debugging aid)."""
    parts = ["  " * indent + node_label(plan)]
    for child in plan.children():
        parts.append(plan_to_text(child, indent + 1))
    return "\n".join(parts)

"""Execution of relational-algebra plans over a physical database.

The executor is a straightforward pull-based interpreter: each plan node is
evaluated to a :class:`~repro.physical.plan.Table`.  It is deliberately
simple — the goal is a faithful "standard relational system" substrate for
the approximation algorithm of Section 5, not a competitive query engine —
but joins use hash partitioning on the shared columns so the asymptotics are
reasonable for the benchmark workloads.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import EvaluationError
from repro.physical.database import PhysicalDatabase
from repro.physical.plan import (
    ActiveDomain,
    CrossProduct,
    Difference,
    LiteralTable,
    NaturalJoin,
    PlanNode,
    Projection,
    RenameColumns,
    ScanRelation,
    Selection,
    Table,
    UnionAll,
)

__all__ = ["execute", "plan_size", "plan_to_text"]


def execute(plan: PlanNode, database: PhysicalDatabase) -> Table:
    """Execute *plan* against *database* and return the result table."""
    if isinstance(plan, ScanRelation):
        relation = database.relation(plan.relation)
        arity = database.vocabulary.arity(plan.relation)
        if len(plan.columns) != arity:
            raise EvaluationError(
                f"scan of {plan.relation!r} names {len(plan.columns)} columns but the relation has arity {arity}"
            )
        return Table(plan.columns, frozenset(tuple(row) for row in relation))
    if isinstance(plan, ActiveDomain):
        return Table((plan.column,), frozenset((value,) for value in database.active_domain()))
    if isinstance(plan, LiteralTable):
        return Table(plan.columns, plan.rows)
    if isinstance(plan, Selection):
        source = execute(plan.source, database)
        kept = frozenset(row for row in source.rows if plan.condition(dict(zip(source.columns, row))))
        return Table(source.columns, kept)
    if isinstance(plan, Projection):
        source = execute(plan.source, database)
        return source.project(plan.columns)
    if isinstance(plan, RenameColumns):
        source = execute(plan.source, database)
        mapping = dict(plan.renaming)
        columns = tuple(mapping.get(column, column) for column in source.columns)
        if len(set(columns)) != len(columns):
            raise EvaluationError(f"renaming produces duplicate columns: {columns}")
        return Table(columns, source.rows)
    if isinstance(plan, NaturalJoin):
        return _natural_join(execute(plan.left, database), execute(plan.right, database))
    if isinstance(plan, CrossProduct):
        left = execute(plan.left, database)
        right = execute(plan.right, database)
        overlap = set(left.columns) & set(right.columns)
        if overlap:
            raise EvaluationError(f"cross product operands share columns: {sorted(overlap)}")
        rows = frozenset(lrow + rrow for lrow in left.rows for rrow in right.rows)
        return Table(left.columns + right.columns, rows)
    if isinstance(plan, UnionAll):
        left = execute(plan.left, database)
        right = execute(plan.right, database)
        right_aligned = _align(right, left.columns)
        return Table(left.columns, left.rows | right_aligned.rows)
    if isinstance(plan, Difference):
        left = execute(plan.left, database)
        right = execute(plan.right, database)
        right_aligned = _align(right, left.columns)
        return Table(left.columns, left.rows - right_aligned.rows)
    raise EvaluationError(f"unknown plan node: {plan!r}")


def _align(table: Table, columns: tuple[str, ...]) -> Table:
    """Reorder *table*'s columns to match *columns* (they must be the same set)."""
    if table.columns == columns:
        return table
    if set(table.columns) != set(columns):
        raise EvaluationError(
            f"set operation operands have different columns: {table.columns} vs {columns}"
        )
    return table.project(columns)


def _natural_join(left: Table, right: Table) -> Table:
    shared = tuple(column for column in left.columns if column in right.columns)
    right_only = tuple(column for column in right.columns if column not in shared)
    result_columns = left.columns + right_only

    if not shared:
        rows = frozenset(lrow + rrow for lrow in left.rows for rrow in right.rows)
        return Table(result_columns, rows)

    left_key_indexes = [left.columns.index(column) for column in shared]
    right_key_indexes = [right.columns.index(column) for column in shared]
    right_rest_indexes = [right.columns.index(column) for column in right_only]

    buckets: dict[tuple, list[tuple]] = defaultdict(list)
    for row in right.rows:
        key = tuple(row[i] for i in right_key_indexes)
        buckets[key].append(tuple(row[i] for i in right_rest_indexes))

    rows = set()
    for row in left.rows:
        key = tuple(row[i] for i in left_key_indexes)
        for rest in buckets.get(key, ()):
            rows.add(row + rest)
    return Table(result_columns, frozenset(rows))


def plan_size(plan: PlanNode) -> int:
    """Number of operator nodes in a plan (used by tests and reports)."""
    return 1 + sum(plan_size(child) for child in plan.children())


def plan_to_text(plan: PlanNode, indent: int = 0) -> str:
    """Indented textual rendering of a plan tree (debugging aid)."""
    pad = "  " * indent
    if isinstance(plan, ScanRelation):
        header = f"{pad}Scan {plan.relation}({', '.join(plan.columns)})"
    elif isinstance(plan, ActiveDomain):
        header = f"{pad}ActiveDomain({plan.column})"
    elif isinstance(plan, LiteralTable):
        header = f"{pad}Literal({', '.join(plan.columns)}; {len(plan.rows)} rows)"
    elif isinstance(plan, Selection):
        header = f"{pad}Select[{plan.description}]"
    elif isinstance(plan, Projection):
        header = f"{pad}Project({', '.join(plan.columns)})"
    elif isinstance(plan, RenameColumns):
        renames = ", ".join(f"{old}->{new}" for old, new in plan.renaming)
        header = f"{pad}Rename({renames})"
    else:
        header = f"{pad}{type(plan).__name__}"
    parts = [header]
    for child in plan.children():
        parts.append(plan_to_text(child, indent + 1))
    return "\n".join(parts)

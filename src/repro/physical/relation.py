"""Stored relations.

A relation is a named, fixed-arity set of tuples over a domain.  Two
implementations share the :class:`RelationLike` interface:

* :class:`Relation` — an ordinary materialized set of tuples;
* lazy relations (see :class:`repro.logical.unknowns.VirtualNERelation`) that
  compute membership on demand.  The paper's Section 5 closes by observing
  that the inequality relation ``NE`` should be *virtual* because its
  materialized size is quadratic in the number of constants; the lazy
  interface is what makes that observation implementable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Protocol, runtime_checkable

from repro.errors import DatabaseError

__all__ = ["Relation", "RelationLike", "tuples_of"]


@runtime_checkable
class RelationLike(Protocol):
    """Minimal protocol all relation implementations satisfy."""

    name: str
    arity: int

    def __contains__(self, item: object) -> bool: ...

    def __iter__(self) -> Iterator[tuple]: ...

    def __len__(self) -> int: ...


@dataclass(frozen=True)
class Relation:
    """A materialized relation: a named finite set of same-arity tuples."""

    name: str
    arity: int
    tuples: frozenset[tuple]

    def __init__(self, name: str, arity: int, tuples: Iterable[tuple] = ()) -> None:
        if not name or not isinstance(name, str):
            raise DatabaseError(f"relation name must be a non-empty string, got {name!r}")
        if not isinstance(arity, int) or arity < 1:
            raise DatabaseError(f"relation arity must be a positive integer, got {arity!r}")
        frozen = frozenset(tuple(row) for row in tuples)
        for row in frozen:
            if len(row) != arity:
                raise DatabaseError(
                    f"relation {name!r} has arity {arity} but contains a tuple of length {len(row)}: {row!r}"
                )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "arity", arity)
        object.__setattr__(self, "tuples", frozen)

    def __contains__(self, item: object) -> bool:
        return item in self.tuples

    def __iter__(self) -> Iterator[tuple]:
        return iter(sorted(self.tuples, key=repr))

    def __len__(self) -> int:
        return len(self.tuples)

    def values(self) -> frozenset:
        """Return every domain element mentioned by some tuple."""
        return frozenset(value for row in self.tuples for value in row)

    def column_values(self, position: int) -> frozenset:
        """Distinct values appearing in one column position.

        Computed once per position and cached on the instance (sound because
        relations are immutable); the evaluator's bounded quantifier
        enumeration and the optimizer's statistics both probe these sets
        repeatedly.
        """
        if not 0 <= position < self.arity:
            raise DatabaseError(
                f"column {position} out of range for relation {self.name!r} (arity {self.arity})"
            )
        cached = self.__dict__.get("_column_values")
        if cached is None:
            columns = [set() for __ in range(self.arity)]
            for row in self.tuples:
                for index, value in enumerate(row):
                    columns[index].add(value)
            cached = tuple(frozenset(column) for column in columns)
            object.__setattr__(self, "_column_values", cached)
        return cached[position]

    # Functional updates -----------------------------------------------------

    def add(self, row: tuple) -> "Relation":
        """Return a copy with *row* added."""
        return Relation(self.name, self.arity, self.tuples | {tuple(row)})

    def remove(self, row: tuple) -> "Relation":
        """Return a copy with *row* removed (no error if absent)."""
        return Relation(self.name, self.arity, self.tuples - {tuple(row)})

    def map_values(self, mapping) -> "Relation":
        """Return the image of the relation under an element mapping.

        This is the operation ``h(I(P))`` used throughout Section 3: every
        tuple has the mapping applied componentwise.  ``mapping`` may be a
        dict or any callable.
        """
        apply = mapping.__getitem__ if hasattr(mapping, "__getitem__") else mapping
        return Relation(self.name, self.arity, {tuple(apply(value) for value in row) for row in self.tuples})

    def renamed(self, name: str) -> "Relation":
        """Return the same relation under a different name."""
        return Relation(name, self.arity, self.tuples)


def tuples_of(relation: RelationLike) -> frozenset[tuple]:
    """Materialize the tuples of any relation-like object."""
    if isinstance(relation, Relation):
        return relation.tuples
    return frozenset(relation)

"""Physical databases: finite interpretations of a relational vocabulary.

Section 2.1 of the paper: a physical database ``(L, I)`` consists of a
nonempty finite domain ``D``, an assignment of an element of ``D`` to each
constant symbol, and a relation of the appropriate arity over ``D`` for each
predicate symbol; equality is always interpreted as true equality.

:class:`PhysicalDatabase` is immutable; the ``with_*`` methods produce
modified copies.  Relations may be ordinary :class:`~repro.physical.relation.Relation`
objects or lazy relation-like objects (used for the virtual ``NE`` relation
of Section 5).

**Immutability contract.**  Instances never change after construction —
updates return fresh copies — so :meth:`PhysicalDatabase.fingerprint` is a
stable identifier of the interpretation's content.  The serving layer relies
on this to share one ``Ph2(LB)`` across concurrent queries without locking.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import DatabaseError, VocabularyError
from repro.logic.vocabulary import Vocabulary
from repro.physical.relation import Relation, RelationLike

__all__ = ["PhysicalDatabase"]


@dataclass(frozen=True)
class PhysicalDatabase:
    """A finite interpretation ``(L, I)`` of a relational vocabulary.

    Parameters
    ----------
    vocabulary:
        The relational vocabulary ``L``.
    domain:
        The finite, nonempty domain ``D``.  Elements may be any hashable
        Python values; in databases derived from logical databases they are
        constant-symbol names (strings).
    constants:
        Assignment of a domain element to every constant symbol of ``L``.
    relations:
        For each predicate symbol of ``L``, a relation over ``D`` of the
        declared arity.  Predicates missing from the mapping are interpreted
        as empty relations.
    """

    vocabulary: Vocabulary
    domain: frozenset
    constants: Mapping[str, object]
    relations: Mapping[str, RelationLike]

    def __init__(
        self,
        vocabulary: Vocabulary,
        domain: Iterable,
        constants: Mapping[str, object],
        relations: Mapping[str, RelationLike] | Mapping[str, Iterable[tuple]] | None = None,
    ) -> None:
        domain_set = frozenset(domain)
        if not domain_set:
            raise DatabaseError("the domain of a physical database must be nonempty")
        constant_map = dict(constants)
        for symbol in vocabulary.constants:
            if symbol not in constant_map:
                raise DatabaseError(f"no interpretation given for constant symbol {symbol!r}")
            if constant_map[symbol] not in domain_set:
                raise DatabaseError(
                    f"constant {symbol!r} is interpreted as {constant_map[symbol]!r}, which is outside the domain"
                )
        unknown_constants = set(constant_map) - set(vocabulary.constants)
        if unknown_constants:
            raise VocabularyError(f"interpretation given for undeclared constants: {sorted(unknown_constants)}")

        relation_map: dict[str, RelationLike] = {}
        provided = dict(relations or {})
        unknown_predicates = set(provided) - set(vocabulary.predicates)
        if unknown_predicates:
            raise VocabularyError(f"relations given for undeclared predicates: {sorted(unknown_predicates)}")
        for predicate, arity in vocabulary.predicates.items():
            value = provided.get(predicate)
            if value is None:
                relation_map[predicate] = Relation(predicate, arity, ())
            elif isinstance(value, Relation):
                relation_map[predicate] = self._check_relation(value, predicate, arity, domain_set)
            elif isinstance(value, RelationLike) and not isinstance(value, (set, frozenset, list, tuple)):
                # Lazy relation: trust its declared arity, skip materialization.
                if value.arity != arity:
                    raise DatabaseError(
                        f"relation for {predicate!r} has arity {value.arity}, vocabulary declares {arity}"
                    )
                relation_map[predicate] = value
            else:
                relation_map[predicate] = self._check_relation(
                    Relation(predicate, arity, value), predicate, arity, domain_set
                )

        object.__setattr__(self, "vocabulary", vocabulary)
        object.__setattr__(self, "domain", domain_set)
        object.__setattr__(self, "constants", constant_map)
        object.__setattr__(self, "relations", relation_map)

    @staticmethod
    def _check_relation(relation: Relation, predicate: str, arity: int, domain: frozenset) -> Relation:
        if relation.arity != arity:
            raise DatabaseError(
                f"relation for {predicate!r} has arity {relation.arity}, vocabulary declares {arity}"
            )
        outside = relation.values() - domain
        if outside:
            raise DatabaseError(
                f"relation {predicate!r} mentions values outside the domain: {sorted(map(repr, outside))}"
            )
        if relation.name != predicate:
            relation = relation.renamed(predicate)
        return relation

    def __hash__(self) -> int:
        frozen_relations = tuple(
            sorted((name, frozenset(rel) if not isinstance(rel, Relation) else rel.tuples)
                   for name, rel in self.relations.items())
        )
        return hash((self.vocabulary, self.domain, tuple(sorted(self.constants.items(), key=repr)), frozen_relations))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PhysicalDatabase):
            return NotImplemented
        if self.vocabulary != other.vocabulary or self.domain != other.domain:
            return False
        if self.constants != other.constants:
            return False
        if set(self.relations) != set(other.relations):
            return False
        for name, relation in self.relations.items():
            if frozenset(relation) != frozenset(other.relations[name]):
                return False
        return True

    def fingerprint(self) -> str:
        """A stable hex digest of the interpretation's content.

        Domain elements enter the digest via ``repr``, so equal databases
        (same vocabulary, domain, constant assignment and relation contents
        — lazy relations are materialized) share a fingerprint whenever
        their values have content-based reprs.  That covers the string
        domains of ``Ph1``/``Ph2`` and anything loaded from CSV — the cases
        the serving layer keys on; values with identity-based reprs (plain
        ``object()``) would not fingerprint stably.  Computed once and
        cached, which is sound because instances are immutable.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            payload = json.dumps(
                {
                    "constants": sorted((symbol, repr(value)) for symbol, value in self.constants.items()),
                    "predicates": {name: arity for name, arity in sorted(self.vocabulary.predicates.items())},
                    "domain": sorted(repr(value) for value in self.domain),
                    "relations": {
                        name: sorted(repr(row) for row in relation)
                        for name, relation in sorted(self.relations.items())
                    },
                },
                separators=(",", ":"),
            )
            cached = hashlib.sha256(payload.encode()).hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    # Lookups -----------------------------------------------------------------

    def constant_value(self, symbol: str) -> object:
        """Return the domain element assigned to a constant symbol."""
        try:
            return self.constants[symbol]
        except KeyError:
            raise DatabaseError(f"unknown constant symbol {symbol!r}") from None

    def relation(self, predicate: str) -> RelationLike:
        """Return the relation assigned to a predicate symbol."""
        try:
            return self.relations[predicate]
        except KeyError:
            raise DatabaseError(f"unknown predicate {predicate!r}") from None

    def has_relation(self, predicate: str) -> bool:
        return predicate in self.relations

    def active_domain(self) -> frozenset:
        """Values mentioned by some relation tuple or assigned to a constant.

        Computed once and cached on the instance — the same immutability
        contract as :meth:`fingerprint`.  The algebra engine consults the
        active domain on every ``ActiveDomain`` plan node and every compile,
        so recomputing it (which iterates every stored tuple, including lazy
        relations) used to dominate small-query latency.
        """
        cached = self.__dict__.get("_active_domain")
        if cached is None:
            values = set(self.constants.values())
            for relation in self.relations.values():
                if isinstance(relation, Relation):
                    values |= relation.values()
                else:
                    for row in relation:
                        values |= set(row)
            cached = frozenset(values)
            object.__setattr__(self, "_active_domain", cached)
        return cached

    def total_tuples(self) -> int:
        """Number of stored tuples across all relations (a size measure)."""
        return sum(len(relation) for relation in self.relations.values())

    # Functional updates -------------------------------------------------------

    def with_relation(self, predicate: str, tuples: Iterable[tuple] | RelationLike) -> "PhysicalDatabase":
        """Return a copy in which *predicate* is interpreted by *tuples*.

        The predicate must already be declared; use :meth:`with_new_predicate`
        to extend the vocabulary at the same time.
        """
        if predicate not in self.vocabulary.predicates:
            raise VocabularyError(f"predicate {predicate!r} is not declared in the vocabulary")
        relations = dict(self.relations)
        relations[predicate] = tuples
        return PhysicalDatabase(self.vocabulary, self.domain, self.constants, relations)

    def with_new_predicate(self, predicate: str, arity: int, tuples: Iterable[tuple] = ()) -> "PhysicalDatabase":
        """Return a copy whose vocabulary and interpretation include a new predicate."""
        vocabulary = self.vocabulary.with_predicates({predicate: arity})
        relations = dict(self.relations)
        relations[predicate] = Relation(predicate, arity, tuples)
        return PhysicalDatabase(vocabulary, self.domain, self.constants, relations)

    def restricted_to(self, vocabulary: Vocabulary) -> "PhysicalDatabase":
        """Return the reduct of the database to a sub-vocabulary.

        This is the operation written ``PB|_{L'}`` in the proof of Theorem 3.
        Every constant and predicate of *vocabulary* must already be
        interpreted here.
        """
        for symbol in vocabulary.constants:
            if symbol not in self.constants:
                raise VocabularyError(f"cannot restrict: constant {symbol!r} is not interpreted")
        relations = {}
        for predicate, arity in vocabulary.predicates.items():
            if predicate not in self.relations:
                raise VocabularyError(f"cannot restrict: predicate {predicate!r} is not interpreted")
            if self.vocabulary.arity(predicate) != arity:
                raise VocabularyError(f"cannot restrict: predicate {predicate!r} has a different arity")
            relations[predicate] = self.relations[predicate]
        constants = {symbol: self.constants[symbol] for symbol in vocabulary.constants}
        return PhysicalDatabase(vocabulary, self.domain, constants, relations)

    def map_domain(self, mapping: Mapping) -> "PhysicalDatabase":
        """Apply an element mapping ``h`` to the whole database.

        Returns ``h(PB)``: the domain becomes ``h(D)``, every constant ``c``
        is reinterpreted as ``h(I(c))`` and every relation becomes its image
        under ``h`` (Section 3.1).
        """
        new_domain = frozenset(mapping[value] for value in self.domain)
        new_constants = {symbol: mapping[value] for symbol, value in self.constants.items()}
        new_relations = {}
        for predicate, relation in self.relations.items():
            if isinstance(relation, Relation):
                new_relations[predicate] = relation.map_values(mapping)
            else:
                arity = self.vocabulary.arity(predicate)
                new_relations[predicate] = Relation(
                    predicate, arity, {tuple(mapping[v] for v in row) for row in relation}
                )
        return PhysicalDatabase(self.vocabulary, new_domain, new_constants, new_relations)

    def describe(self) -> str:
        """Short human-readable summary used by examples and the harness."""
        parts = [f"domain size {len(self.domain)}", f"{len(self.constants)} constants"]
        for name in sorted(self.relations):
            parts.append(f"{name}: {len(self.relations[name])} tuples")
        return ", ".join(parts)

"""Cost-aware rewriting of relational-algebra plans before execution.

The compiler (:mod:`repro.physical.compiler`) translates formulas
syntax-directedly, which produces correct but naive plans: selections sit
above products, join order follows formula order, padding introduces
active-domain products, and equal subformulas compile to duplicate subtrees.
This module rewrites a compiled plan into an equivalent cheaper one:

* **constant folding** — empty ``LiteralTable``/``Bottom`` branches
  annihilate joins and differences, identity projections/renames disappear,
  selections over literal tables evaluate at plan time;
* **selection pushdown** — structured selections (constant bindings and
  column-equality groups) move below projections, renames, unions,
  differences and into the matching side(s) of joins and products;
* **join conversions** — a selection equating columns across a
  ``CrossProduct`` becomes an :class:`~repro.physical.plan.EquiJoin` (hash
  join instead of filtered product); constant bindings over a
  ``ScanRelation`` become an :class:`~repro.physical.plan.IndexScan`;
* **greedy join reordering** — maximal ``NaturalJoin`` chains are flattened
  (natural join is associative and commutative on sets) and re-ordered
  smallest-estimate-first using per-database :class:`~repro.physical.statistics.Statistics`,
  preferring joins that share columns over products;
* **projection pushdown** — columns a parent never consumes are dropped
  before joins, shrinking intermediate widths and row counts;
* **common-subplan deduplication** — structurally equal subtrees are
  interned to a single object; the executor's memo table then computes each
  one once per execution;
* **sideways information passing (semi-join reduction)** — when one join
  input is estimated far smaller than another, the large input is reduced by
  a :class:`~repro.physical.plan.SemiJoin` against the small input's key set
  *before* the join, pushed down to the underlying scans (where the stored
  hash indexes turn a full pass into per-key probes); differences whose
  right side is expensive get the symmetric
  :class:`~repro.physical.plan.AntiJoin` treatment.

The estimator also consults **observed cardinalities**: actual subplan row
counts recorded by previous executions (:class:`~repro.physical.statistics.CardinalityRecorder`,
folded in through :func:`apply_feedback`).  When an observation contradicts
the model badly enough the serving layer re-optimizes the query — the
feedback loop that turns the plan-once compiler into an adaptive runtime.

Every rewrite preserves the result *exactly* — same columns in the same
order, same row set — so the optimizer can be toggled freely: set the
``REPRO_NO_OPTIMIZER`` environment variable (or pass ``--no-optimizer`` to
the CLI) to fall back to naive plans when debugging, or ``REPRO_NO_SIP`` /
``--no-sip`` to keep everything but the semi-join reducer.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.physical.algebra import _ExecutionContext
from repro.physical.database import PhysicalDatabase
from repro.physical.plan import (
    ActiveDomain,
    AntiJoin,
    CrossProduct,
    Difference,
    EquiJoin,
    IndexScan,
    LiteralTable,
    NaturalJoin,
    PlanNode,
    Projection,
    RenameColumns,
    ScanRelation,
    Selection,
    SemiJoin,
    UnionAll,
    plan_fingerprint,
)
from repro.logic.terms import Parameter
from repro.physical.statistics import CardinalityRecorder, Statistics, statistics_for

__all__ = [
    "OPTIMIZER_ENV_FLAG",
    "SIP_ENV_FLAG",
    "DEFAULT_FEEDBACK_THRESHOLD",
    "FeedbackOutcome",
    "optimizer_enabled",
    "sip_enabled",
    "optimize",
    "maybe_optimize",
    "apply_feedback",
    "plan_cost",
]

#: Setting this environment variable to anything but ``0``/``false``/``no``
#: disables plan optimization everywhere (the CLI's ``--no-optimizer`` flag
#: and the benchmarks' naive configuration use explicit arguments instead).
OPTIMIZER_ENV_FLAG = "REPRO_NO_OPTIMIZER"

#: Same convention for the sideways-information-passing pass alone: set to
#: disable semi-join reduction while keeping the rest of the optimizer.
SIP_ENV_FLAG = "REPRO_NO_SIP"

_SELECTIVITY_OPAQUE = 1.0 / 3.0

#: Sideways information passing only fires when the reduced side is at least
#: this many times the filter side's estimate...
_SIP_RATIO = 4.0
#: ...and estimated at least this many rows (tiny inputs are never worth it).
_SIP_MIN_ROWS = 64.0

#: An observation must contradict the model by at least this factor (either
#: direction) before it is recorded and the cached plan declared stale.
DEFAULT_FEEDBACK_THRESHOLD = 8.0


def optimizer_enabled() -> bool:
    """Whether plans should be optimized by default (honours the env flag)."""
    value = os.environ.get(OPTIMIZER_ENV_FLAG, "").strip().lower()
    return value in ("", "0", "false", "no")


def sip_enabled() -> bool:
    """Whether the semi-join reducer should run (honours ``REPRO_NO_SIP``)."""
    value = os.environ.get(SIP_ENV_FLAG, "").strip().lower()
    return value in ("", "0", "false", "no")


def maybe_optimize(
    plan: PlanNode, database: PhysicalDatabase, enabled: bool | None = None
) -> PlanNode:
    """Optimize *plan* unless optimization is disabled (arg or env flag)."""
    if enabled is None:
        enabled = optimizer_enabled()
    return optimize(plan, database) if enabled else plan


def optimize(
    plan: PlanNode,
    database: PhysicalDatabase,
    statistics: Statistics | None = None,
    sip: bool | None = None,
) -> PlanNode:
    """Rewrite *plan* into an equivalent plan that executes faster.

    The output has exactly the same columns (names *and* order) and row set
    as the input on *database* — callers may substitute it blindly.  *sip*
    toggles the semi-join reducer (``None`` follows ``REPRO_NO_SIP``).
    """
    if sip is None:
        sip = sip_enabled()
    rewriter = _Rewriter(database, statistics or statistics_for(database))
    plan = rewriter.fold(plan)
    plan = rewriter.push_selections(plan)
    plan = rewriter.fold(plan)
    plan = rewriter.reorder_joins(plan)
    plan = rewriter.prune_columns(plan, None)
    plan = rewriter.fold(plan)
    if sip:
        plan = rewriter.pass_sideways(plan)
    return rewriter.intern(plan)


class _Rewriter:
    """One optimization run: passes share column resolution and statistics."""

    def __init__(self, database: PhysicalDatabase, statistics: Statistics) -> None:
        self.database = database
        self.statistics = statistics
        self._resolver = _ExecutionContext(database, use_indexes=False)
        self._fingerprints: dict[PlanNode, str | None] = {}

    def cols(self, plan: PlanNode) -> tuple[str, ...]:
        return self._resolver.columns(plan)

    def fingerprint(self, plan: PlanNode) -> str | None:
        if plan not in self._fingerprints:
            self._fingerprints[plan] = plan_fingerprint(plan)
        return self._fingerprints[plan]

    # Constant folding ---------------------------------------------------------

    def fold(self, plan: PlanNode) -> PlanNode:
        if isinstance(plan, Selection):
            source = self.fold(plan.source)
            if plan.condition is None:
                if not plan.bindings and not plan.equalities:
                    return source
                if isinstance(source, LiteralTable):
                    filtered = _filter_literal(source, plan.bindings, plan.equalities)
                    if filtered is not None:
                        return filtered
            if isinstance(source, LiteralTable) and not source.rows:
                return source
            return _rebuild(plan, Selection, source=source)
        if isinstance(plan, Projection):
            source = self.fold(plan.source)
            if isinstance(source, Projection):
                source = source.source  # collapse Project(Project(x))
            if plan.columns == self.cols(source):
                return source
            if isinstance(source, LiteralTable):
                indexes = [source.columns.index(column) for column in plan.columns]
                rows = frozenset(tuple(row[i] for i in indexes) for row in source.rows)
                return LiteralTable(plan.columns, rows)
            return _rebuild(plan, Projection, source=source)
        if isinstance(plan, RenameColumns):
            source = self.fold(plan.source)
            mapping = {old: new for old, new in plan.renaming if old != new}
            source_columns = self.cols(source)
            if not any(column in mapping for column in source_columns):
                return source
            renaming = tuple((old, new) for old, new in plan.renaming if old in source_columns and old != new)
            if isinstance(source, LiteralTable):
                columns = tuple(mapping.get(column, column) for column in source.columns)
                return LiteralTable(columns, source.rows)
            return RenameColumns(source, renaming)
        if isinstance(plan, (NaturalJoin, EquiJoin, CrossProduct)):
            left = self.fold(plan.left)
            right = self.fold(plan.right)
            columns = self.cols(_rebuild(plan, type(plan), left=left, right=right))
            for side in (left, right):
                if isinstance(side, LiteralTable) and not side.rows:
                    return LiteralTable(columns, frozenset())
            if _is_true_literal(left) and not isinstance(plan, EquiJoin):
                return right
            if _is_true_literal(right) and not isinstance(plan, EquiJoin):
                return left
            return _rebuild(plan, type(plan), left=left, right=right)
        if isinstance(plan, UnionAll):
            left = self.fold(plan.left)
            right = self.fold(plan.right)
            if left == right:
                return left
            if isinstance(right, LiteralTable) and not right.rows:
                return left
            if isinstance(left, LiteralTable) and not left.rows:
                aligned_columns = self.cols(left)
                if self.cols(right) == aligned_columns:
                    return right
                return Projection(right, aligned_columns)
            return UnionAll(left, right)
        if isinstance(plan, Difference):
            left = self.fold(plan.left)
            right = self.fold(plan.right)
            if left == right or (isinstance(left, LiteralTable) and not left.rows):
                return LiteralTable(self.cols(left), frozenset())
            if isinstance(right, LiteralTable) and not right.rows:
                return left
            return Difference(left, right)
        return plan

    # Selection pushdown -------------------------------------------------------

    def push_selections(self, plan: PlanNode) -> PlanNode:
        children = plan.children()
        if children:
            rebuilt = {name: self.push_selections(child) for name, child in _named_children(plan)}
            plan = _rebuild(plan, type(plan), **rebuilt)
        if isinstance(plan, Selection) and plan.condition is None:
            return self._push_one(plan)
        return plan

    def _push_one(self, selection: Selection) -> PlanNode:
        source = selection.source
        bindings = selection.bindings
        equalities = selection.equalities
        if not bindings and not equalities:
            return source
        referenced = selection.referenced_columns() or ()
        source_columns = set(self.cols(source))
        if any(column not in source_columns for column in referenced):
            # Invalid selection (references columns its input lacks): leave it
            # untouched so execution raises the same error the naive plan does.
            return selection

        if isinstance(source, Selection) and source.condition is None:
            merged = Selection(
                source.source,
                None,
                _merge_descriptions(source.description, selection.description),
                source.bindings + bindings,
                source.equalities + equalities,
            )
            return self._push_one(merged)

        if isinstance(source, Projection):
            pushed = self._push_one(
                Selection(source.source, None, selection.description, bindings, equalities)
            )
            return Projection(pushed, source.columns)

        if isinstance(source, RenameColumns):
            inverse = {new: old for old, new in source.renaming}
            renamed_bindings = tuple((inverse.get(column, column), value) for column, value in bindings)
            renamed_equalities = tuple(
                tuple(inverse.get(column, column) for column in group) for group in equalities
            )
            pushed = self._push_one(
                Selection(source.source, None, selection.description, renamed_bindings, renamed_equalities)
            )
            return RenameColumns(pushed, source.renaming)

        if isinstance(source, (UnionAll, Difference)):
            left = self._push_one(
                Selection(source.left, None, selection.description, bindings, equalities)
            )
            right = self._push_one(
                Selection(source.right, None, selection.description, bindings, equalities)
            )
            return type(source)(left, right)

        if isinstance(source, NaturalJoin):
            return self._push_into_join(source, bindings, equalities, selection.description)

        if isinstance(source, (CrossProduct, EquiJoin)):
            return self._push_into_product(source, bindings, equalities, selection.description)

        if isinstance(source, ScanRelation) and bindings:
            deduped = _dedupe_bindings(bindings)
            if deduped is _UNDECIDED:
                return selection
            if deduped is None:
                return LiteralTable(source.columns, frozenset())
            scan = IndexScan(source.relation, source.columns, deduped)
            if equalities:
                return Selection(scan, None, selection.description, (), equalities)
            return scan

        if isinstance(source, IndexScan) and bindings:
            deduped = _dedupe_bindings(source.bindings + bindings)
            if deduped is _UNDECIDED:
                return selection
            if deduped is None:
                return LiteralTable(source.columns, frozenset())
            scan = IndexScan(source.relation, source.columns, deduped)
            if equalities:
                return Selection(scan, None, selection.description, (), equalities)
            return scan

        if isinstance(source, ActiveDomain) and bindings:
            deduped = _dedupe_bindings(bindings)
            if deduped is _UNDECIDED or (
                deduped is not None and isinstance(deduped[0][1], Parameter)
            ):
                # Whether the bound value lies in the active domain is only
                # knowable after substitution: keep the runtime filter.
                return selection
            if deduped is None or deduped[0][1] not in self.database.active_domain():
                return LiteralTable((source.column,), frozenset())
            return LiteralTable((source.column,), frozenset({(deduped[0][1],)}))

        if isinstance(source, LiteralTable):
            filtered = _filter_literal(source, bindings, equalities)
            return selection if filtered is None else filtered

        return Selection(source, None, selection.description, bindings, equalities)

    def _push_into_join(self, join: NaturalJoin, bindings, equalities, description) -> PlanNode:
        left_columns = set(self.cols(join.left))
        right_columns = set(self.cols(join.right))
        left_bindings = tuple(item for item in bindings if item[0] in left_columns)
        right_bindings = tuple(item for item in bindings if item[0] in right_columns)
        left_groups, right_groups, residual_groups = [], [], []
        for group in equalities:
            if all(column in left_columns for column in group):
                left_groups.append(group)
            elif all(column in right_columns for column in group):
                right_groups.append(group)
            else:
                residual_groups.append(group)
        left = self._wrap(join.left, left_bindings, tuple(left_groups), description)
        right = self._wrap(join.right, right_bindings, tuple(right_groups), description)
        rebuilt: PlanNode = NaturalJoin(left, right)
        if residual_groups:
            rebuilt = Selection(rebuilt, None, description, (), tuple(residual_groups))
        return rebuilt

    def _push_into_product(self, product: CrossProduct | EquiJoin, bindings, equalities, description) -> PlanNode:
        left_columns = set(self.cols(product.left))
        right_columns = set(self.cols(product.right))
        left_bindings = tuple(item for item in bindings if item[0] in left_columns)
        right_bindings = tuple(item for item in bindings if item[0] in right_columns)
        pairs = list(product.pairs) if isinstance(product, EquiJoin) else []
        left_groups, right_groups, residual_groups = [], [], []
        for group in equalities:
            left_part = tuple(column for column in group if column in left_columns)
            right_part = tuple(column for column in group if column in right_columns)
            if left_part and right_part:
                # Split a cross-side group: enforce equality within each side,
                # then link the sides through one hash-join pair.
                if len(left_part) > 1:
                    left_groups.append(left_part)
                if len(right_part) > 1:
                    right_groups.append(right_part)
                pairs.append((left_part[0], right_part[0]))
            elif left_part:
                left_groups.append(group)
            elif right_part:
                right_groups.append(group)
            else:
                residual_groups.append(group)
        left = self._wrap(product.left, left_bindings, tuple(left_groups), description)
        right = self._wrap(product.right, right_bindings, tuple(right_groups), description)
        if pairs:
            rebuilt: PlanNode = EquiJoin(left, right, tuple(pairs))
        else:
            rebuilt = type(product)(left, right) if isinstance(product, CrossProduct) else EquiJoin(left, right, ())
        if residual_groups:
            rebuilt = Selection(rebuilt, None, description, (), tuple(residual_groups))
        return rebuilt

    def _wrap(self, plan: PlanNode, bindings, equalities, description) -> PlanNode:
        if not bindings and not equalities:
            return plan
        return self._push_one(Selection(plan, None, description, bindings, equalities))

    # Join reordering ----------------------------------------------------------

    def reorder_joins(self, plan: PlanNode) -> PlanNode:
        if isinstance(plan, NaturalJoin):
            leaves: list[PlanNode] = []
            _flatten_joins(plan, leaves)
            leaves = [self.reorder_joins(leaf) for leaf in leaves]
            original_columns = self.cols(plan)
            if len(leaves) < 3:
                rebuilt: PlanNode = leaves[0]
                for leaf in leaves[1:]:
                    rebuilt = NaturalJoin(rebuilt, leaf)
                return rebuilt
            ordered = self._greedy_order(leaves)
            rebuilt = ordered[0]
            for leaf in ordered[1:]:
                rebuilt = NaturalJoin(rebuilt, leaf)
            if self.cols(rebuilt) == original_columns:
                return rebuilt
            return Projection(rebuilt, original_columns)
        children = plan.children()
        if not children:
            return plan
        rebuilt_children = {name: self.reorder_joins(child) for name, child in _named_children(plan)}
        return _rebuild(plan, type(plan), **rebuilt_children)

    def _greedy_order(self, leaves: list[PlanNode]) -> list[PlanNode]:
        estimates = [self.estimate(leaf) for leaf in leaves]
        remaining = list(range(len(leaves)))
        start = min(remaining, key=lambda i: (estimates[i].rows, i))
        order = [start]
        remaining.remove(start)
        current = estimates[start]
        while remaining:
            connected = [
                i for i in remaining if set(estimates[i].distinct) & set(current.distinct)
            ]
            candidates = connected or remaining
            best = min(
                candidates,
                key=lambda i: (_join_estimate(current, estimates[i]).rows, i),
            )
            order.append(best)
            remaining.remove(best)
            current = _join_estimate(current, estimates[best])
        return [leaves[i] for i in order]

    # Cardinality estimation ---------------------------------------------------

    def estimate(self, plan: PlanNode) -> "_Estimate":
        """Estimated output size; actual observed cardinalities trump the model."""
        estimate = self._model_estimate(plan)
        if self.statistics.has_observations():
            observed = self.statistics.observed_rows(self.fingerprint(plan))
            if observed is not None:
                estimate = _Estimate(float(observed), dict(estimate.distinct)).clamped()
        return estimate

    def _model_estimate(self, plan: PlanNode) -> "_Estimate":
        columns = self.cols(plan)
        if isinstance(plan, ScanRelation):
            summary = self.statistics.relation(plan.relation)
            distinct = {column: float(summary.distinct[i]) for i, column in enumerate(columns)}
            return _Estimate(float(summary.rows), distinct)
        if isinstance(plan, IndexScan):
            summary = self.statistics.relation(plan.relation)
            rows = float(summary.rows)
            distinct = {column: float(summary.distinct[i]) for i, column in enumerate(columns)}
            for column, __ in plan.bindings:
                rows /= max(distinct.get(column, 1.0), 1.0)
                distinct[column] = 1.0
            return _Estimate(rows, distinct).clamped()
        if isinstance(plan, ActiveDomain):
            size = float(self.statistics.active_domain_size)
            return _Estimate(size, {plan.column: size})
        if isinstance(plan, LiteralTable):
            distinct = {
                column: float(len({row[i] for row in plan.rows}))
                for i, column in enumerate(plan.columns)
            }
            return _Estimate(float(len(plan.rows)), distinct)
        if isinstance(plan, Selection):
            inner = self.estimate(plan.source)
            rows = inner.rows
            distinct = dict(inner.distinct)
            if plan.condition is not None:
                rows *= _SELECTIVITY_OPAQUE
            else:
                for column, __ in plan.bindings:
                    rows /= max(distinct.get(column, 1.0), 1.0)
                    distinct[column] = 1.0
                for group in plan.equalities:
                    sizes = [distinct.get(column, 1.0) for column in group]
                    rows /= max(max(sizes), 1.0) ** (len(group) - 1)
            return _Estimate(rows, distinct).clamped()
        if isinstance(plan, Projection):
            inner = self.estimate(plan.source)
            distinct = {column: inner.distinct.get(column, inner.rows) for column in plan.columns}
            limit = 1.0
            for value in distinct.values():
                limit *= max(value, 1.0)
            return _Estimate(min(inner.rows, limit), distinct).clamped()
        if isinstance(plan, RenameColumns):
            inner = self.estimate(plan.source)
            mapping = dict(plan.renaming)
            distinct = {mapping.get(column, column): value for column, value in inner.distinct.items()}
            return _Estimate(inner.rows, distinct)
        if isinstance(plan, NaturalJoin):
            return _join_estimate(self.estimate(plan.left), self.estimate(plan.right))
        if isinstance(plan, EquiJoin):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            rows = left.rows * right.rows
            distinct = dict(left.distinct)
            distinct.update(right.distinct)
            for left_column, right_column in plan.pairs:
                left_d = left.distinct.get(left_column, 1.0)
                right_d = right.distinct.get(right_column, 1.0)
                rows /= max(left_d, right_d, 1.0)
                shared = min(left_d, right_d)
                distinct[left_column] = shared
                distinct[right_column] = shared
            return _Estimate(rows, distinct).clamped()
        if isinstance(plan, CrossProduct):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            distinct = dict(left.distinct)
            distinct.update(right.distinct)
            return _Estimate(left.rows * right.rows, distinct)
        if isinstance(plan, UnionAll):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            distinct = {
                column: left.distinct.get(column, 0.0) + right.distinct.get(column, 0.0)
                for column in set(left.distinct) | set(right.distinct)
            }
            return _Estimate(left.rows + right.rows, distinct)
        if isinstance(plan, Difference):
            return self.estimate(plan.left)
        if isinstance(plan, SemiJoin):
            source = self.estimate(plan.source)
            filtered = self.estimate(plan.filter)
            rows = source.rows
            for source_column, filter_column in plan.pairs:
                source_d = max(source.distinct.get(source_column, 1.0), 1.0)
                filter_d = max(filtered.distinct.get(filter_column, 1.0), 1.0)
                rows *= min(1.0, filter_d / source_d)
            return _Estimate(rows, dict(source.distinct)).clamped()
        if isinstance(plan, AntiJoin):
            return self.estimate(plan.source)
        return _Estimate(1.0, {column: 1.0 for column in columns})

    # Projection pushdown ------------------------------------------------------

    def prune_columns(self, plan: PlanNode, needed: frozenset[str] | None) -> PlanNode:
        """Drop columns no ancestor consumes.

        Returns a plan whose columns are the original ones restricted to
        *needed* (order preserved); ``None`` means every column is needed.
        The root is always called with ``None``, so pruning starts below the
        outermost :class:`Projection` nodes.  Nodes that must internally keep
        extra columns (join keys, both sides of a difference) are restricted
        back to *needed* afterwards, so the output contract always holds.
        """
        return self._restrict(self._prune(plan, needed), needed)

    def _restrict(self, plan: PlanNode, needed: frozenset[str] | None) -> PlanNode:
        if needed is None:
            return plan
        columns = self.cols(plan)
        if frozenset(columns) <= needed:
            return plan
        kept = tuple(column for column in columns if column in needed)
        if isinstance(plan, LiteralTable):
            indexes = [columns.index(column) for column in kept]
            return LiteralTable(kept, frozenset(tuple(row[i] for i in indexes) for row in plan.rows))
        return Projection(plan, kept)

    def _prune(self, plan: PlanNode, needed: frozenset[str] | None) -> PlanNode:
        if isinstance(plan, Projection):
            kept = tuple(
                column for column in plan.columns if needed is None or column in needed
            )
            source = self.prune_columns(plan.source, frozenset(kept))
            return Projection(source, kept)
        if isinstance(plan, Selection):
            referenced = plan.referenced_columns()
            if referenced is None or needed is None:
                child_needed = None
            else:
                child_needed = needed | frozenset(referenced)
            return _rebuild(plan, Selection, source=self.prune_columns(plan.source, child_needed))
        if isinstance(plan, RenameColumns):
            inverse = {new: old for old, new in plan.renaming}
            child_needed = None if needed is None else frozenset(inverse.get(c, c) for c in needed)
            source = self.prune_columns(plan.source, child_needed)
            surviving = set(self.cols(source))
            renaming = tuple((old, new) for old, new in plan.renaming if old in surviving)
            return RenameColumns(source, renaming)
        if isinstance(plan, NaturalJoin):
            left_columns = self.cols(plan.left)
            right_columns = self.cols(plan.right)
            shared = frozenset(left_columns) & frozenset(right_columns)
            left_needed = None if needed is None else (needed & frozenset(left_columns)) | shared
            right_needed = None if needed is None else (needed & frozenset(right_columns)) | shared
            return NaturalJoin(
                self.prune_columns(plan.left, left_needed),
                self.prune_columns(plan.right, right_needed),
            )
        if isinstance(plan, EquiJoin):
            left_columns = frozenset(self.cols(plan.left))
            right_columns = frozenset(self.cols(plan.right))
            pair_columns = frozenset(column for pair in plan.pairs for column in pair)
            left_needed = None if needed is None else ((needed | pair_columns) & left_columns)
            right_needed = None if needed is None else ((needed | pair_columns) & right_columns)
            return EquiJoin(
                self.prune_columns(plan.left, left_needed),
                self.prune_columns(plan.right, right_needed),
                plan.pairs,
            )
        if isinstance(plan, CrossProduct):
            left_columns = frozenset(self.cols(plan.left))
            right_columns = frozenset(self.cols(plan.right))
            left_needed = None if needed is None else needed & left_columns
            right_needed = None if needed is None else needed & right_columns
            return CrossProduct(
                self.prune_columns(plan.left, left_needed),
                self.prune_columns(plan.right, right_needed),
            )
        if isinstance(plan, UnionAll):
            return UnionAll(
                self.prune_columns(plan.left, needed),
                self.prune_columns(plan.right, needed),
            )
        if isinstance(plan, Difference):
            # Projection does not commute with set difference: both sides keep
            # their full width (the caller's _restrict projects afterwards).
            return Difference(
                self._prune(plan.left, None),
                self._prune(plan.right, None),
            )
        return plan

    # Sideways information passing (semi-join reduction) ------------------------

    def pass_sideways(self, plan: PlanNode) -> PlanNode:
        """Reduce expensive join/difference inputs by their siblings' key sets.

        For every two-input operator whose one side is estimated much smaller
        than the other, the large side is rewritten to a superset-free
        reduction: a :class:`SemiJoin` against the small side's key
        projection, pushed down to the underlying scans.  The filter subplan
        is (a projection of) the sibling itself, so after interning the
        executor's memo computes it exactly once per execution.  Every
        insertion preserves the final answer bit-for-bit: a semi-join only
        removes rows the enclosing operator would have dropped anyway.
        """
        children = _named_children(plan)
        if children:
            plan = _rebuild(
                plan, type(plan), **{name: self.pass_sideways(child) for name, child in children}
            )
        if isinstance(plan, NaturalJoin):
            shared = tuple(
                column for column in self.cols(plan.left) if column in self.cols(plan.right)
            )
            if shared:
                pairs = tuple((column, column) for column in shared)
                return self._reduce_sides(plan, pairs, pairs)
            return plan
        if isinstance(plan, EquiJoin) and plan.pairs:
            left_pairs = plan.pairs  # (left column, right column): reduce the left
            right_pairs = tuple((right, left) for left, right in plan.pairs)
            return self._reduce_sides(plan, left_pairs, right_pairs)
        if isinstance(plan, Difference):
            return self._reduce_difference(plan)
        return plan

    def _reduce_sides(
        self,
        join: NaturalJoin | EquiJoin,
        left_pairs: tuple[tuple[str, str], ...],
        right_pairs: tuple[tuple[str, str], ...],
    ) -> PlanNode:
        """Semi-join-reduce whichever join input dwarfs its sibling."""
        left_rows = self.estimate(join.left).rows
        right_rows = self.estimate(join.right).rows
        if right_rows >= _SIP_MIN_ROWS and right_rows >= _SIP_RATIO * max(left_rows, 1.0):
            reduced = self._reduce(join.right, join.left, right_pairs)
            return _rebuild(join, type(join), right=reduced)
        if left_rows >= _SIP_MIN_ROWS and left_rows >= _SIP_RATIO * max(right_rows, 1.0):
            reduced = self._reduce(join.left, join.right, left_pairs)
            return _rebuild(join, type(join), left=reduced)
        return join

    def _reduce_difference(self, difference: Difference) -> PlanNode:
        """``L - R == AntiJoin(L, R ⋉ L)``: only filter rows keyed like ``L`` matter.

        Worth it when the right side is expensive and the left is small (the
        usual shape once selections are pushed: a selective left minus a
        negated-subquery right).  A left that is the compiler's
        active-domain universe is skipped — its key set covers everything,
        so the reduction could not drop a single row.
        """
        left_rows = self.estimate(difference.left).rows
        right_rows = self.estimate(difference.right).rows
        if right_rows < _SIP_MIN_ROWS or right_rows < _SIP_RATIO * max(left_rows, 1.0):
            return difference
        if _is_universe(difference.left):
            return difference
        columns = self.cols(difference.left)
        pairs = tuple((column, column) for column in columns)
        reduced = self._reduce(difference.right, difference.left, pairs)
        if reduced == difference.right:
            # Structural equality, not identity: _push_semi rebuilds wrapper
            # nodes even when no SemiJoin landed anywhere beneath them.
            return difference
        return AntiJoin(difference.left, reduced, pairs)

    def _reduce(
        self,
        source: PlanNode,
        sibling: PlanNode,
        pairs: tuple[tuple[str, str], ...],
    ) -> PlanNode:
        """Reduce *source* by *sibling*'s keys; returns *source* when not worth it.

        ``pairs`` is ``(source column, sibling column)``.  The filter becomes
        a projection of the sibling onto its key columns, so the sibling
        subplan is shared with its original occurrence through the memo.
        """
        if not pairs:
            return source
        key_columns = tuple(dict.fromkeys(column for __, column in pairs))
        sibling_columns = self.cols(sibling)
        filter_plan = sibling if sibling_columns == key_columns else Projection(sibling, key_columns)
        return self._push_semi(source, filter_plan, pairs)

    def _push_semi(
        self,
        plan: PlanNode,
        filter_plan: PlanNode,
        pairs: tuple[tuple[str, str], ...],
    ) -> PlanNode:
        """Push a semi-join filter down *plan*; returns *plan* where pointless.

        Invariant: the result agrees with *plan* exactly on rows whose pair
        key occurs in the filter; rows it adds or drops all have keys outside
        the filter, and every caller sits under an operator that discards
        those rows anyway (the sibling join input, or the anti/semi-join key
        intersection).  That is what makes partial pushes — splitting pairs
        across join sides, leaving un-pushable branches untouched — sound.
        """
        if not pairs:
            return plan
        if isinstance(plan, Selection):
            return _rebuild(plan, Selection, source=self._push_semi(plan.source, filter_plan, pairs))
        if isinstance(plan, Projection):
            return Projection(self._push_semi(plan.source, filter_plan, pairs), plan.columns)
        if isinstance(plan, RenameColumns):
            inverse = {new: old for old, new in plan.renaming}
            mapped = tuple((inverse.get(column, column), key) for column, key in pairs)
            return RenameColumns(self._push_semi(plan.source, filter_plan, mapped), plan.renaming)
        if isinstance(plan, (NaturalJoin, EquiJoin, CrossProduct)):
            left_columns = set(self.cols(plan.left))
            right_columns = set(self.cols(plan.right))
            left_pairs = tuple(pair for pair in pairs if pair[0] in left_columns)
            right_pairs = tuple(
                pair for pair in pairs if pair[0] not in left_columns and pair[0] in right_columns
            )
            replacements = {}
            if left_pairs:
                replacements["left"] = self._push_semi(plan.left, filter_plan, left_pairs)
            if right_pairs:
                replacements["right"] = self._push_semi(plan.right, filter_plan, right_pairs)
            return _rebuild(plan, type(plan), **replacements) if replacements else plan
        if isinstance(plan, UnionAll):
            return UnionAll(
                self._push_semi(plan.left, filter_plan, pairs),
                self._push_semi(plan.right, filter_plan, pairs),
            )
        if isinstance(plan, Difference):
            # Both sides: rows of either side outside the filter's keys can
            # only affect result rows that are themselves outside those keys.
            return Difference(
                self._push_semi(plan.left, filter_plan, pairs),
                self._push_semi(plan.right, filter_plan, pairs),
            )
        if isinstance(plan, (SemiJoin, AntiJoin)):
            source = self._push_semi(plan.source, filter_plan, pairs)
            own = dict(plan.pairs)
            translated = tuple((own[column], key) for column, key in pairs if column in own)
            filtered = plan.filter
            if translated:
                filtered = self._push_semi(plan.filter, filter_plan, translated)
            return type(plan)(source, filtered, plan.pairs)
        if isinstance(plan, ScanRelation):
            return SemiJoin(plan, filter_plan, pairs)
        # IndexScan (already selective), literals, active domains: the filter
        # would cost more than the rows it could remove.
        return plan

    # Common-subplan interning -------------------------------------------------

    def intern(self, plan: PlanNode, pool: dict[PlanNode, PlanNode] | None = None) -> PlanNode:
        """Make structurally equal subtrees reference-identical.

        The executor's memo keys on structural equality either way; interning
        keeps deep duplicated trees from occupying memory twice and makes the
        sharing visible to inspection tools.
        """
        if pool is None:
            pool = {}
        children = _named_children(plan)
        if children:
            plan = _rebuild(
                plan, type(plan), **{name: self.intern(child, pool) for name, child in children}
            )
        existing = pool.get(plan)
        if existing is not None:
            return existing
        pool[plan] = plan
        return plan


class _Estimate:
    """Estimated output size of a plan: row count plus per-column distincts."""

    __slots__ = ("rows", "distinct")

    def __init__(self, rows: float, distinct: dict[str, float]) -> None:
        self.rows = max(rows, 0.0)
        self.distinct = distinct

    def clamped(self) -> "_Estimate":
        limit = max(self.rows, 1.0)
        self.distinct = {column: min(value, limit) for column, value in self.distinct.items()}
        return self


def _join_estimate(left: _Estimate, right: _Estimate) -> _Estimate:
    shared = set(left.distinct) & set(right.distinct)
    rows = left.rows * right.rows
    for column in shared:
        rows /= max(left.distinct[column], right.distinct[column], 1.0)
    distinct = dict(left.distinct)
    distinct.update(right.distinct)
    for column in shared:
        distinct[column] = min(left.distinct[column], right.distinct[column])
    return _Estimate(rows, distinct).clamped()


def _flatten_joins(plan: PlanNode, leaves: list[PlanNode]) -> None:
    if isinstance(plan, NaturalJoin):
        _flatten_joins(plan.left, leaves)
        _flatten_joins(plan.right, leaves)
    else:
        leaves.append(plan)


def _is_true_literal(plan: PlanNode) -> bool:
    return isinstance(plan, LiteralTable) and plan.columns == () and plan.rows == frozenset({()})


def _values_comparable(left: object, right: object) -> bool:
    """Whether ``left == right`` can be decided before parameter binding.

    Equal values (including the *same* parameter twice) compare equal under
    any binding; two non-parameters compare however they compare.  One
    parameter against anything else is undecidable until substitution.
    """
    if left == right:
        return True
    return not isinstance(left, Parameter) and not isinstance(right, Parameter)


def _filter_literal(literal: LiteralTable, bindings, equalities) -> LiteralTable | None:
    """Pre-apply a structured selection to a literal; ``None`` when undecidable.

    A comparison involving an unbound :class:`Parameter` placeholder has no
    truth value yet — folding it would bake one binding's outcome into every
    binding's plan — so the caller keeps the selection for execution time.
    """
    index = {column: i for i, column in enumerate(literal.columns)}
    for row in literal.rows:
        for column, value in bindings:
            if not _values_comparable(row[index[column]], value):
                return None
        for group in equalities:
            cells = [row[index[column]] for column in group]
            if any(not _values_comparable(cells[0], cell) for cell in cells[1:]):
                return None
    kept = frozenset(
        row
        for row in literal.rows
        if all(row[index[column]] == value for column, value in bindings)
        and all(len({row[index[column]] for column in group}) == 1 for group in equalities)
    )
    return LiteralTable(literal.columns, kept)


#: Sentinel: duplicate bindings whose agreement depends on a parameter value.
_UNDECIDED = object()


def _dedupe_bindings(bindings):
    """Merge duplicate column bindings.

    Returns the merged tuple, ``None`` for a provable contradiction (two
    different constants on one column), or :data:`_UNDECIDED` when the
    verdict depends on an unbound parameter — the caller then leaves the
    selection in place for execution after substitution.
    """
    merged: dict[str, object] = {}
    order: list[str] = []
    for column, value in bindings:
        if column in merged:
            if merged[column] != value:
                if not _values_comparable(merged[column], value):
                    return _UNDECIDED
                return None
        else:
            merged[column] = value
            order.append(column)
    return tuple((column, merged[column]) for column in order)


def _merge_descriptions(first: str, second: str) -> str:
    if first == second:
        return first
    return f"{first} & {second}"


def _named_children(plan: PlanNode) -> list[tuple[str, PlanNode]]:
    if isinstance(plan, (Selection, Projection, RenameColumns)):
        return [("source", plan.source)]
    if isinstance(plan, (NaturalJoin, EquiJoin, CrossProduct, UnionAll, Difference)):
        return [("left", plan.left), ("right", plan.right)]
    if isinstance(plan, (SemiJoin, AntiJoin)):
        return [("source", plan.source), ("filter", plan.filter)]
    return []


def _is_universe(plan: PlanNode) -> bool:
    """Whether *plan* is the compiler's active-domain universe (or a product of them)."""
    if isinstance(plan, ActiveDomain):
        return True
    if isinstance(plan, CrossProduct):
        return _is_universe(plan.left) and _is_universe(plan.right)
    return False


def _rebuild(plan: PlanNode, node_type, **replacements) -> PlanNode:
    """Copy *plan* with some fields replaced (no-op when nothing changed)."""
    fields = {name: getattr(plan, name) for name in plan.__dataclass_fields__}  # type: ignore[attr-defined]
    if all(fields[name] == value for name, value in replacements.items()):
        return plan
    fields.update(replacements)
    return node_type(**fields)


# Runtime cardinality feedback --------------------------------------------------


@dataclass(frozen=True)
class FeedbackOutcome:
    """What one execution's observations did to the database's statistics."""

    #: observations newly recorded into the statistics (fingerprintable nodes
    #: whose actual cardinality contradicted the model beyond the threshold).
    recorded: int
    #: observations examined (fingerprintable materialization points).
    examined: int

    @property
    def diverged(self) -> bool:
        """Whether the plan that produced these observations is now stale."""
        return self.recorded > 0


def apply_feedback(
    database: PhysicalDatabase,
    recorder: CardinalityRecorder,
    threshold: float = DEFAULT_FEEDBACK_THRESHOLD,
    statistics: Statistics | None = None,
) -> FeedbackOutcome:
    """Fold one execution's actual cardinalities into *database*'s statistics.

    Every materialization point the executor recorded is compared against the
    model's estimate; an actual that is off by at least *threshold* (in
    either direction) is stored under the subplan's content fingerprint, so
    the next optimization of any plan containing that subtree estimates it
    correctly.  Already-recorded fingerprints are refreshed silently and
    never re-reported — re-optimizing on every execution would thrash, and
    skipping known observations makes the feedback loop converge (each
    re-optimization can only add new fingerprints).
    """
    statistics = statistics or statistics_for(database)
    rewriter = _Rewriter(database, statistics)
    recorded = examined = 0
    for node, actual in recorder.observations.items():
        fingerprint = rewriter.fingerprint(node)
        if fingerprint is None:
            continue
        examined += 1
        if statistics.observed_rows(fingerprint) is not None:
            statistics.record_observed(fingerprint, actual)
            continue
        estimated = rewriter._model_estimate(node).rows
        larger = max(float(actual), estimated, 1.0)
        smaller = max(min(float(actual), estimated), 1.0)
        if larger / smaller >= threshold:
            statistics.record_observed(fingerprint, actual)
            recorded += 1
    return FeedbackOutcome(recorded=recorded, examined=examined)


def plan_cost(plan: PlanNode, database: PhysicalDatabase, statistics: Statistics | None = None) -> float:
    """A scalar cost for *plan*: total estimated rows flowing through it.

    Each distinct subtree is charged once (the executor's memo computes
    shared subplans once), with a small per-node constant so empty plans are
    not free.  Used by the engine dispatcher to weigh the algebra route
    against Tarskian enumeration — relative magnitude is all that matters.
    """
    rewriter = _Rewriter(database, statistics or statistics_for(database))
    seen: set[int] = set()
    total = 0.0
    pending = [plan]
    while pending:
        node = pending.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        total += 1.0 + rewriter.estimate(node).rows
        pending.extend(node.children())
    return total
"""Per-database cardinality statistics for the plan optimizer.

The optimizer's join ordering and index decisions need cheap, reasonably
accurate cardinality estimates.  A :class:`Statistics` object summarizes one
:class:`~repro.physical.database.PhysicalDatabase`: per-relation row counts,
per-column distinct-value counts, and domain sizes.  It is computed lazily,
once per database instance, and cached on the instance — sound because
physical databases are immutable (the same contract ``fingerprint()`` and
``active_domain()`` rely on).

Lazy relations (the virtual ``NE`` of Section 5) are *not* iterated to count
distinct values: their ``len()`` is cheap but enumeration can be quadratic,
so their per-column distinct counts are approximated from the domain size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.physical.database import PhysicalDatabase
from repro.physical.relation import Relation

__all__ = ["RelationStatistics", "Statistics", "statistics_for"]


@dataclass(frozen=True)
class RelationStatistics:
    """Summary of one stored relation: row count and per-column distincts."""

    name: str
    arity: int
    rows: int
    #: distinct values per column position; ``estimated`` marks lazy relations
    #: whose columns were approximated rather than counted.
    distinct: tuple[int, ...]
    estimated: bool = False


class Statistics:
    """Cardinality summary of one immutable physical database."""

    def __init__(self, database: PhysicalDatabase) -> None:
        self._database = database
        self._relations: dict[str, RelationStatistics] = {}
        self.domain_size = len(database.domain)
        self.active_domain_size = len(database.active_domain())

    def relation(self, name: str) -> RelationStatistics:
        """Statistics for one relation (computed on first request)."""
        cached = self._relations.get(name)
        if cached is None:
            cached = self._summarize(name)
            self._relations[name] = cached
        return cached

    def row_count(self, name: str) -> int:
        return self.relation(name).rows

    def distinct(self, name: str, position: int) -> int:
        """Distinct values in one column (>= 1 whenever the relation is nonempty)."""
        summary = self.relation(name)
        if not 0 <= position < summary.arity:
            raise IndexError(f"column {position} out of range for {name!r} (arity {summary.arity})")
        return summary.distinct[position]

    def _summarize(self, name: str) -> RelationStatistics:
        relation = self._database.relation(name)
        arity = self._database.vocabulary.arity(name)
        rows = len(relation)
        if isinstance(relation, Relation):
            distinct = tuple(len(relation.column_values(position)) for position in range(arity))
            return RelationStatistics(name, arity, rows, distinct)
        # Lazy relation: approximate each column as densely populated rather
        # than enumerate a possibly quadratic extension.
        approx = min(rows, self.active_domain_size) if rows else 0
        return RelationStatistics(name, arity, rows, (approx,) * arity, estimated=True)

    def as_dict(self) -> Mapping[str, object]:
        """Summary of everything computed so far (for reports and debugging)."""
        return {
            "domain_size": self.domain_size,
            "active_domain_size": self.active_domain_size,
            "relations": {
                name: {"rows": summary.rows, "distinct": list(summary.distinct)}
                for name, summary in sorted(self._relations.items())
            },
        }


def statistics_for(database: PhysicalDatabase) -> Statistics:
    """The (lazily built, instance-cached) statistics of *database*.

    Uses the same ``object.__setattr__`` caching idiom as
    ``PhysicalDatabase.fingerprint`` — valid because instances never mutate.
    """
    cached = database.__dict__.get("_statistics")
    if cached is None:
        cached = Statistics(database)
        object.__setattr__(database, "_statistics", cached)
    return cached

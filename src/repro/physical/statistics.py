"""Per-database cardinality statistics for the plan optimizer.

The optimizer's join ordering and index decisions need cheap, reasonably
accurate cardinality estimates.  A :class:`Statistics` object summarizes one
:class:`~repro.physical.database.PhysicalDatabase`: per-relation row counts,
per-column distinct-value counts, and domain sizes.  It is computed lazily,
once per database instance, and cached on the instance — sound because
physical databases are immutable (the same contract ``fingerprint()`` and
``active_domain()`` rely on).

Lazy relations (the virtual ``NE`` of Section 5) are *not* iterated to count
distinct values: their ``len()`` is cheap but enumeration can be quadratic,
so their per-column distinct counts are approximated from the domain size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.physical.database import PhysicalDatabase
from repro.physical.relation import Relation

__all__ = [
    "MAX_OBSERVATIONS",
    "RelationStatistics",
    "Statistics",
    "CardinalityRecorder",
    "bounded_insert",
    "statistics_for",
    "statistics_payload",
    "preload_statistics",
]


def bounded_insert(mapping: dict, key, value, capacity: int) -> None:
    """Insert into a bounded dict: newest entries last, evict from the head.

    The one bounded-map idiom every feedback-adjacent store shares (observed
    cardinalities, the service's convergence markers, the snapshot store's
    persisted merge) so the eviction semantics cannot drift between them.
    Head-first eviction is oldest-first only as far as the dict's order
    encodes age — a map rebuilt from a sorted JSON file starts alphabetical,
    so eviction there is approximate; the entries being inserted *now* are
    always the last to go.
    """
    mapping.pop(key, None)
    while len(mapping) >= capacity:
        del mapping[next(iter(mapping))]
    mapping[key] = value

#: Cap on stored observed-cardinality fingerprints per database instance (and
#: per persisted payload): a high-diversity query stream keeps learning new
#: subplans forever, and an unbounded map would creep across deploy cycles.
#: Oldest-first eviction; a dropped observation costs one re-learning round.
MAX_OBSERVATIONS = 4096


@dataclass(frozen=True)
class RelationStatistics:
    """Summary of one stored relation: row count and per-column distincts."""

    name: str
    arity: int
    rows: int
    #: distinct values per column position; ``estimated`` marks lazy relations
    #: whose columns were approximated rather than counted.
    distinct: tuple[int, ...]
    estimated: bool = False


class Statistics:
    """Cardinality summary of one immutable physical database.

    ``active_domain_size`` may be supplied by a caller that already knows it
    (a persisted payload); computing it otherwise iterates every stored
    tuple, which is exactly the scan warm boots are trying to avoid.
    """

    def __init__(self, database: PhysicalDatabase, active_domain_size: int | None = None) -> None:
        self._database = database
        self._relations: dict[str, RelationStatistics] = {}
        #: observed subplan cardinalities keyed by plan fingerprint — runtime
        #: feedback recorded by the executor, consulted by the optimizer's
        #: estimator, and round-tripped through the persisted payload.
        self._observed: dict[str, int] = {}
        #: bumped on every new observation; lets callers order "was this plan
        #: optimized before or after that feedback?" without comparing plans.
        self.generation = 0
        self.domain_size = len(database.domain)
        if active_domain_size is None:
            active_domain_size = len(database.active_domain())
        self.active_domain_size = active_domain_size

    def relation(self, name: str) -> RelationStatistics:
        """Statistics for one relation (computed on first request)."""
        cached = self._relations.get(name)
        if cached is None:
            cached = self._summarize(name)
            self._relations[name] = cached
        return cached

    def row_count(self, name: str) -> int:
        return self.relation(name).rows

    def distinct(self, name: str, position: int) -> int:
        """Distinct values in one column (>= 1 whenever the relation is nonempty)."""
        summary = self.relation(name)
        if not 0 <= position < summary.arity:
            raise IndexError(f"column {position} out of range for {name!r} (arity {summary.arity})")
        return summary.distinct[position]

    # Runtime feedback ----------------------------------------------------------

    def has_observations(self) -> bool:
        return bool(self._observed)

    def observed_rows(self, fingerprint: str | None) -> int | None:
        """The recorded actual row count of a subplan, if one was observed."""
        if fingerprint is None:
            return None
        return self._observed.get(fingerprint)

    def record_observed(self, fingerprint: str, rows: int) -> None:
        """Remember a subplan's actual cardinality for future optimizations.

        The generation only moves when an observation actually changes —
        refreshing a known fingerprint with the same value must not expire
        anyone's convergence marker, or steady state would never arrive.
        """
        rows = int(rows)
        if self._observed.get(fingerprint) != rows:
            bounded_insert(self._observed, fingerprint, rows, MAX_OBSERVATIONS)
            self.generation += 1

    @property
    def observed(self) -> Mapping[str, int]:
        """Read-only view of every recorded observation (for persistence)."""
        return dict(self._observed)

    def _summarize(self, name: str) -> RelationStatistics:
        relation = self._database.relation(name)
        arity = self._database.vocabulary.arity(name)
        rows = len(relation)
        if isinstance(relation, Relation):
            distinct = tuple(len(relation.column_values(position)) for position in range(arity))
            return RelationStatistics(name, arity, rows, distinct)
        # Lazy relation: approximate each column as densely populated rather
        # than enumerate a possibly quadratic extension.
        approx = min(rows, self.active_domain_size) if rows else 0
        return RelationStatistics(name, arity, rows, (approx,) * arity, estimated=True)

    def as_dict(self) -> Mapping[str, object]:
        """Summary of everything computed so far (for reports and debugging)."""
        return {
            "domain_size": self.domain_size,
            "active_domain_size": self.active_domain_size,
            "relations": {
                name: {"rows": summary.rows, "distinct": list(summary.distinct)}
                for name, summary in sorted(self._relations.items())
            },
        }


class CardinalityRecorder:
    """Collects actual subplan row counts during one plan execution.

    The executor calls :meth:`record` at every materialization point (see
    :func:`repro.physical.algebra.execute`).  The same node can be recorded
    more than once with different granularities (a build side counts raw
    streamed rows, the memo counts distinct ones); the larger value wins —
    overestimating an intermediate is the conservative direction for the
    optimizer that will consume it.
    """

    __slots__ = ("observations",)

    def __init__(self) -> None:
        self.observations: dict[object, int] = {}

    def record(self, node: object, rows: int) -> None:
        previous = self.observations.get(node)
        if previous is None or rows > previous:
            self.observations[node] = rows


def statistics_for(database: PhysicalDatabase) -> Statistics:
    """The (lazily built, instance-cached) statistics of *database*.

    Uses the same ``object.__setattr__`` caching idiom as
    ``PhysicalDatabase.fingerprint`` — valid because instances never mutate.
    """
    cached = database.__dict__.get("_statistics")
    if cached is None:
        cached = Statistics(database)
        object.__setattr__(database, "_statistics", cached)
    return cached


# Persistence ------------------------------------------------------------------
#
# The snapshot store (:mod:`repro.cluster.store`) saves the full statistics of
# a snapshot's ``Ph2`` storage next to the data, so a freshly booted worker
# seeds its optimizer with real cardinalities instead of rescanning every
# relation on its first plans.  The payload is plain JSON-compatible data.


def statistics_payload(database: PhysicalDatabase) -> dict:
    """Force statistics for every relation and return them as a JSON payload.

    The inverse of :func:`preload_statistics`: the payload round-trips through
    JSON and, applied to an equal database, reproduces exactly the statistics
    a cold scan would compute.
    """
    statistics = statistics_for(database)
    relations = {}
    for name in sorted(database.vocabulary.predicates):
        summary = statistics.relation(name)
        relations[name] = {
            "arity": summary.arity,
            "rows": summary.rows,
            "distinct": list(summary.distinct),
            "estimated": summary.estimated,
        }
    payload: dict = {
        "domain_size": statistics.domain_size,
        "active_domain_size": statistics.active_domain_size,
        "relations": relations,
    }
    if statistics._observed:
        payload["observed"] = dict(statistics._observed)
    return payload


def preload_statistics(database: PhysicalDatabase, payload: Mapping[str, object]) -> Statistics:
    """Seed *database*'s statistics cache from a persisted payload.

    The validation here is *schema-level* only: relations missing from the
    vocabulary, arity mismatches and malformed entries are ignored (worst
    case: a lazy recount).  It cannot detect a payload measured on
    *different contents* of the same schema — the caller owns that guarantee
    (the snapshot store does, by fingerprint-verifying the data the payload
    was stored beside before handing either out).  Summaries already
    computed on this instance are never overwritten.

    When no statistics exist on the instance yet, the payload's
    ``active_domain_size`` seeds the summary directly, sparing the boot-time
    every-tuple scan that computing it fresh would cost.
    """
    statistics = database.__dict__.get("_statistics")
    if statistics is None:
        persisted_size = payload.get("active_domain_size")
        statistics = Statistics(
            database,
            active_domain_size=persisted_size if isinstance(persisted_size, int) else None,
        )
        object.__setattr__(database, "_statistics", statistics)
    observed = payload.get("observed", {})
    if isinstance(observed, Mapping):
        for fingerprint, rows in observed.items():
            if len(statistics._observed) >= MAX_OBSERVATIONS:
                break
            if isinstance(fingerprint, str) and isinstance(rows, int) and rows >= 0:
                # Locally learned observations win over persisted ones: they
                # were measured on this very instance.
                statistics._observed.setdefault(fingerprint, rows)
    relations = payload.get("relations", {})
    if not isinstance(relations, Mapping):
        return statistics
    for name, entry in relations.items():
        if name in statistics._relations or not isinstance(entry, Mapping):
            continue
        if database.vocabulary.predicates.get(name) != entry.get("arity"):
            continue
        try:
            summary = RelationStatistics(
                name=name,
                arity=int(entry["arity"]),
                rows=int(entry["rows"]),
                distinct=tuple(int(value) for value in entry["distinct"]),
                estimated=bool(entry.get("estimated", False)),
            )
        except (KeyError, TypeError, ValueError):
            continue
        if len(summary.distinct) != summary.arity:
            continue
        statistics._relations[name] = summary
    return statistics

"""Compilation of first-order queries into relational-algebra plans.

Section 5 of the paper ends by noting that the approximation scheme "can be
practically implemented on the top of existing database management systems":
the rewritten query ``Q-hat`` is evaluated over the stored database
``Ph2(LB)`` by an ordinary relational engine.  This compiler provides that
second evaluation path, next to the direct Tarskian evaluator, using the
classical *active-domain* translation of the relational calculus into the
relational algebra:

* every variable ranges over the active domain (the values stored in some
  relation or assigned to some constant);
* conjunction becomes a natural join, disjunction a union (after padding the
  operands to a common column set), negation a set difference against the
  active-domain product, and existential quantification a projection.

For the databases this library builds from logical databases (``Ph1``/``Ph2``)
the active domain equals the whole domain, so the compiled plan computes
exactly the Tarskian answer; the ablation experiment E12 checks this
agreement and compares run times.

Extension atoms (the ``alpha_P`` atoms of Lemma 10) are materialized into
literal tables at compile time by enumerating active-domain tuples — a
polynomial step, mirroring Theorem 14's observation that satisfaction of
``alpha_P`` is checkable in polynomial time.
"""

from __future__ import annotations

from itertools import product

from repro.errors import UnboundParameterError, UnsupportedFormulaError
from repro.logic.analysis import free_variables, is_first_order
from repro.logic.formulas import (
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ExtensionAtom,
    Forall,
    Formula,
    Not,
    Or,
    Top,
)
from repro.logic.queries import Query
from repro.logic.terms import Constant, Parameter, Variable
from repro.logic.transform import eliminate_implications, standardize_apart
from repro.physical.algebra import execute
from repro.physical.database import PhysicalDatabase
from repro.physical.optimizer import maybe_optimize
from repro.physical.plan import (
    ActiveDomain,
    CrossProduct,
    Difference,
    LiteralTable,
    NaturalJoin,
    PlanNode,
    Projection,
    RenameColumns,
    ScanRelation,
    Selection,
    Table,
)

__all__ = ["compile_query", "compile_formula", "evaluate_query_algebra"]

_TRUE_TABLE = LiteralTable((), frozenset({()}))
_FALSE_TABLE = LiteralTable((), frozenset())


def evaluate_query_algebra(
    database: PhysicalDatabase,
    query: Query,
    optimize: bool | None = None,
    use_indexes: bool = True,
) -> frozenset[tuple]:
    """Evaluate *query* by compiling it to algebra and executing the plan.

    The compiled plan is rewritten by :mod:`repro.physical.optimizer` unless
    *optimize* is ``False`` (or ``None`` with the ``REPRO_NO_OPTIMIZER``
    environment flag set); answers are identical either way.
    """
    plan = compile_query(query, database)
    plan = maybe_optimize(plan, database, optimize)
    return execute(plan, database, use_indexes=use_indexes).rows


def compile_query(query: Query, database: PhysicalDatabase) -> PlanNode:
    """Compile a first-order query into a plan whose columns follow the head order."""
    plan, columns = compile_formula(query.formula, database)
    head_names = tuple(variable.name for variable in query.head)
    for name in head_names:
        if name not in columns:
            plan = CrossProduct(plan, ActiveDomain(name)) if columns else _pad_empty(plan, name)
            columns = columns + (name,)
    return Projection(plan, head_names)


def _pad_empty(plan: PlanNode, column: str) -> PlanNode:
    """Extend a 0-column plan with an active-domain column."""
    return CrossProduct(plan, ActiveDomain(column))


def compile_formula(formula: Formula, database: PhysicalDatabase) -> tuple[PlanNode, tuple[str, ...]]:
    """Compile *formula*; returns the plan and its output columns (free variables).

    The formula must be first-order.  Implications are eliminated and bound
    variables standardized apart before translation so column names never
    collide across quantifier scopes.
    """
    if not is_first_order(formula):
        raise UnsupportedFormulaError("the algebra compiler only supports first-order formulas")
    avoid = {variable.name for variable in free_variables(formula)}
    prepared = standardize_apart(eliminate_implications(formula), avoid)
    return _compile(prepared, database)


def _compile(formula: Formula, database: PhysicalDatabase) -> tuple[PlanNode, tuple[str, ...]]:
    if isinstance(formula, Top):
        return _TRUE_TABLE, ()
    if isinstance(formula, Bottom):
        return _FALSE_TABLE, ()
    if isinstance(formula, ExtensionAtom):
        return _compile_extension_atom(formula, database)
    if isinstance(formula, Atom):
        return _compile_atom(formula, database)
    if isinstance(formula, Equals):
        return _compile_equality(formula, database)
    if isinstance(formula, Not):
        return _compile_negation(formula, database)
    if isinstance(formula, And):
        plan, columns = _compile(formula.operands[0], database)
        for operand in formula.operands[1:]:
            other_plan, other_columns = _compile(operand, database)
            plan = NaturalJoin(plan, other_plan)
            columns = columns + tuple(c for c in other_columns if c not in columns)
        return plan, columns
    if isinstance(formula, Or):
        compiled = [_compile(operand, database) for operand in formula.operands]
        all_columns: tuple[str, ...] = ()
        for __, columns in compiled:
            all_columns = all_columns + tuple(c for c in columns if c not in all_columns)
        padded = [_pad_to(plan, columns, all_columns) for plan, columns in compiled]
        plan = padded[0]
        from repro.physical.plan import UnionAll

        for other in padded[1:]:
            plan = UnionAll(plan, other)
        return plan, all_columns
    if isinstance(formula, Exists):
        body_plan, body_columns = _compile(formula.body, database)
        bound = {variable.name for variable in formula.variables}
        remaining = tuple(column for column in body_columns if column not in bound)
        return Projection(body_plan, remaining), remaining
    if isinstance(formula, Forall):
        # forall x. phi  ==  not exists x. not phi
        rewritten = Not(Exists(formula.variables, Not(formula.body)))
        return _compile(rewritten, database)
    raise UnsupportedFormulaError(f"cannot compile formula node {type(formula).__name__}")


def _compile_atom(atom: Atom, database: PhysicalDatabase) -> tuple[PlanNode, tuple[str, ...]]:
    raw_columns = tuple(f"__col{i}" for i in range(len(atom.args)))
    plan: PlanNode = ScanRelation(atom.predicate, raw_columns)

    conditions: list[tuple[str, object]] = []
    variable_columns: dict[str, list[str]] = {}
    for column, term in zip(raw_columns, atom.args):
        if isinstance(term, Parameter):
            # The parameter itself is the binding value: a placeholder that
            # substitute_plan_parameters swaps for the bound constant's value.
            # It can never accidentally match stored data (distinct type).
            conditions.append((column, term))
        elif isinstance(term, Constant):
            conditions.append((column, database.constant_value(term.name)))
        else:
            variable_columns.setdefault(term.name, []).append(column)

    if conditions:
        plan = Selection(
            plan,
            None,
            description=" & ".join(f"{column}={value!r}" for column, value in conditions),
            bindings=tuple(conditions),
        )
    repeated = {name: cols for name, cols in variable_columns.items() if len(cols) > 1}
    if repeated:
        plan = Selection(
            plan,
            None,
            description="repeated-variable equality",
            equalities=tuple(tuple(columns) for columns in repeated.values()),
        )

    renaming = tuple((columns[0], name) for name, columns in variable_columns.items())
    output = tuple(name for name in variable_columns)
    keep = tuple(columns[0] for columns in variable_columns.values())
    plan = Projection(plan, keep)
    if renaming:
        plan = RenameColumns(plan, renaming)
    return plan, output


def _compile_extension_atom(atom: ExtensionAtom, database: PhysicalDatabase) -> tuple[PlanNode, tuple[str, ...]]:
    """Materialize an extension atom over the active domain into a literal table."""
    parameters = sorted(term.name for term in atom.args if isinstance(term, Parameter))
    if parameters:
        # Materialization evaluates holds() per tuple *now*; a placeholder
        # has no value to evaluate with, and the result could not be fixed
        # up by substitution later.  Prepared queries catch this and fall
        # back to binding at the AST level before compiling.
        raise UnboundParameterError(
            "cannot compile an extension atom with unbound parameter(s) "
            + ", ".join(f"${name}" for name in parameters)
        )
    adom = sorted(database.active_domain(), key=repr)
    variables: list[str] = []
    for term in atom.args:
        if isinstance(term, Variable) and term.name not in variables:
            variables.append(term.name)
    rows = set()
    for values in product(adom, repeat=len(variables)):
        assignment = dict(zip(variables, values))
        arg_values = []
        for term in atom.args:
            if isinstance(term, Constant):
                arg_values.append(database.constant_value(term.name))
            else:
                arg_values.append(assignment[term.name])
        if atom.holds(database, tuple(arg_values)):
            rows.add(values)
    return LiteralTable(tuple(variables), frozenset(rows)), tuple(variables)


def _constant_plan_value(term: Constant, database: PhysicalDatabase) -> object:
    """The plan-level value of a constant term: parameters stay placeholders."""
    if isinstance(term, Parameter):
        return term
    return database.constant_value(term.name)


def _compile_equality(formula: Equals, database: PhysicalDatabase) -> tuple[PlanNode, tuple[str, ...]]:
    left, right = formula.left, formula.right
    if isinstance(left, Constant) and isinstance(right, Constant):
        left_value = _constant_plan_value(left, database)
        right_value = _constant_plan_value(right, database)
        if isinstance(left_value, Parameter) or isinstance(right_value, Parameter):
            if left_value == right_value:
                # The same parameter on both sides is equal under any binding.
                return _TRUE_TABLE, ()
            # The outcome depends on the binding: compile a 0-column plan
            # whose selection is decided after parameter substitution.  The
            # optimizer's folding passes deliberately refuse to pre-evaluate
            # comparisons that involve a Parameter value.
            plan = Projection(
                Selection(
                    LiteralTable(("__peq",), frozenset({(left_value,)})),
                    None,
                    description=f"{left} = {right}",
                    bindings=(("__peq", right_value),),
                ),
                (),
            )
            return plan, ()
        return (_TRUE_TABLE if left_value == right_value else _FALSE_TABLE), ()
    if isinstance(left, Constant) or isinstance(right, Constant):
        constant = left if isinstance(left, Constant) else right
        variable = right if isinstance(left, Constant) else left
        assert isinstance(variable, Variable)
        value = _constant_plan_value(constant, database)
        return LiteralTable((variable.name,), frozenset({(value,)})), (variable.name,)
    assert isinstance(left, Variable) and isinstance(right, Variable)
    if left.name == right.name:
        return ActiveDomain(left.name), (left.name,)
    pairs = CrossProduct(ActiveDomain(left.name), ActiveDomain(right.name))
    plan = Selection(
        pairs,
        None,
        description=f"{left.name} = {right.name}",
        equalities=((left.name, right.name),),
    )
    return plan, (left.name, right.name)


def _compile_negation(formula: Not, database: PhysicalDatabase) -> tuple[PlanNode, tuple[str, ...]]:
    inner_plan, columns = _compile(formula.operand, database)
    if not columns:
        return Difference(_TRUE_TABLE, inner_plan), ()
    universe: PlanNode = ActiveDomain(columns[0])
    for column in columns[1:]:
        universe = CrossProduct(universe, ActiveDomain(column))
    return Difference(universe, inner_plan), columns


def _pad_to(plan: PlanNode, columns: tuple[str, ...], target: tuple[str, ...]) -> PlanNode:
    """Extend *plan* with active-domain columns so it covers *target*."""
    current = columns
    for column in target:
        if column not in current:
            plan = CrossProduct(plan, ActiveDomain(column))
            current = current + (column,)
    if current != target:
        plan = Projection(plan, target)
    return plan

"""Lazily built hash indexes over the stored relations of a physical database.

The executor uses these for two access paths:

* **index scans** — an :class:`~repro.physical.plan.IndexScan` node (produced
  by the optimizer from a constant-binding selection over a scan) probes a
  key-prefix index instead of filtering a full scan;
* **indexed joins** — a :class:`~repro.physical.plan.NaturalJoin` whose build
  side is a bare relation scan reuses the stored prefix index as its hash
  table instead of rebuilding one per execution.

Indexes are built on demand per ``(relation, column positions)`` request and
cached on the database instance with the same ``object.__setattr__`` idiom as
``PhysicalDatabase.fingerprint`` — databases are immutable, so an index can
never go stale, and content-addressed cache keys elsewhere (fingerprints)
remain the sole invalidation mechanism.  Lazy relations (the virtual ``NE``
encoding) are deliberately *not* indexed: materializing them defeats their
purpose, so lookups against them fall back to scanning, exactly as before.

Index construction is thread-safe: the serving layer executes plans against
one shared database from many threads, so a per-database lock guards the
build; probing built indexes is lock-free (plain dict reads of immutable
values).
"""

from __future__ import annotations

import threading
from typing import Mapping, Sequence

from repro.physical.database import PhysicalDatabase
from repro.physical.relation import Relation

__all__ = ["DatabaseIndexes", "indexes_for"]

_EMPTY: tuple[tuple, ...] = ()


class DatabaseIndexes:
    """Hash indexes (value tuple -> matching rows) for one immutable database."""

    def __init__(self, database: PhysicalDatabase) -> None:
        self._database = database
        self._prefix: dict[tuple[str, tuple[int, ...]], Mapping[tuple, tuple[tuple, ...]]] = {}
        self._scalar: dict[tuple[str, int], Mapping[object, tuple[tuple, ...]]] = {}
        self._scalar_columns: dict[tuple[str, int], Mapping[object, tuple[tuple, ...]]] = {}
        self._columnar: dict[tuple[str, tuple[int, ...]], tuple] = {}
        self._distinct: dict[tuple[str, int], frozenset] = {}
        self._lock = threading.Lock()
        self.built = 0  # number of distinct indexes constructed (observability)

    def prefix(self, relation: str, positions: tuple[int, ...]) -> Mapping[tuple, tuple[tuple, ...]] | None:
        """Index of *relation* on the given column positions, or ``None``.

        Returns ``None`` for lazy relations (no index is built for them) and
        for empty position tuples.  The returned mapping sends each key tuple
        — the row's values at ``positions``, in that order — to the tuple of
        full rows carrying it.
        """
        if not positions:
            return None
        stored = self._database.relation(relation)
        if not isinstance(stored, Relation):
            return None
        key = (relation, positions)
        index = self._prefix.get(key)
        if index is None:
            with self._lock:
                index = self._prefix.get(key)
                if index is None:
                    buckets: dict[tuple, list[tuple]] = {}
                    for row in stored.tuples:
                        buckets.setdefault(tuple(row[i] for i in positions), []).append(row)
                    index = {value: tuple(rows) for value, rows in buckets.items()}
                    self._prefix[key] = index
                    self.built += 1
        return index

    def column(self, relation: str, position: int) -> Mapping[tuple, tuple[tuple, ...]] | None:
        """Single-column convenience wrapper around :meth:`prefix`."""
        return self.prefix(relation, (position,))

    def scalar(self, relation: str, position: int) -> Mapping[object, tuple[tuple, ...]] | None:
        """Single-column index keyed by the bare value instead of a 1-tuple.

        A re-keyed view of ``prefix(relation, (position,))`` (same buckets,
        same rows), cached alongside it.  The vectorized executor probes this
        on single-column joins: bare string keys hash from their cached hash,
        where 1-tuple keys re-combine it on every lookup, and the probe side
        never has to build key tuples at all.
        """
        index = self.prefix(relation, (position,))
        if index is None:
            return None
        key = (relation, position)
        view = self._scalar.get(key)
        if view is None:
            with self._lock:
                view = self._scalar.get(key)
                if view is None:
                    view = {value: rows for (value,), rows in index.items()}
                    self._scalar[key] = view
        return view

    def scalar_columns(self, relation: str, position: int) -> Mapping[object, tuple[tuple, ...]] | None:
        """Scalar index with each bucket pre-transposed to column tuples.

        Maps the bare key value to ``(col0_values, col1_values, ...)`` of the
        matching rows.  The vectorized executor's indexed semi-join probe
        concatenates these buckets columnwise, so no row tuple is ever built
        or re-transposed on the probe path.
        """
        base = self.scalar(relation, position)
        if base is None:
            return None
        key = (relation, position)
        view = self._scalar_columns.get(key)
        if view is None:
            with self._lock:
                view = self._scalar_columns.get(key)
                if view is None:
                    view = {value: tuple(zip(*rows)) for value, rows in base.items()}
                    self._scalar_columns[key] = view
        return view

    def columnar(
        self, relation: str, positions: tuple[int, ...]
    ) -> tuple[Mapping, tuple[tuple, ...], bool] | None:
        """``(buckets, columns, unique)`` join image of *relation*, or ``None``.

        ``columns`` is the full relation transposed (one value tuple per
        column, rows in the deterministic sorted-by-repr order); ``buckets``
        maps each key — a bare value for single-column *positions*, a tuple
        otherwise — to its **row indices** into those columns: a bare ``int``
        when every key is distinct (``unique=True``), else a list.  This is
        exactly the vectorized executor's fresh-build layout, so a cached
        entry replaces the whole per-execution build and probes take the
        fast index-gather path.  ``None`` for lazy relations, as ever.
        """
        if not positions:
            return None
        stored = self._database.relation(relation)
        if not isinstance(stored, Relation):
            return None
        key = (relation, positions)
        entry = self._columnar.get(key)
        if entry is None:
            with self._lock:
                entry = self._columnar.get(key)
                if entry is None:
                    ordered = sorted(stored.tuples, key=repr)
                    columns = tuple(zip(*ordered)) if ordered else ()
                    if len(positions) == 1:
                        keys: Sequence = columns[positions[0]] if columns else ()
                    else:
                        keys = list(zip(*(columns[p] for p in positions))) if columns else []
                    count = len(ordered)
                    flat = dict(zip(keys, range(count)))
                    if len(flat) == count:
                        buckets: Mapping = flat
                        unique = True
                    else:
                        grouped: dict = {}
                        for index, value in enumerate(keys):
                            bucket = grouped.get(value)
                            if bucket is None:
                                grouped[value] = [index]
                            else:
                                bucket.append(index)
                        buckets = grouped
                        unique = False
                    entry = self._columnar[key] = (buckets, columns, unique)
                    self.built += 1
        return entry

    def distinct(self, relation: str, position: int) -> frozenset | None:
        """The distinct values of one stored column, or ``None`` when lazy.

        The vectorized executor serves semi/anti-join filter sides that
        reduce to a pure stored column (through renames and projections)
        from this cache instead of re-collecting the set per execution.
        """
        stored = self._database.relation(relation)
        if not isinstance(stored, Relation):
            return None
        key = (relation, position)
        values = self._distinct.get(key)
        if values is None:
            with self._lock:
                values = self._distinct.get(key)
                if values is None:
                    values = frozenset(row[position] for row in stored.tuples)
                    self._distinct[key] = values
        return values

    def lookup(self, relation: str, positions: tuple[int, ...], key: tuple) -> tuple[tuple, ...] | None:
        """Rows of *relation* whose *positions* equal *key*; ``None`` = no index."""
        index = self.prefix(relation, positions)
        if index is None:
            return None
        return index.get(key, _EMPTY)


def indexes_for(database: PhysicalDatabase) -> DatabaseIndexes:
    """The (lazily created, instance-cached) index set of *database*."""
    cached = database.__dict__.get("_indexes")
    if cached is None:
        cached = DatabaseIndexes(database)
        object.__setattr__(database, "_indexes", cached)
    return cached

"""Lazily built hash indexes over the stored relations of a physical database.

The executor uses these for two access paths:

* **index scans** — an :class:`~repro.physical.plan.IndexScan` node (produced
  by the optimizer from a constant-binding selection over a scan) probes a
  key-prefix index instead of filtering a full scan;
* **indexed joins** — a :class:`~repro.physical.plan.NaturalJoin` whose build
  side is a bare relation scan reuses the stored prefix index as its hash
  table instead of rebuilding one per execution.

Indexes are built on demand per ``(relation, column positions)`` request and
cached on the database instance with the same ``object.__setattr__`` idiom as
``PhysicalDatabase.fingerprint`` — databases are immutable, so an index can
never go stale, and content-addressed cache keys elsewhere (fingerprints)
remain the sole invalidation mechanism.  Lazy relations (the virtual ``NE``
encoding) are deliberately *not* indexed: materializing them defeats their
purpose, so lookups against them fall back to scanning, exactly as before.

Index construction is thread-safe: the serving layer executes plans against
one shared database from many threads, so a per-database lock guards the
build; probing built indexes is lock-free (plain dict reads of immutable
values).
"""

from __future__ import annotations

import threading
from typing import Mapping

from repro.physical.database import PhysicalDatabase
from repro.physical.relation import Relation

__all__ = ["DatabaseIndexes", "indexes_for"]

_EMPTY: tuple[tuple, ...] = ()


class DatabaseIndexes:
    """Hash indexes (value tuple -> matching rows) for one immutable database."""

    def __init__(self, database: PhysicalDatabase) -> None:
        self._database = database
        self._prefix: dict[tuple[str, tuple[int, ...]], Mapping[tuple, tuple[tuple, ...]]] = {}
        self._lock = threading.Lock()
        self.built = 0  # number of distinct indexes constructed (observability)

    def prefix(self, relation: str, positions: tuple[int, ...]) -> Mapping[tuple, tuple[tuple, ...]] | None:
        """Index of *relation* on the given column positions, or ``None``.

        Returns ``None`` for lazy relations (no index is built for them) and
        for empty position tuples.  The returned mapping sends each key tuple
        — the row's values at ``positions``, in that order — to the tuple of
        full rows carrying it.
        """
        if not positions:
            return None
        stored = self._database.relation(relation)
        if not isinstance(stored, Relation):
            return None
        key = (relation, positions)
        index = self._prefix.get(key)
        if index is None:
            with self._lock:
                index = self._prefix.get(key)
                if index is None:
                    buckets: dict[tuple, list[tuple]] = {}
                    for row in stored.tuples:
                        buckets.setdefault(tuple(row[i] for i in positions), []).append(row)
                    index = {value: tuple(rows) for value, rows in buckets.items()}
                    self._prefix[key] = index
                    self.built += 1
        return index

    def column(self, relation: str, position: int) -> Mapping[tuple, tuple[tuple, ...]] | None:
        """Single-column convenience wrapper around :meth:`prefix`."""
        return self.prefix(relation, (position,))

    def lookup(self, relation: str, positions: tuple[int, ...], key: tuple) -> tuple[tuple, ...] | None:
        """Rows of *relation* whose *positions* equal *key*; ``None`` = no index."""
        index = self.prefix(relation, positions)
        if index is None:
            return None
        return index.get(key, _EMPTY)


def indexes_for(database: PhysicalDatabase) -> DatabaseIndexes:
    """The (lazily created, instance-cached) index set of *database*."""
    cached = database.__dict__.get("_indexes")
    if cached is None:
        cached = DatabaseIndexes(database)
        object.__setattr__(database, "_indexes", cached)
    return cached
